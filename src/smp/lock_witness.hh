/**
 * @file
 * Debug-only runtime lock-order witness for the SMP monitor.
 *
 * The lock hierarchy (smp_monitor.hh file header, docs/SMP.md) is
 * enforced three ways, each catching what the others cannot:
 *   - compile time: Clang thread-safety annotations
 *     (support/thread_annotations.hh) reject guarded-field access
 *     without the guard under -DHEV_ANALYZE=ON;
 *   - lint time: tools/hev_lint.py checks every acquisition site in
 *     src/smp against the declared DAG and rejects cycles;
 *   - run time (this file): a thread-local stack of held-lock ranks
 *     panics the instant any thread acquires against the order, even
 *     on interleavings the static tools cannot see through (function
 *     pointers, virtuals, data-dependent lock choice).
 *
 * The witness *machinery* is always compiled (tests drive it
 * directly); the *hooks* in SmpMonitor's lock guards are compiled out
 * unless the build defines HEV_LOCK_WITNESS (CMake
 * -DHEV_LOCK_WITNESS=ON), so production builds pay nothing.
 *
 * Ranks are strictly increasing along every legal acquisition chain.
 * Gaps between ranks are deliberate: future locks slot in without
 * renumbering.  tools/hev_lint.py derives its DAG from the same
 * hierarchy, keyed off the HEV_ACQUIRED_AFTER declarations in
 * smp_monitor.hh, so the three enforcement layers cannot drift.
 */

#ifndef HEV_SMP_LOCK_WITNESS_HH
#define HEV_SMP_LOCK_WITNESS_HH

#include <vector>

#include "support/types.hh"

namespace hev::smp
{

/** Rank of every lock in the SMP monitor's documented hierarchy. */
enum class LockRank : u32
{
    Structural = 10,   //!< SmpMonitor::structuralLock
    EnclaveTable = 15, //!< SmpMonitor::enclaveLocksTableLock
    Enclave = 20,      //!< the per-enclave mutexes
    OsPt = 30,         //!< SmpMonitor::osPtLock
    Shootdown = 40,    //!< SmpMonitor::shootdownLock
    Mailbox = 50,      //!< SmpVcpu::mailboxLock
    InFlightPages = 60 //!< SmpMonitor::inFlightPagesLock
};

/** Stable name of a rank, for violation reports. */
const char *lockRankName(LockRank rank);

/**
 * The per-thread held-lock stack.  acquire() panics — naming both
 * locks — when the new rank is not strictly greater than every rank
 * already held by this thread.
 */
class LockWitness
{
  public:
    /** Record an acquisition; panics on a hierarchy violation. */
    static void acquire(LockRank rank);

    /** Record a release (any order; removes the newest match). */
    static void release(LockRank rank);

    /** Locks currently held by this thread. */
    static u32 heldCount();

    /** Drop this thread's records (test isolation). */
    static void reset();
};

/**
 * Detach this thread's held-rank stack for a scope that executes *on
 * behalf of other vCPUs*: the shootdown ack wait hands the thread to
 * the IpiDriver, whose callees (the deterministic scheduler servicing
 * a target, a test probing a hypercall) form their own acquisition
 * chains and must not inherit the initiator's held shootdownLock.
 * The dtor panics if the borrowed context still holds locks — the
 * driver must unwind everything it acquired.
 */
class WitnessSuspend
{
  public:
    WitnessSuspend();
    ~WitnessSuspend();

    WitnessSuspend(const WitnessSuspend &) = delete;
    WitnessSuspend &operator=(const WitnessSuspend &) = delete;

  private:
    std::vector<LockRank> saved;
};

/** RAII wrapper pairing acquire/release around a guard's lifetime. */
class WitnessScope
{
  public:
    explicit WitnessScope(LockRank r) : rank(r)
    {
        LockWitness::acquire(rank);
    }
    ~WitnessScope() { LockWitness::release(rank); }

    WitnessScope(const WitnessScope &) = delete;
    WitnessScope &operator=(const WitnessScope &) = delete;

  private:
    LockRank rank;
};

} // namespace hev::smp

// The hooks the SMP monitor's guards call.  Compiled out unless the
// build opts in: the witness then costs nothing, and TSan/scheduler
// runs remain the dynamic backstop.
#if HEV_LOCK_WITNESS
#define HEV_WITNESS_ACQUIRE(rank) ::hev::smp::LockWitness::acquire(rank)
#define HEV_WITNESS_RELEASE(rank) ::hev::smp::LockWitness::release(rank)
#define HEV_WITNESS_SUSPEND(name) ::hev::smp::WitnessSuspend name
#else
#define HEV_WITNESS_ACQUIRE(rank) ((void)0)
#define HEV_WITNESS_RELEASE(rank) ((void)0)
#define HEV_WITNESS_SUSPEND(name) ((void)0)
#endif

#endif // HEV_SMP_LOCK_WITNESS_HH
