/**
 * @file
 * The multi-vCPU monitor: vCPU table, per-vCPU TLBs, fine-grained
 * locking, and the epoch-based TLB shootdown protocol.
 *
 * SmpMonitor wraps an hv::Machine with an N-entry vCPU table.  Each
 * vCPU owns its architectural state (hv::VCpu), its own tagged TLB and
 * a per-CPU frame cache; the single-vCPU monitor's global TLB is
 * unused here.  Hypercalls delegate to hv::Monitor for the isolation
 * logic but manage occupancy, contexts and TLBs per vCPU.
 *
 * Locking (acquire strictly in this order, release in any):
 *   1. structuralLock — shared for ordinary hypercalls and memory
 *      accesses, exclusive for enclave create/destroy (the enclave
 *      table itself changes shape).
 *   2. per-enclave mutex — serializes occupancy and add_page on one
 *      enclave; different enclaves proceed in parallel.
 *   3. osPtLock — exclusive for primary-OS page-table edits and guest
 *      pool operations, shared for normal-mode TLB-miss walks.
 *   4. shootdownLock — at most one shootdown in flight.
 * No lock is ever held across a shootdown's ack wait except
 * shootdownLock itself (and structuralLock during destroy), and every
 * blocking acquisition by a vCPU services that vCPU's own IPIs while
 * it spins — the software analogue of spinning with interrupts
 * enabled, and what makes the wait deadlock free.
 *
 * Shootdown protocol (unmap / permission downgrade / destroy):
 *   initiate: bump the global epoch to G, post {G, domain} into every
 *             other vCPU's IPI mailbox, flush the initiator's own TLB.
 *   service:  a vCPU (always on its own thread) drains its mailbox,
 *             flushes the requested domains from its TLB, and
 *             publishes G as its ack generation.
 *   complete: the initiator returns only once every target's ack
 *             generation has reached G.  The planted skipShootdownAck
 *             bug returns without waiting — remote vCPUs keep
 *             translating through the dead mapping, which the
 *             coherence oracle (smp_invariants.hh) flags.
 */

#ifndef HEV_SMP_SMP_MONITOR_HH
#define HEV_SMP_SMP_MONITOR_HH

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "hv/machine.hh"
#include "smp/cpu_cache.hh"
#include "smp/lock_witness.hh"
#include "smp/smp.hh"
#include "support/thread_annotations.hh"

namespace hev::smp
{

/**
 * One posted-but-unserviced remote flush request.  An empty pageVas
 * means "flush the whole domain" (the pre-batching behavior); a
 * non-empty one carries the per-page invalidation vector of a batched
 * unmap/evict, amortizing one ack generation over the whole batch.
 */
struct IpiRequest
{
    u64 gen = 0;              //!< shootdown generation
    hv::DomainId domain = 0;  //!< domain to flush
    u64 postNs = 0;           //!< post timestamp (0 = timing off)
    std::vector<u64> pageVas; //!< page vas to invalidate; empty = all
};

/** One slot of the vCPU table. */
struct SmpVcpu
{
    /** Architectural state; touched only by the owning thread. */
    hv::VCpu arch;
    /** This vCPU's private tagged TLB. */
    hv::Tlb tlb;
    /** App context saved by enter, restored by exit (per vCPU). */
    hv::RegFile savedAppRegs;
    Hpa savedAppGptRoot{};
    /** Per-enclave enclave-side contexts (one TCS per resident vCPU). */
    std::map<EnclaveId, hv::RegFile> enclaveCtx;

    /** IPI mailbox: written by initiators, drained by the owner. */
    Mutex mailboxLock;
    std::vector<IpiRequest> mailbox HEV_GUARDED_BY(mailboxLock);
    /** Highest shootdown generation this vCPU has acked. */
    std::atomic<u64> ackGen{0};
    /**
     * When the last ack was published (0 = never / timing off).  Read
     * by the initiator after its acquire of ackGen, so a plain store
     * next to the ack CAS suffices; used for the ack->resume phase.
     */
    std::atomic<u64> ackNs{0};
};

/** Counters of the SMP machinery (the hv ones keep counting too). */
struct SmpStats
{
    std::atomic<u64> shootdowns{0};
    std::atomic<u64> ipisSent{0};
    std::atomic<u64> ipisAcked{0};
    std::atomic<u64> enters{0};
    std::atomic<u64> exits{0};
    std::atomic<u64> destroys{0};
};

/** The SMP monitor. */
class SmpMonitor
{
  public:
    /**
     * Hook the shootdown ack wait spins on.  The deterministic
     * scheduler installs a driver that picks an unacked target and
     * services its IPIs on the spot (replayable from the schedule
     * seed); the default driver yields the thread so real target
     * threads get scheduled to poll their mailboxes.
     */
    using IpiDriver = std::function<void(VcpuId initiator, u64 gen)>;

    explicit SmpMonitor(const SmpConfig &config);

    SmpMonitor(const SmpMonitor &) = delete;
    SmpMonitor &operator=(const SmpMonitor &) = delete;

    /// @name Component access
    /// @{
    hv::Machine &machine() { return mach; }
    const hv::Machine &machine() const { return mach; }
    hv::Monitor &monitor() { return mach.monitor(); }
    const hv::Monitor &monitor() const { return mach.monitor(); }
    u32 vcpuCount() const { return u32(cpus.size()); }
    hv::VCpu &archOf(VcpuId v) { return cpus[v]->arch; }
    const hv::VCpu &archOf(VcpuId v) const { return cpus[v]->arch; }
    const hv::Tlb &tlbOf(VcpuId v) const { return cpus[v]->tlb; }
    CpuFrameCache &cacheOf(VcpuId v) { return *caches[v]; }
    const SmpStats &stats() const { return statCounters; }
    const SmpConfig &config() const { return cfg; }
    /// @}

    /** Replace the ack-wait driver (see IpiDriver). */
    void setIpiDriver(IpiDriver driver);

    /// @name Hypercalls, issued by a specific vCPU
    /// @{

    Expected<EnclaveId> hcEnclaveInit(VcpuId v,
                                      const hv::EnclaveConfig &config);

    Status hcEnclaveAddPage(VcpuId v, EnclaveId id, Gva page_gva, Gpa src,
                            hv::AddPageKind kind);

    /**
     * Batched EADD: one hypercall, one lock round-trip and this vCPU's
     * frame cache for the whole vector, with the monitor's
     * all-or-nothing semantics (see hv::Monitor::hcEnclaveAddPagesBatch).
     */
    Status hcEnclaveAddPagesBatch(VcpuId v, EnclaveId id,
                                  const std::vector<hv::AddPageRequest> &reqs);

    Status hcEnclaveInitFinish(VcpuId v, EnclaveId id);

    /**
     * Multi-occupancy enter: up to tcsPages vCPUs may be resident at
     * once; each saves its app context in its own vCPU slot.
     */
    Status hcEnclaveEnter(VcpuId v, EnclaveId id);

    /**
     * Exit back to the normal VM, flushing exactly this vCPU's TLB
     * entries of the enclave's domain (paper Sec. 2.1) — guest-normal
     * entries survive.
     */
    Status hcEnclaveExit(VcpuId v);

    /**
     * Destroy: rejected while *any* vCPU in the table is inside the
     * enclave (not merely the calling one), then a shootdown of the
     * enclave's domain retires every remote stale translation before
     * the EPC pages are scrubbed and the table frames freed.
     */
    Status hcEnclaveDestroy(VcpuId v, EnclaveId id);

    /** EREPORT analogue for the enclave this vCPU is resident in. */
    Expected<hv::EnclaveReport> hcEnclaveReport(VcpuId v);

    /**
     * EWB analogue: seal + evict one resident enclave page, then run
     * the shootdown protocol over the enclave's domain with all locks
     * dropped (the osUnmap pattern) — a sibling vCPU resident in the
     * enclave may hold a cached translation of the page.
     */
    Expected<hv::SealedBlob> hcEnclaveEvictPage(VcpuId v, EnclaveId id,
                                                Gva page_gva);

    /**
     * ELD analogue: verify + reload a sealed blob.  No shootdown — the
     * page had no live translations while evicted, so reload creates
     * no stale positive entry anywhere.
     */
    Status hcEnclaveReloadPage(VcpuId v, EnclaveId id,
                               const hv::SealedBlob &blob);

    /**
     * Batched EWB: seal + evict a whole vector of resident pages under
     * one lock round-trip, then run **one** shootdown whose IPI carries
     * the per-page invalidation vector — one ack generation per batch
     * instead of one per page.
     */
    Expected<std::vector<hv::SealedBlob>>
    hcEnclaveEvictPagesBatch(VcpuId v, EnclaveId id,
                             const std::vector<Gva> &gvas);

    /**
     * Snapshot a quiesced enclave into a MAC'd image (migration /
     * fork / backup).  The SMP-correct quiesce check rejects while
     * *any* vCPU in the table is resident (not merely the caller),
     * and the whole fold retires stale translations with **one**
     * vectored shootdown carrying every sealed page's va.
     */
    Expected<hv::EnclaveImage> hcEnclaveSnapshot(VcpuId v, EnclaveId id,
                                                 hv::SnapshotMode mode);

    /**
     * Rebuild an enclave from an image on this host.  Exclusive
     * structural lock (the enclave table changes shape); no shootdown
     * — a freshly restored enclave has no stale positive entry
     * anywhere.
     */
    Expected<EnclaveId> hcEnclaveRestoreImage(VcpuId v,
                                              const hv::EnclaveImage &image);

    /// @}

    /// @name Primary-OS page-table operations with coherent shootdown
    /// @{

    /**
     * Unmap va from this vCPU's current guest page table, then run the
     * shootdown protocol over the normal-VM domain.
     */
    Status osUnmap(VcpuId v, u64 va);

    /** Map va -> target; no shootdown (no stale positive entry). */
    Status osMap(VcpuId v, u64 va, Gpa target);

    /**
     * Permission downgrade: remap va read-only onto `target`, then
     * shootdown (a stale writable entry would be a coherence hole).
     */
    Status osProtectRo(VcpuId v, u64 va, Gpa target);

    /**
     * Batched unmap: validate the whole batch first (every va aligned,
     * mapped, and unique), then unmap all of them under one osPtLock
     * hold and retire remote translations with **one** vectored
     * shootdown (one ack generation for the whole batch).  A failed
     * validation leaves the tables untouched.  While the shootdown is
     * in flight the batch's vas are registered, and
     * hcEnclaveReloadPage of a blob targeting one of them fails with
     * ShootdownInFlight.
     */
    Status osUnmapBatch(VcpuId v, const std::vector<u64> &vas);

    /**
     * Batched permission downgrade: same all-or-nothing validation and
     * single vectored shootdown as osUnmapBatch, remapping each
     * (va, target) pair read-only.
     */
    Status osProtectRoBatch(VcpuId v,
                            const std::vector<std::pair<u64, Gpa>> &elems);

    /** MOV CR3 on one vCPU: local domain flush only, no shootdown. */
    Status setGptRoot(VcpuId v, Hpa new_root);

    /// @}

    /// @name Memory accesses through the per-vCPU TLB
    /// @{

    Expected<u64> memLoad(VcpuId v, Gva va);

    Status memStore(VcpuId v, Gva va, u64 value);

    /** Translation via this vCPU's TLB (fills it on miss). */
    Expected<Hpa> translate(VcpuId v, Gva va, bool is_write);

    /**
     * TLB-less authoritative translation of (vCPU, domain, va): what
     * the tables say right now.  The coherence oracle compares every
     * cached entry against this.
     */
    Expected<Hpa> translateAuthoritative(VcpuId v, hv::DomainId domain,
                                         Gva va, bool is_write) const;

    /// @}

    /// @name The shootdown machinery
    /// @{

    /**
     * Drain this vCPU's IPI mailbox: flush the requested domains from
     * its TLB and publish the ack generation.  Must be called from the
     * vCPU's driving thread; scheduler steps call it after each op and
     * worker threads poll it.
     */
    void serviceIpis(VcpuId v);

    /** True iff the vCPU has unserviced IPI requests. */
    bool ipiPending(VcpuId v) const;

    /** Current shootdown epoch (generations issued so far). */
    u64 shootdownEpoch() const { return epoch.load(); }

    /**
     * True while a shootdown of the domain has begun but not yet
     * completed.  The coherence oracle excuses stale entries of such a
     * domain; after completion there is no excuse.
     */
    bool shootdownInFlight(hv::DomainId domain) const;

    /**
     * True while a *batched* shootdown whose invalidation vector
     * contains this page va is in flight.  Reload of a sealed blob
     * targeting such a va is refused (ShootdownInFlight) so a stale
     * entry being retired can never alias a freshly reloaded mapping.
     */
    bool shootdownPageInFlight(u64 va) const;

    /// @}

#if HEV_LOCK_WITNESS
    /**
     * Witness-build test hook: acquire osPtLock then structuralLock —
     * backwards — so the death test can prove the runtime witness
     * rejects an out-of-order acquisition end to end.  Never compiled
     * into production builds.
     */
    void debugAcquireOutOfOrder(VcpuId v);
#endif

  private:
    /**
     * Blocking acquisitions that keep servicing the acquiring vCPU's
     * own IPIs while they spin — the software analogue of spinning
     * with interrupts enabled (file header).  Scoped guards instead
     * of raw lock/adopt pairs so Clang's thread-safety analysis sees
     * the acquisition, and so the lock-order witness hooks ride the
     * same RAII edges.  The spin bodies are try-lock loops the
     * analysis cannot prove terminate holding the lock, so the
     * definitions carry HEV_NO_THREAD_SAFETY_ANALYSIS; the ACQUIRE
     * contract on the declarations is what callers are checked
     * against.
     */
    class HEV_SCOPED_CAPABILITY ExclusiveServicingGuard
    {
      public:
        ExclusiveServicingGuard(SmpMonitor &mon, SharedMutex &m,
                                VcpuId v, LockRank rank)
            HEV_ACQUIRE(m) HEV_NO_THREAD_SAFETY_ANALYSIS;
        ~ExclusiveServicingGuard() HEV_RELEASE();

        ExclusiveServicingGuard(const ExclusiveServicingGuard &) = delete;
        ExclusiveServicingGuard &
        operator=(const ExclusiveServicingGuard &) = delete;

      private:
        SharedMutex &mu;
        [[maybe_unused]] LockRank rank;
    };

    class HEV_SCOPED_CAPABILITY SharedServicingGuard
    {
      public:
        SharedServicingGuard(SmpMonitor &mon, SharedMutex &m, VcpuId v,
                             LockRank rank)
            HEV_ACQUIRE_SHARED(m) HEV_NO_THREAD_SAFETY_ANALYSIS;
        ~SharedServicingGuard() HEV_RELEASE_GENERIC();

        SharedServicingGuard(const SharedServicingGuard &) = delete;
        SharedServicingGuard &
        operator=(const SharedServicingGuard &) = delete;

      private:
        SharedMutex &mu;
        [[maybe_unused]] LockRank rank;
    };

    class HEV_SCOPED_CAPABILITY MutexServicingGuard
    {
      public:
        MutexServicingGuard(SmpMonitor &mon, Mutex &m, VcpuId v,
                            LockRank rank)
            HEV_ACQUIRE(m) HEV_NO_THREAD_SAFETY_ANALYSIS;
        ~MutexServicingGuard() HEV_RELEASE();

        MutexServicingGuard(const MutexServicingGuard &) = delete;
        MutexServicingGuard &
        operator=(const MutexServicingGuard &) = delete;

      private:
        Mutex &mu;
        [[maybe_unused]] LockRank rank;
    };

    /** Run the full shootdown protocol for one domain. */
    void shootdown(VcpuId initiator, hv::DomainId domain);

    /**
     * Vectored variant: the IPIs carry @p page_vas so targets
     * invalidate exactly those pages instead of the whole domain;
     * still one generation and one ack wait for the entire vector.
     */
    void shootdown(VcpuId initiator, hv::DomainId domain,
                   const std::vector<u64> &page_vas);

    /**
     * The per-enclave mutex, created on first use (enclaves can also
     * be created behind the SMP monitor's back through the wrapped
     * Machine's own hypercall path) and kept until teardown.
     */
    Mutex *enclaveLock(EnclaveId id);

    SmpConfig cfg;
    hv::Machine mach;
    std::vector<std::unique_ptr<SmpVcpu>> cpus;
    std::vector<std::unique_ptr<CpuFrameCache>> caches;

    // The lock hierarchy, declared to the compiler.  The
    // HEV_ACQUIRED_AFTER edges below ARE the authoritative DAG:
    // tools/hev_lint.py parses them, checks them for cycles, and then
    // checks every acquisition site in src/smp against the resulting
    // order; the runtime witness (lock_witness.hh) asserts the same
    // order thread-locally in HEV_LOCK_WITNESS builds.

    /** Lock 1: enclave-table shape (see file header). */
    SharedMutex structuralLock;
    /** Guards the enclaveLocks table itself (held only inside
     *  enclaveLock, never across another acquisition). */
    mutable Mutex enclaveLocksTableLock
        HEV_ACQUIRED_AFTER(structuralLock);
    /** Lock 2 lives in enclaveLocks, one mutex per enclave; the map
     *  itself is guarded, the pointed-to mutexes are capabilities of
     *  their own (acquired after enclaveLocksTableLock releases). */
    std::map<EnclaveId, std::unique_ptr<Mutex>> enclaveLocks
        HEV_GUARDED_BY(enclaveLocksTableLock);
    /** Lock 3: primary-OS page tables and guest page pool. */
    SharedMutex osPtLock HEV_ACQUIRED_AFTER(structuralLock);
    /** Lock 4: one shootdown in flight at a time. */
    Mutex shootdownLock HEV_ACQUIRED_AFTER(structuralLock, osPtLock);

    std::atomic<u64> epoch{0};
    /** Domain+1 of the in-flight shootdown; 0 = none. */
    std::atomic<u64> inFlightDomainPlus1{0};
    /** Guards inFlightPageVas; a leaf: nothing is acquired under it. */
    mutable Mutex inFlightPagesLock HEV_ACQUIRED_AFTER(shootdownLock);
    /** Page vas of the in-flight batched shootdown (empty when none or
     *  when the in-flight shootdown is a whole-domain flush). */
    std::set<u64> inFlightPageVas HEV_GUARDED_BY(inFlightPagesLock);

    IpiDriver ipiDriver;
    SmpStats statCounters;
};

} // namespace hev::smp

#endif // HEV_SMP_SMP_MONITOR_HH
