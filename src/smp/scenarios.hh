/**
 * @file
 * SMP campaign shards: randomized multi-vCPU programs driven by the
 * deterministic interleaving scheduler, with the TLB-coherence and
 * structural oracles checked after every step, plus scheduled
 * noninterference shards (Theorem 5.1 over schedules).
 *
 * Shards follow the campaign discipline (src/check/): all randomness
 * comes from the shard's RNG stream, so any counterexample replays
 * bit-identically from (campaign seed, shard id) at any thread count.
 */

#ifndef HEV_SMP_SCENARIOS_HH
#define HEV_SMP_SCENARIOS_HH

#include "check/campaign.hh"
#include "smp/smp.hh"

namespace hev::smp
{

/** Sizing of the SMP campaign workload. */
struct SmpScenarioOptions
{
    int coherenceShards = 6; //!< scheduled multi-vCPU program shards
    int niShards = 4;        //!< scheduled-noninterference shards
    int pagingShards = 4;    //!< evict/reload round-trip property shards
    int stepsPerShard = 160; //!< scheduler decisions per coherence shard
    u32 vcpus = 3;           //!< vCPU table size in coherence shards
    /** Injected SMP bugs; the kill suite runs shards with these on. */
    SmpPlantedBugs planted;
    /**
     * Injected monitor-level bugs (e.g. the batched evict that skips
     * invalidating middle pages): forwarded to the shard's
     * SmpConfig::monitor so the coherence oracle can hunt them.
     */
    hv::PlantedBugs monitorPlanted;
    /**
     * Where a failing shard writes its forensics bundle ("" = fall
     * back to $HEV_FORENSICS, then stay silent): the oracle's detail,
     * EPCM + per-vCPU TLB digests at the failure point, and the
     * flight-recorder tail of the shard's scheduled steps.
     */
    std::string forensicsPath;
};

/**
 * The SMP campaign: `coherenceShards` scheduled multi-vCPU programs
 * (enter/exit/load/store/map/unmap/evict/reload with per-step oracle
 * sweeps), `niShards` noninterference-over-schedules shards, and
 * `pagingShards` evict/reload round-trip property shards (bit-identical
 * restore, EPCM re-established, rollback and replay rejected).
 */
std::vector<check::Scenario>
smpScenarios(const SmpScenarioOptions &opts = {});

} // namespace hev::smp

#endif // HEV_SMP_SCENARIOS_HH
