#include "smp/sched.hh"

namespace hev::smp
{

SchedResult
InterleavingScheduler::run(u64 max_steps)
{
    SchedResult result;
    result.stepsPerActor.assign(actors.size(), 0);
    u64 signature = 0xcbf29ce484222325ull; // FNV-1a offset basis

    auto fold = [&signature](u64 value) {
        signature ^= value;
        signature *= 0x100000001b3ull;
    };

    std::vector<u64> runnable;
    while (result.steps < max_steps) {
        runnable.clear();
        for (u64 i = 0; i < actors.size(); ++i) {
            if (!actors[i].done)
                runnable.push_back(i);
        }
        if (runnable.empty()) {
            result.allDone = true;
            break;
        }
        const u64 pick = runnable[rng.below(runnable.size())];
        const StepOutcome outcome = actors[pick].step(result.steps);
        fold(pick);
        fold(u64(outcome));
        ++result.stepsPerActor[pick];
        ++result.steps;
        if (outcome == StepOutcome::Done)
            actors[pick].done = true;
    }
    if (!result.allDone) {
        bool all = true;
        for (const Actor &actor : actors)
            all = all && actor.done;
        result.allDone = all;
    }
    result.signature = signature;
    return result;
}

} // namespace hev::smp
