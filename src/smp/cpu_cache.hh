/**
 * @file
 * Per-CPU frame-allocator free-list cache.
 *
 * Page-table mutation under SMP would otherwise serialize every vCPU on
 * the global FrameAllocator's mutex and first-fit bitmap scan.  Each
 * vCPU instead owns a CpuFrameCache: a small LIFO of frames refilled
 * from and drained to the global allocator in batches, so the lock and
 * the scan are paid once per half-capacity batch instead of once per
 * frame.  This mirrors how per-CPU page caches work in production
 * kernels, scaled down to the model.
 *
 * A cache is owned by one vCPU and is *not* itself thread safe; only
 * the batched refill/drain calls into the global allocator synchronize
 * (FrameAllocator's lock carries the thread-safety annotations — see
 * hv/frame_alloc.hh and support/thread_annotations.hh — so a stray
 * cross-thread touch of the global free bitmap is a compile error
 * under -DHEV_ANALYZE=ON; the single-owner discipline of the local
 * free list itself is enforced by the scheduler, not by a lock).
 */

#ifndef HEV_SMP_CPU_CACHE_HH
#define HEV_SMP_CPU_CACHE_HH

#include <vector>

#include "hv/frame_alloc.hh"
#include "smp/smp.hh"

namespace hev::hv
{
class PhysMem;
}

namespace hev::smp
{

/** Free-list cache in front of the global allocator, one per vCPU. */
class CpuFrameCache final : public hv::FrameSource
{
  public:
    /**
     * @param mem backing memory; frames handed out are zeroed here
     *            (the global allocator only zeroes on its own path).
     * @param global the shared allocator refills/drains go against.
     * @param capacity local free-list capacity; 0 = pass-through.
     */
    CpuFrameCache(hv::PhysMem &mem, hv::FrameAllocator &global,
                  u32 capacity);

    ~CpuFrameCache() override;

    CpuFrameCache(const CpuFrameCache &) = delete;
    CpuFrameCache &operator=(const CpuFrameCache &) = delete;

    /// @name FrameSource
    /// @{

    /**
     * Pop a zeroed frame off the local free list, batch-refilling from
     * the global allocator when empty.
     */
    Expected<Hpa> allocFrame() override;

    /**
     * Push a frame onto the local free list, batch-draining half the
     * capacity to the global allocator when full.
     */
    Status freeFrame(Hpa frame) override;

    bool owns(Hpa frame) const override;

    /// @}

    /** Return every cached frame to the global allocator. */
    void drainAll();

    /** Frames currently parked in the local free list. */
    u64 cached() const { return frames.size(); }

    u64 refills() const { return refillCount; }
    u64 drains() const { return drainCount; }
    /** Allocations served without touching the global allocator. */
    u64 localHits() const { return hitCount; }

  private:
    hv::PhysMem &physMem;
    hv::FrameAllocator &global;
    u32 capacity;
    std::vector<Hpa> frames;
    u64 refillCount = 0;
    u64 drainCount = 0;
    u64 hitCount = 0;
};

} // namespace hev::smp

#endif // HEV_SMP_CPU_CACHE_HH
