/**
 * @file
 * The SMP oracles: TLB coherence across vCPUs and structural sanity of
 * the vCPU table.
 *
 * The coherence oracle is the property the shootdown protocol exists
 * for: every entry cached in *any* vCPU's TLB must still agree with
 * what the authoritative tables translate to — unless a shootdown of
 * that entry's domain is still in flight, which is the only window a
 * stale entry is architecturally excused in.  The planted
 * skipShootdownAck bug clears the in-flight marker without retiring
 * remote entries, so it leaves exactly the inexcusable kind of
 * staleness these checks flag.
 *
 * Both checkers assume the machine is quiescent (no vCPU mid-step):
 * the deterministic scheduler calls them between steps, and threaded
 * tests call them after joining.
 */

#ifndef HEV_SMP_SMP_INVARIANTS_HH
#define HEV_SMP_SMP_INVARIANTS_HH

#include <string>
#include <vector>

#include "smp/smp_monitor.hh"

namespace hev::smp
{

/**
 * Check every cached translation of every vCPU against the
 * authoritative tables.  A violation is:
 *  - an entry whose domain's enclave is dead,
 *  - an entry the tables no longer translate (unmapped underneath),
 *  - an entry translating to a different frame than the tables,
 *  - a writable entry the tables only allow read-only,
 * in each case with no shootdown of that domain in flight.
 *
 * @return human-readable violations; empty means coherent.
 */
std::vector<std::string> checkTlbCoherence(const SmpMonitor &smp);

/**
 * Structural invariants of the vCPU table:
 *  - mode/domain/currentEnclave/root consistency per vCPU,
 *  - every resident vCPU's enclave is live,
 *  - per-enclave occupancy counts match the vCPU table exactly and
 *    never exceed the enclave's TCS count.
 */
std::vector<std::string> checkSmpInvariants(const SmpMonitor &smp);

} // namespace hev::smp

#endif // HEV_SMP_SMP_INVARIANTS_HH
