#include "smp/lock_witness.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"

namespace hev::smp
{

namespace
{

/** This thread's held ranks, in acquisition order. */
std::vector<LockRank> &
heldStack()
{
    thread_local std::vector<LockRank> held;
    return held;
}

} // namespace

const char *
lockRankName(LockRank rank)
{
    switch (rank) {
      case LockRank::Structural: return "structuralLock";
      case LockRank::EnclaveTable: return "enclaveLocksTableLock";
      case LockRank::Enclave: return "enclaveLock";
      case LockRank::OsPt: return "osPtLock";
      case LockRank::Shootdown: return "shootdownLock";
      case LockRank::Mailbox: return "mailboxLock";
      case LockRank::InFlightPages: return "inFlightPagesLock";
    }
    return "unknown";
}

void
LockWitness::acquire(LockRank rank)
{
    std::vector<LockRank> &held = heldStack();
    // Strictly increasing: equal ranks would mean two locks of the
    // same tier nested, which the hierarchy also forbids (at most one
    // per-enclave mutex, one mailbox at a time).
    for (const LockRank prior : held) {
        if (u32(prior) >= u32(rank))
            panic("lock-order violation: acquiring %s (rank %u) while "
                  "holding %s (rank %u); the hierarchy is "
                  "structural -> enclave -> osPt -> shootdown "
                  "(docs/ANALYSIS.md)",
                  lockRankName(rank), u32(rank), lockRankName(prior),
                  u32(prior));
    }
    held.push_back(rank);
}

void
LockWitness::release(LockRank rank)
{
    std::vector<LockRank> &held = heldStack();
    // Releases may come in any order; drop the newest match.
    const auto it = std::find(held.rbegin(), held.rend(), rank);
    if (it == held.rend())
        panic("lock-order witness: releasing %s which this thread "
              "does not hold",
              lockRankName(rank));
    held.erase(std::next(it).base());
}

WitnessSuspend::WitnessSuspend()
{
    saved.swap(heldStack());
}

WitnessSuspend::~WitnessSuspend()
{
    std::vector<LockRank> &held = heldStack();
    if (!held.empty())
        panic("lock-order witness: borrowed context resumed with %zu "
              "lock(s) still held (first: %s) — the IPI driver must "
              "unwind everything it acquires",
              held.size(), lockRankName(held.front()));
    held.swap(saved);
}

u32
LockWitness::heldCount()
{
    return u32(heldStack().size());
}

void
LockWitness::reset()
{
    heldStack().clear();
}

} // namespace hev::smp
