/**
 * @file
 * Clang Thread Safety Analysis macros and capability-annotated lock
 * wrappers.
 *
 * The paper's development keeps implementation, spec, and proof in
 * lockstep; the SMP monitor's lock discipline (docs/SMP.md, the
 * "acquire strictly in this order" contract) was until now enforced
 * only dynamically — TSan runs, the deterministic scheduler, the
 * coherence oracle.  This header moves the discipline into the type
 * system: every mutex becomes a *capability*, every guarded field
 * names its guard, and a clang build with -DHEV_ANALYZE=ON turns any
 * access outside the declared discipline into a hard compile error
 * (-Werror=thread-safety).  GCC builds compile the annotations away
 * to nothing.
 *
 * Three layers:
 *   1. raw attribute macros (HEV_GUARDED_BY, HEV_REQUIRES, ...) —
 *      the standard Clang TSA vocabulary under a HEV_ prefix;
 *   2. Mutex / SharedMutex — std::mutex / std::shared_mutex wrappers
 *      carrying the capability attribute so the analysis can track
 *      them (the std types are opaque to TSA);
 *   3. MutexGuard / SharedGuard / ExclusiveGuard — scoped-capability
 *      RAII guards TSA understands (std::lock_guard is likewise
 *      opaque to it).
 *
 * The static lock-order DAG itself is declared at the lock members
 * with HEV_ACQUIRED_AFTER; tools/hev_lint.py parses exactly those
 * declarations, so the compile-time discipline and the lint-time DAG
 * can never drift apart (docs/ANALYSIS.md).
 */

#ifndef HEV_SUPPORT_THREAD_ANNOTATIONS_HH
#define HEV_SUPPORT_THREAD_ANNOTATIONS_HH

#include <mutex>
#include <shared_mutex>

// The attribute spelling is clang-only; GCC defines __GNUC__ too, so
// test for the capability of interest, not the compiler name.
#if defined(__clang__) && !defined(SWIG)
#define HEV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HEV_THREAD_ANNOTATION(x)
#endif

/** Class attribute: instances are lockable capabilities. */
#define HEV_CAPABILITY(x) HEV_THREAD_ANNOTATION(capability(x))

/** Class attribute: RAII type acquiring in ctor, releasing in dtor. */
#define HEV_SCOPED_CAPABILITY HEV_THREAD_ANNOTATION(scoped_lockable)

/** Field attribute: access requires holding the named capability. */
#define HEV_GUARDED_BY(x) HEV_THREAD_ANNOTATION(guarded_by(x))

/** Pointer field: the pointee is guarded by the named capability. */
#define HEV_PT_GUARDED_BY(x) HEV_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock member: must be acquired after the listed locks. */
#define HEV_ACQUIRED_AFTER(...) \
    HEV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Lock member: must be acquired before the listed locks. */
#define HEV_ACQUIRED_BEFORE(...) \
    HEV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Function: caller must hold the capabilities exclusively. */
#define HEV_REQUIRES(...) \
    HEV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function: caller must hold the capabilities at least shared. */
#define HEV_REQUIRES_SHARED(...) \
    HEV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function: acquires the capabilities exclusively; no return until. */
#define HEV_ACQUIRE(...) \
    HEV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function: acquires the capabilities shared. */
#define HEV_ACQUIRE_SHARED(...) \
    HEV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function: releases the capabilities (exclusive). */
#define HEV_RELEASE(...) \
    HEV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function: releases the capabilities (shared). */
#define HEV_RELEASE_SHARED(...) \
    HEV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function: releases held capabilities whatever their mode. */
#define HEV_RELEASE_GENERIC(...) \
    HEV_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/** Function: returns true iff the capability was acquired. */
#define HEV_TRY_ACQUIRE(...) \
    HEV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function: returns true iff the capability was acquired shared. */
#define HEV_TRY_ACQUIRE_SHARED(...) \
    HEV_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/** Function: caller must NOT hold the capabilities (deadlock guard). */
#define HEV_EXCLUDES(...) \
    HEV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function: asserts (at runtime) that the capability is held. */
#define HEV_ASSERT_CAPABILITY(x) \
    HEV_THREAD_ANNOTATION(assert_capability(x))

/** Function: returns a reference to the named capability. */
#define HEV_RETURN_CAPABILITY(x) HEV_THREAD_ANNOTATION(lock_returned(x))

/**
 * Function: body is exempt from analysis.  Used for trusted
 * primitives whose contract TSA cannot see through — try-lock spin
 * loops that service IPIs, quiescent-only readers — never to paper
 * over an ordinary violation.
 */
#define HEV_NO_THREAD_SAFETY_ANALYSIS \
    HEV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hev
{

/**
 * A std::mutex carrying the TSA capability attribute.  Drop-in for
 * the production code: same lock/unlock/try_lock surface, zero size
 * or runtime overhead over the wrapped mutex.
 */
class HEV_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() HEV_ACQUIRE() { mu.lock(); }
    void unlock() HEV_RELEASE() { mu.unlock(); }
    bool try_lock() HEV_TRY_ACQUIRE(true) { return mu.try_lock(); }

    /** The wrapped mutex, for APIs needing the std type. */
    std::mutex &native() { return mu; }

  private:
    std::mutex mu;
};

/** A std::shared_mutex carrying the TSA capability attribute. */
class HEV_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() HEV_ACQUIRE() { mu.lock(); }
    void unlock() HEV_RELEASE() { mu.unlock(); }
    bool try_lock() HEV_TRY_ACQUIRE(true) { return mu.try_lock(); }

    void lock_shared() HEV_ACQUIRE_SHARED() { mu.lock_shared(); }
    void unlock_shared() HEV_RELEASE_SHARED() { mu.unlock_shared(); }
    bool
    try_lock_shared() HEV_TRY_ACQUIRE_SHARED(true)
    {
        return mu.try_lock_shared();
    }

    std::shared_mutex &native() { return mu; }

  private:
    std::shared_mutex mu;
};

/** std::lock_guard<Mutex>, visible to the analysis. */
class HEV_SCOPED_CAPABILITY MutexGuard
{
  public:
    explicit MutexGuard(Mutex &m) HEV_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexGuard() HEV_RELEASE() { mu.unlock(); }

    MutexGuard(const MutexGuard &) = delete;
    MutexGuard &operator=(const MutexGuard &) = delete;

  private:
    Mutex &mu;
};

/** Exclusive std::unique_lock<SharedMutex> analogue (no deferral). */
class HEV_SCOPED_CAPABILITY ExclusiveGuard
{
  public:
    explicit ExclusiveGuard(SharedMutex &m) HEV_ACQUIRE(m) : mu(m)
    {
        mu.lock();
    }
    ~ExclusiveGuard() HEV_RELEASE() { mu.unlock(); }

    ExclusiveGuard(const ExclusiveGuard &) = delete;
    ExclusiveGuard &operator=(const ExclusiveGuard &) = delete;

  private:
    SharedMutex &mu;
};

/** std::shared_lock<SharedMutex> analogue (no deferral). */
class HEV_SCOPED_CAPABILITY SharedGuard
{
  public:
    explicit SharedGuard(SharedMutex &m) HEV_ACQUIRE_SHARED(m) : mu(m)
    {
        mu.lock_shared();
    }
    // TSA models a scoped release as generic: the guard knows which
    // mode it holds, the analysis only that it holds *something*.
    ~SharedGuard() HEV_RELEASE_GENERIC() { mu.unlock_shared(); }

    SharedGuard(const SharedGuard &) = delete;
    SharedGuard &operator=(const SharedGuard &) = delete;

  private:
    SharedMutex &mu;
};

} // namespace hev

#endif // HEV_SUPPORT_THREAD_ANNOTATIONS_HH
