/**
 * @file
 * Status/diagnostic reporting in the gem5 style: panic for internal
 * invariant breakage, fatal for unusable user configuration, warn/inform
 * for non-fatal conditions.
 */

#ifndef HEV_SUPPORT_LOGGING_HH
#define HEV_SUPPORT_LOGGING_HH

#include <cstdarg>

namespace hev
{

/** Verbosity for inform(); warn/panic/fatal always print. */
void setLogVerbose(bool verbose);
bool logVerbose();

/** Print and abort: an internal bug that should never happen. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print and exit(1): user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message (suppressed unless verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace hev

#endif // HEV_SUPPORT_LOGGING_HH
