/**
 * @file
 * Status/diagnostic reporting in the gem5 style: panic for internal
 * invariant breakage, fatal for unusable user configuration, warn/inform
 * for non-fatal conditions.
 *
 * Every report is formatted into one buffer and written to stderr as a
 * single line under a mutex, so concurrent campaign workers never
 * interleave bytes.  A thread-local context stack (ScopedLogContext)
 * prefixes each line with the ambient principal — e.g. every message
 * emitted inside a hypercall carries "[hc=init enclave=3]" uniformly
 * instead of each call site re-encoding the ids.
 */

#ifndef HEV_SUPPORT_LOGGING_HH
#define HEV_SUPPORT_LOGGING_HH

#include <cstdarg>

namespace hev
{

/** Verbosity for inform(); warn/panic/fatal always print. */
void setLogVerbose(bool verbose);
bool logVerbose();

/** Print and abort: an internal bug that should never happen. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print and exit(1): user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message (suppressed unless verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Pushes a context prefix onto this thread's log-context stack for
 * its lifetime.  Nested scopes accumulate left to right:
 *
 *     ScopedLogContext ctx("enclave=%u", id);
 *     warn("bad page");   // -> "warn: [enclave=3] bad page"
 */
class ScopedLogContext
{
  public:
    explicit ScopedLogContext(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));
    ~ScopedLogContext();

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;
};

/** The thread's current "[a] [b] " prefix ("" when no context). */
const char *logContextPrefix();

} // namespace hev

#endif // HEV_SUPPORT_LOGGING_HH
