#include "support/result.hh"

namespace hev
{

const char *
hvErrorName(HvError e)
{
    switch (e) {
      case HvError::None: return "None";
      case HvError::OutOfMemory: return "OutOfMemory";
      case HvError::InvalidParam: return "InvalidParam";
      case HvError::AlreadyMapped: return "AlreadyMapped";
      case HvError::NotMapped: return "NotMapped";
      case HvError::NotAligned: return "NotAligned";
      case HvError::PermissionDenied: return "PermissionDenied";
      case HvError::EpcmConflict: return "EpcmConflict";
      case HvError::OutOfEpc: return "OutOfEpc";
      case HvError::BadEnclaveState: return "BadEnclaveState";
      case HvError::NoSuchEnclave: return "NoSuchEnclave";
      case HvError::IsolationViolation: return "IsolationViolation";
      case HvError::Unsupported: return "Unsupported";
      case HvError::SealAuthFailed: return "SealAuthFailed";
      case HvError::SealRollback: return "SealRollback";
      case HvError::ShootdownInFlight: return "ShootdownInFlight";
      case HvError::ImageAuthFailed: return "ImageAuthFailed";
      case HvError::ImageRollback: return "ImageRollback";
      case HvError::ImageTruncated: return "ImageTruncated";
    }
    return "Unknown";
}

} // namespace hev
