/**
 * @file
 * Deterministic PRNG (xoshiro256**) for reproducible conformance checking.
 *
 * The refinement and noninterference checkers replace Coq proofs with
 * exhaustive-plus-randomized state exploration; determinism here makes a
 * reported counterexample replayable from its seed.
 */

#ifndef HEV_SUPPORT_RNG_HH
#define HEV_SUPPORT_RNG_HH

#include "support/types.hh"

namespace hev
{

/** xoshiro256** 1.0, seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void reseed(u64 seed);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform draw in [0, bound); bound must be nonzero. */
    u64 below(u64 bound);

    /** Uniform draw in [lo, hi] inclusive. */
    u64 between(u64 lo, u64 hi);

    /** Bernoulli draw: true with probability num/den. */
    bool chance(u64 num, u64 den);

    /**
     * Advance this stream in place by 2^192 steps (the xoshiro256**
     * long-jump polynomial).  Successive long-jumps partition the
     * generator's period into non-overlapping blocks of 2^192 draws.
     */
    void longJump();

    /**
     * Child stream for a shard: this stream long-jumped `shard_id + 1`
     * times.  split(k) on equal parents always yields the same stream,
     * distinct shard ids yield streams at least 2^192 draws apart, and
     * no child window overlaps the parent's own draws.  Cost is linear
     * in shard_id; campaign runners derive consecutive shards
     * incrementally (one long-jump each) instead.
     */
    Rng split(u64 shard_id) const;

    /** Uniformly pick an element of a non-empty container. */
    template <typename C>
    auto &
    pick(C &container)
    {
        return container[below(container.size())];
    }

  private:
    u64 state[4];
};

} // namespace hev

#endif // HEV_SUPPORT_RNG_HH
