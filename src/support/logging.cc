#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/thread_annotations.hh"

namespace hev
{

namespace
{
bool verboseFlag = false;

/** Serializes whole-line writes to stderr. */
Mutex &
logMutex()
{
    static Mutex mu;
    return mu;
}

struct ContextStack
{
    std::vector<std::string> frames;
    std::string prefix; //!< cached "[a] [b] " rendering

    void
    rebuild()
    {
        prefix.clear();
        for (const std::string &frame : frames) {
            prefix += '[';
            prefix += frame;
            prefix += "] ";
        }
    }
};

ContextStack &
contextStack()
{
    thread_local ContextStack stack;
    return stack;
}

/** vsnprintf into a std::string (two-pass, handles any length). */
std::string
vformat(const char *fmt, va_list ap)
{
    va_list probe;
    va_copy(probe, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (needed <= 0)
        return "";
    std::string text(size_t(needed), '\0');
    std::vsnprintf(text.data(), text.size() + 1, fmt, ap);
    return text;
}

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    // Build the complete line first, then write it with one fwrite
    // under the mutex: concurrent reporters cannot interleave bytes.
    std::string line;
    line += tag;
    line += ": ";
    line += contextStack().prefix;
    line += vformat(fmt, ap);
    line += '\n';
    MutexGuard lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}
} // namespace

void
setLogVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
logVerbose()
{
    return verboseFlag;
}

ScopedLogContext::ScopedLogContext(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    ContextStack &stack = contextStack();
    stack.frames.push_back(vformat(fmt, ap));
    stack.rebuild();
    va_end(ap);
}

ScopedLogContext::~ScopedLogContext()
{
    ContextStack &stack = contextStack();
    stack.frames.pop_back();
    stack.rebuild();
}

const char *
logContextPrefix()
{
    return contextStack().prefix.c_str();
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace hev
