/**
 * @file
 * Fundamental type aliases and address newtypes shared by every module.
 *
 * HyperEnclave distinguishes three address kinds along the two-stage
 * translation path (paper Fig. 2): guest-virtual addresses (GVA) that an
 * application or enclave issues, guest-physical addresses (GPA) produced
 * by the guest page table (GPT), and host-physical addresses (HPA)
 * produced by the extended page table (EPT).  Mixing these up is exactly
 * the class of bug the paper verifies against, so we make each a distinct
 * strong type.
 */

#ifndef HEV_SUPPORT_TYPES_HH
#define HEV_SUPPORT_TYPES_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace hev
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/** Bytes per page.  HyperEnclave uses 4 KiB pages throughout. */
constexpr u64 pageSize = 4096;
/** log2(pageSize). */
constexpr u64 pageShift = 12;
/** 64-bit page-table entries per table (512 on x86-64). */
constexpr u64 entriesPerTable = 512;
/** Number of paging levels (PML4 -> PDPT -> PD -> PT). */
constexpr int pagingLevels = 4;

/**
 * Strongly typed address wrapper.  The Tag parameter makes GVA/GPA/HPA
 * mutually unassignable while keeping the arithmetic we need.
 */
template <typename Tag>
struct Addr
{
    u64 value = 0;

    constexpr Addr() = default;
    constexpr explicit Addr(u64 v) : value(v) {}

    constexpr auto operator<=>(const Addr &) const = default;

    constexpr Addr operator+(u64 off) const { return Addr(value + off); }
    constexpr Addr operator-(u64 off) const { return Addr(value - off); }
    constexpr u64 operator-(Addr other) const { return value - other.value; }

    /** Page number containing this address. */
    constexpr u64 pageNumber() const { return value >> pageShift; }
    /** Offset within the containing page. */
    constexpr u64 pageOffset() const { return value & (pageSize - 1); }
    /** True iff the address is page aligned. */
    constexpr bool pageAligned() const { return pageOffset() == 0; }
    /** Round down to the containing page boundary. */
    constexpr Addr pageBase() const { return Addr(value & ~(pageSize - 1)); }

    /**
     * Page-table index for a paging level.
     *
     * @param level 4 for the root (PML4) down to 1 for the leaf table.
     */
    constexpr u64
    tableIndex(int level) const
    {
        return (value >> (pageShift + 9 * (level - 1))) & 0x1ff;
    }
};

struct GvaTag {};
struct GpaTag {};
struct HpaTag {};

/** Guest-virtual address: what an app or enclave issues. */
using Gva = Addr<GvaTag>;
/** Guest-physical address: output of the GPT stage. */
using Gpa = Addr<GpaTag>;
/** Host-physical address: output of the EPT stage; indexes real RAM. */
using Hpa = Addr<HpaTag>;

/** Half-open address range [start, end). */
template <typename A>
struct Range
{
    A start{};
    A end{};

    constexpr Range() = default;
    constexpr Range(A s, A e) : start(s), end(e) {}

    constexpr bool contains(A a) const { return start <= a && a < end; }
    constexpr u64 size() const { return end - start; }
    constexpr bool empty() const { return !(start < end); }

    constexpr bool
    overlaps(const Range &other) const
    {
        // Empty ranges overlap nothing.
        return start < other.end && other.start < end && !empty() &&
               !other.empty();
    }

    constexpr bool
    containsRange(const Range &other) const
    {
        return start <= other.start && other.end <= end;
    }

    constexpr auto operator<=>(const Range &) const = default;
};

using GvaRange = Range<Gva>;
using GpaRange = Range<Gpa>;
using HpaRange = Range<Hpa>;

/** Identifier of an enclave; EnclaveId 0 is never issued. */
using EnclaveId = u32;
/** The invalid/absent enclave id. */
constexpr EnclaveId invalidEnclave = 0;

} // namespace hev

namespace std
{

template <typename Tag>
struct hash<hev::Addr<Tag>>
{
    size_t
    operator()(const hev::Addr<Tag> &a) const noexcept
    {
        return std::hash<hev::u64>{}(a.value);
    }
};

} // namespace std

#endif // HEV_SUPPORT_TYPES_HH
