/**
 * @file
 * Lightweight expected/error types used across the monitor.
 *
 * The RustMonitor returns Result<T, HvError> everywhere in the original
 * Rust code; we mirror that with a small Expected wrapper so hypercall
 * failures (the security-relevant control flow) stay explicit instead of
 * being thrown.
 */

#ifndef HEV_SUPPORT_RESULT_HH
#define HEV_SUPPORT_RESULT_HH

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace hev
{

/** Error codes mirroring the HyperEnclave hypercall error surface. */
enum class HvError
{
    None = 0,
    OutOfMemory,        //!< frame allocator exhausted
    InvalidParam,       //!< malformed hypercall argument
    AlreadyMapped,      //!< mapping exists where a fresh one was required
    NotMapped,          //!< translation miss
    NotAligned,         //!< address not page aligned
    PermissionDenied,   //!< access violates the installed permissions
    EpcmConflict,       //!< EPC page already owned / wrong state
    OutOfEpc,           //!< no free EPC page
    BadEnclaveState,    //!< lifecycle violation (e.g. add_page after init)
    NoSuchEnclave,      //!< unknown enclave id
    IsolationViolation, //!< request would break spatial isolation
    Unsupported,        //!< operation outside the modeled subset
    SealAuthFailed,     //!< sealed-blob MAC / ownership check failed
    SealRollback,       //!< sealed-blob version is stale (anti-rollback)
    ShootdownInFlight,  //!< page is inside an in-flight batched shootdown
    ImageAuthFailed,    //!< enclave-image MAC / digest check failed
    ImageRollback,      //!< enclave-image version vector is stale
    ImageTruncated,     //!< enclave-image page vector is short / oversized
};

/** Human-readable name for an HvError. */
const char *hvErrorName(HvError e);

/**
 * Minimal expected<T> with an HvError error channel.
 *
 * @tparam T payload type; use Unit for fallible procedures.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : repr(std::move(value)) {}
    Expected(HvError error) : repr(error)
    {
        assert(error != HvError::None && "HvError::None is not an error");
    }

    bool ok() const { return std::holds_alternative<T>(repr); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        assert(ok() && "value() on an error Expected");
        return std::get<T>(repr);
    }

    T &
    value()
    {
        assert(ok() && "value() on an error Expected");
        return std::get<T>(repr);
    }

    HvError
    error() const
    {
        return ok() ? HvError::None : std::get<HvError>(repr);
    }

    const T &operator*() const { return value(); }
    T &operator*() { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    std::variant<T, HvError> repr;
};

/** Empty payload for Expected<Unit>. */
struct Unit
{
    constexpr bool operator==(const Unit &) const = default;
};

using Status = Expected<Unit>;

/** Success value for Status-returning functions. */
inline Status
okStatus()
{
    return Status(Unit{});
}

} // namespace hev

#endif // HEV_SUPPORT_RESULT_HH
