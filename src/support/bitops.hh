/**
 * @file
 * Bit-field helpers used by the page-table entry packing code.
 */

#ifndef HEV_SUPPORT_BITOPS_HH
#define HEV_SUPPORT_BITOPS_HH

#include "support/types.hh"

namespace hev
{

/** Mask with bits [lo, hi] set (inclusive, hi >= lo, hi < 64). */
constexpr u64
bitMask(int hi, int lo)
{
    const u64 top = (hi >= 63) ? ~0ull : ((1ull << (hi + 1)) - 1);
    return top & ~((1ull << lo) - 1);
}

/** Extract bits [hi, lo] of value, right-aligned. */
constexpr u64
bits(u64 value, int hi, int lo)
{
    return (value & bitMask(hi, lo)) >> lo;
}

/** Return value with bits [hi, lo] replaced by field (right-aligned). */
constexpr u64
insertBits(u64 value, int hi, int lo, u64 field)
{
    const u64 mask = bitMask(hi, lo);
    return (value & ~mask) | ((field << lo) & mask);
}

/** Test a single bit. */
constexpr bool
bit(u64 value, int pos)
{
    return (value >> pos) & 1;
}

/** Set or clear a single bit. */
constexpr u64
setBit(u64 value, int pos, bool on)
{
    return on ? (value | (1ull << pos)) : (value & ~(1ull << pos));
}

} // namespace hev

#endif // HEV_SUPPORT_BITOPS_HH
