#include "support/rng.hh"

#include <cassert>

namespace hev
{

namespace
{

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(u64 seed)
{
    u64 s = seed;
    for (auto &lane : state)
        lane = splitmix64(s);
}

u64
Rng::next()
{
    const u64 result = rotl(state[1] * 5, 7) * 9;
    const u64 t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

u64
Rng::below(u64 bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        const u64 draw = next();
        if (draw >= threshold)
            return draw % bound;
    }
}

u64
Rng::between(u64 lo, u64 hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(u64 num, u64 den)
{
    assert(den > 0);
    return below(den) < num;
}

void
Rng::longJump()
{
    static constexpr u64 poly[4] = {
        0x76e15d3efefdcbbfull,
        0xc5004e441c522fb3ull,
        0x77710069854ee241ull,
        0x39109bb02acbe635ull,
    };
    u64 s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const u64 word : poly) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ull << bit)) {
                s0 ^= state[0];
                s1 ^= state[1];
                s2 ^= state[2];
                s3 ^= state[3];
            }
            (void)next();
        }
    }
    state[0] = s0;
    state[1] = s1;
    state[2] = s2;
    state[3] = s3;
}

Rng
Rng::split(u64 shard_id) const
{
    Rng child = *this;
    for (u64 i = 0; i <= shard_id; ++i)
        child.longJump();
    return child;
}

} // namespace hev
