/**
 * @file
 * The stock scenario library: the randomized conformance sweeps,
 * exhaustive blocks, noninterference lockstep traces and invariant
 * sweeps of the test suites, repackaged as campaign shards.
 *
 * Sharding axes follow the issue: conformance work is cut per
 * (layer × function × seed-block), so a 14-layer stack with four seed
 * blocks yields dozens of independent shards; noninterference traces
 * are cut per (principal-set × seed-block).  Every scenario derives
 * all randomness from its ShardContext stream, so any subset of
 * shards reproduces bit-identically in isolation.
 */

#ifndef HEV_CHECK_SCENARIOS_HH
#define HEV_CHECK_SCENARIOS_HH

#include "check/campaign.hh"

namespace hev::check
{

/** Sizing of the layer-conformance campaign workload. */
struct ConformanceOptions
{
    int minLayer = 2;       //!< first layer to cover (>= 2)
    int maxLayer = 15;      //!< last layer to cover (<= 15)
    int seedBlocks = 4;     //!< shards per (layer, function) pair
    int itersPerBlock = 48; //!< randomized checks per shard
};

/**
 * Randomized MIR-vs-spec sweeps for every function group of layers
 * [minLayer, maxLayer], seedBlocks shards each.
 */
std::vector<Scenario>
conformanceScenarios(const ConformanceOptions &opts = {});

/**
 * The exhaustive depth-2 domain (every ordered (op, va) pair over the
 * small-scope domain of tests/ccal/test_exhaustive.cc), sharded by
 * the first step so the 576 sequences spread across 24 scenarios.
 */
std::vector<Scenario> exhaustiveScenarios();

/** Sizing of the noninterference campaign workload. */
struct NiOptions
{
    int seedBlocks = 8;     //!< independent trace shards
    int stepsPerTrace = 150;
};

/**
 * Theorem 5.1 lockstep traces over the two-enclave scene, one shard
 * per seed block, each checking all three principals.
 */
std::vector<Scenario>
noninterferenceScenarios(const NiOptions &opts = {});

/** Sizing of the invariant-sweep workload. */
struct InvariantOptions
{
    int seedBlocks = 4;
    int stepsPerShard = 60;
};

/**
 * Sec. 5.2 invariant preservation across randomized hypercall
 * sequences, checked after every step.
 */
std::vector<Scenario>
invariantScenarios(const InvariantOptions &opts = {});

} // namespace hev::check

#endif // HEV_CHECK_SCENARIOS_HH
