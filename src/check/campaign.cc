#include "check/campaign.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "ccal/coverage.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"

namespace hev::check
{

namespace
{

const obs::Counter statScenarios("campaign.scenarios");
const obs::Counter statChecks("campaign.checks");
const obs::Counter statFailures("campaign.failures");
const obs::Histogram statScenarioNs("campaign.scenario_ns");

/** Mutex-free per-worker accumulator, merged after the join. */
struct WorkerStats
{
    u64 scenarios = 0;
    u64 skipped = 0;
    u64 checks = 0;
    u64 failures = 0;
    std::map<std::string, u64> scenariosByKind;
    std::map<std::string, u64> checksByKind;
    std::map<int, u64> scenariosByLayer;
    std::optional<Counterexample> first;

    void
    record(const Counterexample &failure)
    {
        ++failures;
        if (!first || failure.earlierThan(*first))
            first = failure;
    }
};

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &text)
{
    std::ostringstream out;
    for (const char c : text) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          default:
            if (u8(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                out << c;
            }
        }
    }
    return out.str();
}

template <typename K>
void
renderCountMap(std::ostringstream &out, const char *name,
               const std::map<K, u64> &counts, const char *indent)
{
    out << indent << "\"" << name << "\": {";
    bool firstEntry = true;
    for (const auto &[key, count] : counts) {
        if (!firstEntry)
            out << ", ";
        firstEntry = false;
        out << "\"" << key << "\": " << count;
    }
    out << "}";
}

} // namespace

std::string
renderResultJson(const CampaignReport &report)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"seed\": " << report.seed << ",\n";
    out << "  \"scenarios\": " << report.scenarios << ",\n";
    out << "  \"skipped\": " << report.skipped << ",\n";
    out << "  \"checks\": " << report.checks << ",\n";
    out << "  \"failures\": " << report.failures << ",\n";
    renderCountMap(out, "scenarios_by_kind", report.scenariosByKind,
                   "  ");
    out << ",\n";
    renderCountMap(out, "checks_by_kind", report.checksByKind, "  ");
    out << ",\n";
    renderCountMap(out, "scenarios_by_layer", report.scenariosByLayer,
                   "  ");
    out << ",\n";
    if (report.first) {
        out << "  \"first_counterexample\": {\n";
        out << "    \"shard\": " << report.first->shard << ",\n";
        out << "    \"iteration\": " << report.first->iteration << ",\n";
        out << "    \"scenario\": \"" << jsonEscape(report.first->scenario)
            << "\",\n";
        out << "    \"detail\": \"" << jsonEscape(report.first->detail)
            << "\"";
        if (!report.first->artifact.empty())
            out << ",\n    \"artifact\": \""
                << jsonEscape(report.first->artifact) << "\"";
        out << "\n  }\n";
    } else {
        out << "  \"first_counterexample\": null\n";
    }
    out << "}";
    return out.str();
}

std::string
renderJson(const CampaignReport &report)
{
    std::ostringstream out;
    out << "{\n\"campaign\": " << renderResultJson(report) << ",\n";
    out << "\"execution\": {\n";
    out << "  \"threads\": " << report.threads << ",\n";
    out << "  \"elapsed_seconds\": " << report.elapsedSeconds << ",\n";
    out << "  \"scenarios_per_second\": " << report.scenariosPerSecond
        << ",\n";
    out << "  \"checks_per_second\": " << report.checksPerSecond
        << "\n";
    out << "},\n";
    out << "\"stats\": {\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"trace_schema_version\": " << obs::traceSchemaVersion
        << ",\n";
    out << "  \"snapshot\": " << obs::renderStatsJson(report.stats, "  ")
        << ",\n";
    renderCountMap(out, "events_by_type", report.eventsByType, "  ");
    out << "\n},\n";
    out << "\"coverage\": "
        << ccal::renderCoverageJson(ccal::currentCoverage()) << "\n";
    out << "}\n";
    return out.str();
}

bool
writeJsonReport(const CampaignReport &report, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << renderJson(report);
    return bool(out);
}

CampaignReport
Campaign::run() const
{
    const unsigned threads = cfg.threads ? cfg.threads : 1;
    const obs::Snapshot statsBefore = obs::snapshotStats();
    const std::map<std::string, u64> eventsBefore =
        obs::traceEventTotals();
    const auto start = std::chrono::steady_clock::now();

    // Shard streams, derived incrementally: streams[i] is
    // Rng(seed).split(i), one long-jump per shard instead of O(i).
    std::vector<Rng> streams;
    streams.reserve(scenarios.size());
    Rng cursor(cfg.seed);
    for (size_t i = 0; i < scenarios.size(); ++i) {
        cursor.longJump();
        streams.push_back(cursor);
    }

    std::atomic<u64> nextShard{0};
    std::atomic<u64> lowestFailingShard{~0ull};
    std::vector<WorkerStats> stats(threads);

    const auto worker = [&](unsigned worker_id) {
        WorkerStats &local = stats[worker_id];
        for (;;) {
            const u64 shard = nextShard.fetch_add(1);
            if (shard >= scenarios.size())
                return;
            if (cfg.stopOnFailure &&
                shard > lowestFailingShard.load()) {
                ++local.skipped;
                continue;
            }
            const Scenario &scenario = scenarios[shard];
            ShardContext ctx(shard, streams[shard]);
            // +1 keeps start_ns nonzero as the "timing armed" flag.
            const u64 start_ns =
                obs::statsEnabled() || obs::traceEnabled()
                    ? obs::traceNowNs() + 1
                    : 0;
            obs::traceEvent(obs::EventType::ScenarioStart,
                            scenario.name.c_str(), shard);
            const std::optional<std::string> detail = scenario.body(ctx);
            obs::traceEvent(obs::EventType::ScenarioFinish,
                            scenario.name.c_str(), shard, ctx.checks());
            if (start_ns)
                statScenarioNs.record(obs::traceNowNs() + 1 - start_ns);
            statScenarios.inc();
            statChecks.add(ctx.checks());
            ++local.scenarios;
            local.checks += ctx.checks();
            ++local.scenariosByKind[scenario.kind];
            local.checksByKind[scenario.kind] += ctx.checks();
            ++local.scenariosByLayer[scenario.layer];
            if (detail) {
                statFailures.inc();
                obs::traceEvent(obs::EventType::CounterexampleFound,
                                scenario.name.c_str(), shard,
                                ctx.checks());
                local.record(Counterexample{shard, ctx.checks(),
                                            scenario.name, *detail,
                                            ctx.artifact()});
                // CAS-min so later shards can be skipped.
                u64 seen = lowestFailingShard.load();
                while (shard < seen &&
                       !lowestFailingShard.compare_exchange_weak(seen,
                                                                 shard))
                    ;
            }
        }
    };

    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            pool.emplace_back(worker, i);
        for (std::thread &t : pool)
            t.join();
    }

    CampaignReport report;
    report.seed = cfg.seed;
    report.threads = threads;
    for (const WorkerStats &local : stats) {
        report.scenarios += local.scenarios;
        report.skipped += local.skipped;
        report.checks += local.checks;
        report.failures += local.failures;
        for (const auto &[kind, count] : local.scenariosByKind)
            report.scenariosByKind[kind] += count;
        for (const auto &[kind, count] : local.checksByKind)
            report.checksByKind[kind] += count;
        for (const auto &[layer, count] : local.scenariosByLayer)
            report.scenariosByLayer[layer] += count;
        if (local.first &&
            (!report.first || local.first->earlierThan(*report.first)))
            report.first = local.first;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    report.elapsedSeconds =
        std::chrono::duration<double>(elapsed).count();
    report.scenariosPerSecond =
        report.elapsedSeconds > 0.0
            ? double(report.scenarios) / report.elapsedSeconds
            : 0.0;
    report.checksPerSecond =
        report.elapsedSeconds > 0.0
            ? double(report.checks) / report.elapsedSeconds
            : 0.0;
    report.stats = obs::snapshotStats().minus(statsBefore);
    for (const auto &[type, count] : obs::traceEventTotals()) {
        auto it = eventsBefore.find(type);
        const u64 before = it == eventsBefore.end() ? 0 : it->second;
        if (count > before)
            report.eventsByType[type] = count - before;
    }
    const std::string forensics =
        obs::forensicsPathOrEnv(cfg.forensicsPath);
    if (report.first && !forensics.empty()) {
        obs::ForensicsBundle bundle;
        bundle.kind = "campaign";
        bundle.scenario = report.first->scenario;
        bundle.detail = report.first->detail;
        bundle.failedOp = report.first->iteration;
        bundle.digests["shard"] = report.first->shard;
        bundle.tail = obs::flightTail(0, 64);
        obs::writeForensicsBundle(bundle, forensics);
    }
    return report;
}

} // namespace hev::check
