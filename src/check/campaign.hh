/**
 * @file
 * The checking-campaign runner: parallel, sharded, deterministic.
 *
 * A campaign is a bag of independent *scenarios* — one conformance
 * sweep, one noninterference lockstep trace bundle, one exhaustive
 * block — each owning its state and drawing randomness only from a
 * per-scenario RNG stream derived from the campaign seed via
 * Rng::split.  Because a scenario's outcome depends only on (seed,
 * shard id), the campaign's results are identical at every thread
 * count: workers merely race to *execute* shards, never to *define*
 * them.  This is the axis the paper's proof effort turns into: check
 * budget per wall-clock second scales with cores.
 */

#ifndef HEV_CHECK_CAMPAIGN_HH
#define HEV_CHECK_CAMPAIGN_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/stats.hh"
#include "support/rng.hh"
#include "support/types.hh"

namespace hev::check
{

/**
 * A failed check, addressed by (shard, iteration) so that "first"
 * is a total order independent of scheduling: the counterexample a
 * campaign reports is always the one with the lowest shard id,
 * breaking ties by the iteration within the shard.
 */
struct Counterexample
{
    u64 shard = 0;        //!< scenario index == RNG shard id
    u64 iteration = 0;    //!< check count within the scenario
    std::string scenario; //!< scenario name
    std::string detail;   //!< what diverged
    std::string artifact; //!< optional repro file the scenario wrote

    /** Deterministic ordering used by the aggregator. */
    bool
    earlierThan(const Counterexample &other) const
    {
        return shard != other.shard ? shard < other.shard
                                    : iteration < other.iteration;
    }
};

/**
 * Execution context handed to a scenario body: its private RNG stream
 * and the running check counter (the iteration coordinate of any
 * failure the body reports).
 */
class ShardContext
{
  public:
    ShardContext(u64 shard_id, Rng shard_stream)
        : id(shard_id), stream(std::move(shard_stream))
    {}

    Rng &rng() { return stream; }
    u64 shard() const { return id; }

    /** Record one executed check. */
    void tick() { ++checksRun; }
    /** Record a batch of executed checks at once (fuzz executions). */
    void tick(u64 checks) { checksRun += checks; }
    u64 checks() const { return checksRun; }

    /**
     * Attach a repro artifact (a file path the body wrote) to the
     * failure this body is about to report; it rides along on the
     * Counterexample into the campaign report.
     */
    void attachArtifact(std::string path) { artifactPath = std::move(path); }
    const std::string &artifact() const { return artifactPath; }

  private:
    u64 id;
    Rng stream;
    u64 checksRun = 0;
    std::string artifactPath;
};

/**
 * One unit of campaign work.  The body runs every check it owns,
 * calling ctx.tick() per check, and returns the failure detail of the
 * first diverging check (nullopt if all pass).  Bodies must be
 * self-contained: own state, no globals, randomness only from ctx.
 */
struct Scenario
{
    std::string name;
    std::string kind; //!< conformance | exhaustive | noninterference | ...
    int layer = 0;    //!< 0 when not layer-specific
    std::function<std::optional<std::string>(ShardContext &)> body;
};

struct CampaignConfig
{
    u64 seed = 0x5eed;
    unsigned threads = 1;
    /**
     * Skip scenarios with a higher shard id than the lowest failing
     * shard seen so far.  The reported first counterexample stays
     * deterministic (shards below a failure always run to completion),
     * but the aggregate counters become schedule-dependent, so the
     * deterministic report section is only byte-stable with this off.
     */
    bool stopOnFailure = false;
    /**
     * Where to write a forensics bundle when the campaign ends with a
     * counterexample ("" = fall back to $HEV_FORENSICS, then stay
     * silent).  The bundle carries the merged flight-recorder tail of
     * every worker; scenario bodies that know their machine state
     * (fuzz shards, SMP scenarios) write richer bundles themselves.
     */
    std::string forensicsPath;
};

/** Aggregated result of one campaign run. */
struct CampaignReport
{
    u64 seed = 0;
    u64 scenarios = 0; //!< scenarios executed (== scheduled unless skipping)
    u64 skipped = 0;   //!< scenarios skipped by stopOnFailure
    u64 checks = 0;
    u64 failures = 0;
    std::map<std::string, u64> scenariosByKind;
    std::map<std::string, u64> checksByKind;
    std::map<int, u64> scenariosByLayer;
    std::optional<Counterexample> first;

    unsigned threads = 0;
    double elapsedSeconds = 0.0;
    double scenariosPerSecond = 0.0;
    double checksPerSecond = 0.0;

    /** Stats activity during the run (snapshot diff around it). */
    obs::Snapshot stats;
    /** Trace events recorded during the run, by type (exact). */
    std::map<std::string, u64> eventsByType;
};

/**
 * Render the seed-deterministic "campaign" section: identical bytes
 * for identical (seed, scenario list) at any thread count, provided
 * stopOnFailure was off.
 */
std::string renderResultJson(const CampaignReport &report);

/** Full report: the result section plus the "execution" section. */
std::string renderJson(const CampaignReport &report);

/** Write renderJson(report) to a file (for bench/ and CI). */
bool writeJsonReport(const CampaignReport &report,
                     const std::string &path);

/** The work-queue runner. */
class Campaign
{
  public:
    explicit Campaign(CampaignConfig config = {}) : cfg(config) {}

    void
    add(Scenario scenario)
    {
        scenarios.push_back(std::move(scenario));
    }

    void
    add(std::vector<Scenario> more)
    {
        for (Scenario &scenario : more)
            scenarios.push_back(std::move(scenario));
    }

    u64 size() const { return scenarios.size(); }

    /**
     * Execute every scenario across cfg.threads workers.  Shard i runs
     * with stream Rng(cfg.seed).split(i); each worker owns a private
     * stats accumulator (merged after join — no locks on the hot
     * path), and the counterexample aggregator keeps the earliest
     * failure under Counterexample::earlierThan.
     */
    CampaignReport run() const;

  private:
    CampaignConfig cfg;
    std::vector<Scenario> scenarios;
};

} // namespace hev::check

#endif // HEV_CHECK_CAMPAIGN_HH
