#include "check/scenarios.hh"

#include <sstream>

#include "ccal/checker.hh"
#include "ccal/specs.hh"
#include "sec/invariants.hh"
#include "sec/noninterference.hh"
#include "sec/observe.hh"

namespace hev::check
{
namespace
{

using namespace ccal;
using namespace ccal::spec;
using mir::Value;

Value
iv(i64 x)
{
    return Value::intVal(x);
}

Value
uv(u64 x)
{
    return Value::intVal(i64(x));
}

/** The non-gtest dual-state fixture of the conformance suites. */
struct Dual
{
    FlatState mirSide;
    FlatState specSide;

    explicit Dual(const Geometry &geo = Geometry{})
        : mirSide(geo), specSide(geo)
    {}

    template <typename F>
    void
    setup(F &&f)
    {
        f(mirSide);
        f(specSide);
    }
};

/**
 * One conformance check: MIR outcome must equal the encoded spec value
 * and both post-states must agree.  Returns the failure detail.
 */
std::optional<std::string>
agree(ShardContext &ctx, Dual &dual, const mir::Outcome<Value> &out,
      const Value &expect, const std::string &what)
{
    ctx.tick();
    if (!out.ok())
        return what + " trapped: " + out.trap().message;
    if (!(*out == expect))
        return what + ": MIR " + out->toString() + " != spec " +
               expect.toString();
    const std::string diff = diffStates(dual.mirSide, dual.specSide);
    if (!diff.empty())
        return what + ": post-states diverged: " + diff;
    return std::nullopt;
}

/// @name Per-function randomized sweeps (ports of the test suites)
/// @{

std::optional<std::string>
sweepFrameAlloc(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(2, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        if (ctx.rng().chance(1, 6)) {
            auto out = harness.run("frame_alloc_pair", {});
            const FramePair expect = specFrameAllocPair(dual.specSide);
            if (auto f = agree(ctx, dual, out,
                               Value::tuple({uv(expect.first),
                                             uv(expect.second)}),
                               "frame_alloc_pair"))
                return f;
        } else {
            auto out = harness.run("frame_alloc", {});
            if (auto f = agree(ctx, dual, out,
                               uv(specFrameAlloc(dual.specSide)),
                               "frame_alloc"))
                return f;
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepFrameFree(ShardContext &ctx, int iters)
{
    Dual dual;
    const Geometry &geo = dual.mirSide.geo;
    LayerHarness harness(2, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        // Interleave allocations with frees over valid, double-freed,
        // unaligned and out-of-area frame addresses.
        if (ctx.rng().chance(1, 2)) {
            auto out = harness.run("frame_alloc", {});
            if (auto f = agree(ctx, dual, out,
                               uv(specFrameAlloc(dual.specSide)),
                               "frame_alloc"))
                return f;
            continue;
        }
        u64 frame =
            geo.frameBase + ctx.rng().below(geo.frameCount + 2) * pageSize;
        if (ctx.rng().chance(1, 5))
            frame += 8; // unaligned
        if (ctx.rng().chance(1, 8))
            frame = 0x1000; // outside the area
        auto out = harness.run("frame_free", {uv(frame)});
        if (auto f = agree(ctx, dual, out,
                           iv(specFrameFree(dual.specSide, frame)),
                           "frame_free"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPteOps(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(3, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 addr = ctx.rng().next() & pteAddrMask;
        const u64 flags = ctx.rng().next();
        const u64 entry = ctx.rng().next();
        struct Probe
        {
            const char *fn;
            std::vector<Value> args;
            Value expect;
        };
        const Probe probes[] = {
            {"pte_make", {uv(addr), uv(flags)},
             uv(specPteMake(addr, flags))},
            {"pte_addr", {uv(entry)}, uv(specPteAddr(entry))},
            {"pte_flags", {uv(entry)}, uv(specPteFlags(entry))},
            {"pte_present", {uv(entry)},
             Value::boolVal(specPtePresent(entry))},
            {"pte_huge", {uv(entry)}, Value::boolVal(specPteHuge(entry))},
            {"pte_writable", {uv(entry)},
             Value::boolVal(specPteWritable(entry))},
            {"pte_set_dirty", {uv(entry)},
             uv(specPteSetDirty(entry))},
            {"pte_clear_dirty", {uv(entry)},
             uv(specPteClearDirty(entry))},
        };
        for (const Probe &probe : probes) {
            auto out = harness.run(probe.fn, probe.args);
            if (auto f = agree(ctx, dual, out, probe.expect, probe.fn))
                return f;
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPteBuild(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(3, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 addr = ctx.rng().next();
        const u64 flags = ctx.rng().next();
        auto out = harness.run("pte_build", {uv(addr), uv(flags)});
        if (auto f = agree(ctx, dual, out, uv(specPteBuild(addr, flags)),
                           "pte_build"))
            return f;
        ctx.tick();
        if (specPteBuild(addr, flags) != specPteMake(addr, flags))
            return "specPteBuild != specPteMake on addr=" +
                   std::to_string(addr);
    }
    return std::nullopt;
}

std::optional<std::string>
sweepVaIndex(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(4, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 va = ctx.rng().next() >> 1; // keep shifts signed-safe
        for (i64 level = 1; level <= 4; ++level) {
            auto out = harness.run("va_index", {uv(va), iv(level)});
            if (auto f = agree(ctx, dual, out,
                               uv(specVaIndex(va, level)), "va_index"))
                return f;
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepEntryAccess(ShardContext &ctx, int iters)
{
    Dual dual;
    dual.setup([](FlatState &s) { (void)specFrameAlloc(s); });
    LayerHarness harness(5, dual.mirSide);
    const u64 table = dual.mirSide.geo.frameBase;
    for (int i = 0; i < iters; ++i) {
        const u64 index = ctx.rng().below(512);
        const u64 entry = ctx.rng().next();
        auto wr =
            harness.run("entry_write", {uv(table), uv(index), uv(entry)});
        specEntryWrite(dual.specSide, table, index, entry);
        if (auto f = agree(ctx, dual, wr, Value::unit(), "entry_write"))
            return f;
        auto rd = harness.run("entry_read", {uv(table), uv(index)});
        if (auto f = agree(ctx, dual, rd,
                           uv(specEntryRead(dual.specSide, table, index)),
                           "entry_read"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepNextTable(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    dual.setup([&root](FlatState &s) {
        root = specFrameAlloc(s);
        const u64 child = specFrameAlloc(s);
        specEntryWrite(s, root, 1, specPteMake(child, pteLinkFlags));
        specEntryWrite(s, root, 2,
                       specPteMake(0x20'0000, pteRwFlags | pteFlagHuge));
    });
    LayerHarness harness(6, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 index = ctx.rng().below(8);
        const bool alloc = ctx.rng().chance(1, 2);
        auto out = harness.run("next_table",
                               {uv(root), uv(index), iv(alloc ? 1 : 0)});
        const IntResult expect =
            specNextTable(dual.specSide, root, index, alloc);
        if (auto f = agree(ctx, dual, out, encodeIntResult(expect),
                           "next_table"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepWalkToLeaf(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    const u64 pop_seed = ctx.rng().next();
    dual.setup([&root, pop_seed](FlatState &s) {
        Rng local(pop_seed);
        root = makeRoot(s);
        randomPopulate(s, root, local, 12, 6);
    });
    LayerHarness harness(7, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 va = randomVa(ctx.rng(), 6);
        const bool alloc = ctx.rng().chance(1, 2);
        auto out = harness.run("walk_to_leaf",
                               {uv(root), uv(va), iv(alloc ? 1 : 0)});
        const IntResult expect =
            specWalkToLeaf(dual.specSide, root, va, alloc);
        if (auto f = agree(ctx, dual, out, encodeIntResult(expect),
                           "walk_to_leaf"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPtQuery(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    const u64 pop_seed = ctx.rng().next();
    dual.setup([&root, pop_seed](FlatState &s) {
        Rng local(pop_seed);
        root = makeRoot(s);
        randomPopulate(s, root, local, 15, 6);
        // A huge entry in an unused subtree (cf. ConformL8).
        const IntResult l3 = specNextTable(s, root, 3, true);
        if (l3.isOk)
            specEntryWrite(s, l3.value, 0,
                           specPteMake(0x60'0000,
                                       pteRwFlags | pteFlagHuge));
    });
    LayerHarness harness(8, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        u64 va = randomVa(ctx.rng(), 6) | (ctx.rng().below(512) * 8);
        if (i % 5 == 0)
            va = (3ull << 39) | ctx.rng().below(1ull << 30);
        auto out = harness.run("pt_query", {uv(root), uv(va)});
        if (auto f = agree(ctx, dual, out,
                           encodeQueryResult(
                               specPtQuery(dual.specSide, root, va)),
                           "pt_query"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPtMap(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    const u64 pop_seed = ctx.rng().next();
    dual.setup([&root, pop_seed](FlatState &s) {
        Rng local(pop_seed);
        root = makeRoot(s);
        randomPopulate(s, root, local, 10, 6);
    });
    LayerHarness harness(9, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 va = randomVa(ctx.rng(), 6);
        const u64 pa = ctx.rng().below(512) * pageSize;
        const u64 flags = pteFlagP | (ctx.rng().next() & 0xe6);
        auto out =
            harness.run("pt_map", {uv(root), uv(va), uv(pa), uv(flags)});
        if (auto f = agree(ctx, dual, out,
                           iv(specPtMap(dual.specSide, root, va, pa,
                                        flags)),
                           "pt_map"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPtMapChecked(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    dual.setup([&root](FlatState &s) { root = makeRoot(s); });
    LayerHarness harness(9, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        u64 va = randomVa(ctx.rng(), 6);
        if (ctx.rng().chance(1, 5))
            va |= 0x234; // unaligned
        const u64 pa = ctx.rng().below(256) * pageSize;
        u64 flags = pteRwFlags;
        if (ctx.rng().chance(1, 3))
            flags |= pteFlagHuge; // rejected by the checked variant
        auto out = harness.run("pt_map_checked",
                               {uv(root), uv(va), uv(pa), uv(flags)});
        if (auto f = agree(ctx, dual, out,
                           iv(specPtMapChecked(dual.specSide, root, va,
                                               pa, flags)),
                           "pt_map_checked"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPtUnmap(ShardContext &ctx, int iters)
{
    Dual dual;
    u64 root = 0;
    const u64 pop_seed = ctx.rng().next();
    dual.setup([&root, pop_seed](FlatState &s) {
        Rng local(pop_seed);
        root = makeRoot(s);
        randomPopulate(s, root, local, 12, 6);
    });
    LayerHarness harness(10, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        u64 va = randomVa(ctx.rng(), 6);
        if (i % 7 == 0)
            va |= 0x123; // unaligned case
        auto out = harness.run("pt_unmap", {uv(root), uv(va)});
        if (auto f = agree(ctx, dual, out,
                           iv(specPtUnmap(dual.specSide, root, va)),
                           "pt_unmap"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepPtDestroy(ShardContext &ctx, int iters)
{
    // Each iteration is a populate/destroy round; all frames must come
    // back on both sides.
    const int rounds = iters / 8 + 1;
    for (int round = 0; round < rounds; ++round) {
        Dual dual;
        u64 root = 0;
        const u64 pop_seed = ctx.rng().next();
        dual.setup([&root, pop_seed](FlatState &s) {
            Rng local(pop_seed);
            root = makeRoot(s);
            randomPopulate(s, root, local, 15, 6);
        });
        LayerHarness harness(10, dual.mirSide);
        auto out = harness.run("pt_destroy", {uv(root), iv(4)});
        if (auto f = agree(ctx, dual, out,
                           iv(specPtDestroy(dual.specSide, root, 4)),
                           "pt_destroy"))
            return f;
        ctx.tick();
        for (bool bit : dual.mirSide.allocated)
            if (bit)
                return std::optional<std::string>(
                    "pt_destroy leaked a table frame");
    }
    return std::nullopt;
}

std::optional<std::string>
sweepAddressSpace(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(11, dual.mirSide);
    std::vector<i64> handles;
    for (int i = 0; i < iters; ++i) {
        switch (ctx.rng().below(5)) {
          case 0: {
            auto out = harness.run("as_create", {});
            const IntResult expect = specAsCreate(dual.specSide);
            if (auto f = agree(ctx, dual, out,
                               encodeHandleResult(expect), "as_create"))
                return f;
            if (expect.isOk)
                handles.push_back(i64(expect.value));
            break;
          }
          case 1: {
            const i64 handle = handles.empty()
                                   ? i64(ctx.rng().below(4))
                                   : ctx.rng().pick(handles);
            const u64 va = randomVa(ctx.rng(), 6);
            const u64 pa = ctx.rng().below(256) * pageSize;
            auto out = harness.run("as_map",
                                   {encodeHandle(handle), uv(va), uv(pa),
                                    uv(pteRwFlags)});
            if (auto f = agree(ctx, dual, out,
                               iv(specAsMap(dual.specSide, handle, va,
                                            pa, pteRwFlags)),
                               "as_map"))
                return f;
            break;
          }
          case 2: {
            const i64 handle = handles.empty()
                                   ? i64(ctx.rng().below(4))
                                   : ctx.rng().pick(handles);
            const u64 va = randomVa(ctx.rng(), 6) | ctx.rng().below(64) * 8;
            auto out =
                harness.run("as_query", {encodeHandle(handle), uv(va)});
            if (auto f = agree(ctx, dual, out,
                               encodeQueryResult(specAsQuery(
                                   dual.specSide, handle, va)),
                               "as_query"))
                return f;
            break;
          }
          case 3: {
            const i64 handle = handles.empty()
                                   ? i64(ctx.rng().below(4))
                                   : ctx.rng().pick(handles);
            const u64 va = randomVa(ctx.rng(), 6);
            auto out =
                harness.run("as_unmap", {encodeHandle(handle), uv(va)});
            if (auto f = agree(ctx, dual, out,
                               iv(specAsUnmap(dual.specSide, handle,
                                              va)),
                               "as_unmap"))
                return f;
            break;
          }
          default: {
            if (handles.empty() || !ctx.rng().chance(1, 4))
                break;
            const u64 pick = ctx.rng().below(handles.size());
            const i64 handle = handles[pick];
            handles.erase(handles.begin() + long(pick));
            auto out = harness.run("as_destroy", {encodeHandle(handle)});
            if (auto f = agree(ctx, dual, out,
                               iv(specAsDestroy(dual.specSide, handle)),
                               "as_destroy"))
                return f;
          }
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepEpcm(ShardContext &ctx, int iters)
{
    Dual dual;
    const Geometry &geo = dual.mirSide.geo;
    LayerHarness harness(12, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        if (ctx.rng().chance(2, 3)) {
            // Mix of valid and invalid owners/kinds.
            const i64 owner = i64(ctx.rng().below(5)) - 1;
            const i64 kind = i64(ctx.rng().below(4));
            const u64 lin = ctx.rng().below(64) * pageSize;
            auto out = harness.run("epcm_alloc",
                                   {iv(owner), uv(lin), iv(kind)});
            if (auto f = agree(ctx, dual, out,
                               encodeIntResult(specEpcmAlloc(
                                   dual.specSide, owner, lin, kind)),
                               "epcm_alloc"))
                return f;
        } else {
            u64 page = geo.epcBase +
                       ctx.rng().below(geo.epcCount + 2) * pageSize;
            if (ctx.rng().chance(1, 6))
                page += 1; // unaligned
            auto out = harness.run("epcm_free", {uv(page)});
            if (auto f = agree(ctx, dual, out,
                               iv(specEpcmFree(dual.specSide, page)),
                               "epcm_free"))
                return f;
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepMbufMap(ShardContext &ctx, int iters)
{
    const int rounds = iters / 4 + 1;
    for (int round = 0; round < rounds; ++round) {
        Dual dual;
        i64 gpt = 0, ept = 0;
        const bool conflict = ctx.rng().chance(1, 3);
        dual.setup([&](FlatState &s) {
            gpt = i64(specAsCreate(s).value);
            ept = i64(specAsCreate(s).value);
            if (conflict)
                (void)specAsMap(s, gpt, 0x20'1000, 0x9000, pteRwFlags);
        });
        LayerHarness harness(13, dual.mirSide);
        const u64 pages = 1 + ctx.rng().below(3);
        auto out = harness.run(
            "mbuf_map",
            {encodeHandle(gpt), encodeHandle(ept), uv(0x20'0000),
             uv(dual.mirSide.geo.mbufGpaBase), uv(0x8000), uv(pages)});
        if (auto f = agree(ctx, dual, out,
                           iv(specMbufMap(dual.specSide, gpt, ept,
                                          0x20'0000,
                                          dual.specSide.geo.mbufGpaBase,
                                          0x8000, pages)),
                           "mbuf_map"))
            return f;
    }
    return std::nullopt;
}

std::optional<std::string>
sweepHypercalls(ShardContext &ctx, int iters)
{
    Dual dual;
    LayerHarness harness(14, dual.mirSide);
    std::vector<i64> ids;
    for (int i = 0; i < iters; ++i) {
        switch (ctx.rng().below(4)) {
          case 0: {
            const u64 base = ctx.rng().below(8) * 0x10'0000;
            const u64 el_end = base + ctx.rng().below(6) * pageSize;
            const u64 gva = ctx.rng().below(16) * 0x8'0000;
            const u64 pages = ctx.rng().below(4);
            const u64 backing = ctx.rng().below(64) * pageSize;
            auto out = harness.run("hc_init",
                                   {uv(base), uv(el_end), uv(gva),
                                    uv(pages), uv(backing)});
            const IntResult expect = specHcInit(
                dual.specSide, base, el_end, gva, pages, backing);
            if (auto f = agree(ctx, dual, out, encodeIntResult(expect),
                               "hc_init"))
                return f;
            if (expect.isOk)
                ids.push_back(i64(expect.value));
            break;
          }
          case 1: {
            const i64 id = ids.empty() ? i64(ctx.rng().below(5))
                                       : ctx.rng().pick(ids);
            const u64 gva = ctx.rng().below(64) * pageSize;
            const u64 src = ctx.rng().below(80) * pageSize;
            const i64 kind =
                ctx.rng().chance(1, 4) ? epcStateTcs : epcStateReg;
            auto out = harness.run("hc_add_page",
                                   {iv(id), uv(gva), uv(src), iv(kind)});
            if (auto f = agree(ctx, dual, out,
                               iv(specHcAddPage(dual.specSide, id, gva,
                                                src, kind)),
                               "hc_add_page"))
                return f;
            break;
          }
          case 2: {
            const i64 id = ids.empty() ? i64(ctx.rng().below(5))
                                       : ctx.rng().pick(ids);
            auto out = harness.run("hc_init_finish", {iv(id)});
            if (auto f = agree(ctx, dual, out,
                               iv(specHcInitFinish(dual.specSide, id)),
                               "hc_init_finish"))
                return f;
            break;
          }
          default: {
            if (ids.empty() || !ctx.rng().chance(1, 3))
                break;
            const u64 pick = ctx.rng().below(ids.size());
            const i64 id = ids[pick];
            ids.erase(ids.begin() + long(pick));
            auto out = harness.run("hc_remove", {iv(id)});
            if (auto f = agree(ctx, dual, out,
                               iv(specHcRemove(dual.specSide, id)),
                               "hc_remove"))
                return f;
          }
        }
    }
    return std::nullopt;
}

std::optional<std::string>
sweepMemTranslate(ShardContext &ctx, int iters)
{
    Dual dual;
    i64 gpt = 0, ept = 0;
    const u64 pop_seed = ctx.rng().next();
    dual.setup([&](FlatState &s) {
        gpt = i64(specAsCreate(s).value);
        ept = i64(specAsCreate(s).value);
        // Random two-stage chains: some complete, some dangling, some
        // read-only at either stage.
        Rng local(pop_seed);
        for (int i = 0; i < 8; ++i) {
            const u64 va = local.below(16) * pageSize;
            const u64 gpa = local.below(16) * pageSize;
            const u64 hpa = local.below(16) * pageSize;
            const u64 gflags =
                local.chance(3, 4) ? pteRwFlags : (pteFlagP | pteFlagU);
            const u64 eflags =
                local.chance(3, 4) ? pteRwFlags : (pteFlagP | pteFlagU);
            (void)specAsMap(s, gpt, va, gpa, gflags);
            if (local.chance(3, 4))
                (void)specAsMap(s, ept, gpa, hpa, eflags);
        }
    });
    LayerHarness harness(15, dual.mirSide);
    for (int i = 0; i < iters; ++i) {
        const u64 va =
            ctx.rng().below(20) * pageSize + ctx.rng().below(64) * 8;
        const bool write = ctx.rng().chance(1, 2);
        auto out = harness.run("mem_translate",
                               {encodeHandle(gpt), encodeHandle(ept),
                                uv(va), iv(write ? 1 : 0)});
        if (auto f = agree(ctx, dual, out,
                           encodeQueryResult(specMemTranslate(
                               dual.specSide, gpt, ept, va, write)),
                           "mem_translate"))
            return f;
    }
    return std::nullopt;
}

/// @}

using SweepFn = std::optional<std::string> (*)(ShardContext &, int);

struct SweepDef
{
    int layer;
    const char *function;
    SweepFn run;
};

constexpr SweepDef sweepDefs[] = {
    {2, "frame_alloc", sweepFrameAlloc},
    {2, "frame_free", sweepFrameFree},
    {3, "pte_ops", sweepPteOps},
    {3, "pte_build", sweepPteBuild},
    {4, "va_index", sweepVaIndex},
    {5, "entry_access", sweepEntryAccess},
    {6, "next_table", sweepNextTable},
    {7, "walk_to_leaf", sweepWalkToLeaf},
    {8, "pt_query", sweepPtQuery},
    {9, "pt_map", sweepPtMap},
    {9, "pt_map_checked", sweepPtMapChecked},
    {10, "pt_unmap", sweepPtUnmap},
    {10, "pt_destroy", sweepPtDestroy},
    {11, "address_space", sweepAddressSpace},
    {12, "epcm", sweepEpcm},
    {13, "mbuf_map", sweepMbufMap},
    {14, "hypercalls", sweepHypercalls},
    {15, "mem_translate", sweepMemTranslate},
};

/// @name Exhaustive depth-2 blocks (port of test_exhaustive.cc)
/// @{

constexpr u64 exhaustiveVaDomain[] = {
    0x0, 0x1000, 1ull << 21, 1ull << 30, (1ull << 39) | 0x1000, 0x8,
};
constexpr int exhaustiveOpCount = 4;
constexpr u64 exhaustivePaDomain[] = {0x5000, 0x6000};

std::optional<std::string>
runExhaustiveStep(ShardContext &ctx, LayerHarness &map_h,
                  LayerHarness &unmap_h, LayerHarness &query_h,
                  Dual &dual, u64 root, int kind, u64 va,
                  const std::string &context)
{
    if (kind <= 1) {
        const u64 pa = exhaustivePaDomain[kind];
        auto out = map_h.run("pt_map", {uv(root), uv(va), uv(pa),
                                        uv(pteRwFlags)});
        return agree(ctx, dual, out,
                     iv(specPtMap(dual.specSide, root, va, pa,
                                  pteRwFlags)),
                     context + " pt_map");
    }
    if (kind == 2) {
        auto out = unmap_h.run("pt_unmap", {uv(root), uv(va)});
        return agree(ctx, dual, out,
                     iv(specPtUnmap(dual.specSide, root, va)),
                     context + " pt_unmap");
    }
    auto out = query_h.run("pt_query", {uv(root), uv(va)});
    return agree(ctx, dual, out,
                 encodeQueryResult(specPtQuery(dual.specSide, root, va)),
                 context + " pt_query");
}

/** All depth-2 sequences whose first step is `first`. */
std::optional<std::string>
exhaustiveBlock(ShardContext &ctx, u64 first)
{
    const u64 total = std::size(exhaustiveVaDomain) * exhaustiveOpCount;
    for (u64 second = 0; second < total; ++second) {
        Dual dual;
        u64 root = 0;
        dual.setup([&root](FlatState &s) { root = makeRoot(s); });
        LayerHarness map_h(9, dual.mirSide);
        LayerHarness unmap_h(10, dual.mirSide);
        LayerHarness query_h(8, dual.mirSide);
        const u64 steps[2] = {first, second};
        for (const u64 step : steps) {
            const int kind = int(step % exhaustiveOpCount);
            const u64 va = exhaustiveVaDomain[step / exhaustiveOpCount];
            const std::string context = "seq(" + std::to_string(first) +
                                        "," + std::to_string(second) +
                                        ")";
            if (auto f = runExhaustiveStep(ctx, map_h, unmap_h, query_h,
                                           dual, root, kind, va, context))
                return f;
        }
    }
    return std::nullopt;
}

/// @}

/** The two-enclave scene of the noninterference sweeps. */
sec::SecState
niScene(std::vector<i64> &ids)
{
    sec::SecState s;
    sec::DataOracle oracle(11);
    s.mem[0x4000] = 0xaaa;
    sec::Action map;
    map.kind = sec::Action::Kind::OsMap;
    map.va = 0x40'0000;
    map.a = 0x6000;
    (void)sec::SecMachine::step(s, map, oracle);
    ids.push_back(sec::SecMachine::setupEnclave(s, oracle, 0x10'0000, 1,
                                                1, 0x8000, 0x4000));
    ids.push_back(sec::SecMachine::setupEnclave(s, oracle, 0x30'0000, 1,
                                                1, 0xa000, 0x4000));
    return s;
}

/** One Theorem 5.1 lockstep shard over all three principals. */
std::optional<std::string>
niTraceShard(ShardContext &ctx, int steps)
{
    std::vector<i64> ids;
    const sec::SecState base = niScene(ids);
    const u64 oracle_seed = ctx.rng().next();

    for (const sec::Principal p :
         {sec::osPrincipal, sec::Principal(ids[0]),
          sec::Principal(ids[1])}) {
        sec::SecState s1 = base;
        sec::SecState s2 = base;
        sec::perturbUnobservable(s2, p, ctx.rng());

        std::vector<sec::Action> trace;
        sec::SecState sim = s1;
        sec::DataOracle sim_oracle(oracle_seed);
        for (int step = 0; step < steps; ++step) {
            trace.push_back(sec::randomAction(sim, ctx.rng()));
            (void)sec::SecMachine::step(sim, trace.back(), sim_oracle);
        }
        ctx.tick();
        const auto violation =
            sec::checkTrace(s1, s2, p, trace, oracle_seed);
        if (violation) {
            std::ostringstream detail;
            detail << "principal " << p << ": " << violation->lemma
                   << ": " << violation->detail;
            return detail.str();
        }
    }
    return std::nullopt;
}

/** One invariant-preservation shard (random hypercall sequence). */
std::optional<std::string>
invariantShard(ShardContext &ctx, int steps)
{
    FlatState s;
    std::vector<i64> ids;
    for (int step = 0; step < steps; ++step) {
        switch (ctx.rng().below(3)) {
          case 0: {
            const u64 base = ctx.rng().below(8) * 0x10'0000;
            const IntResult id = specHcInit(
                s, base, base + ctx.rng().below(5) * pageSize,
                ctx.rng().below(32) * 0x8'0000, ctx.rng().below(3),
                ctx.rng().below(48) * pageSize);
            if (id.isOk)
                ids.push_back(i64(id.value));
            break;
          }
          case 1: {
            const i64 id =
                ids.empty() ? 1 : ids[ctx.rng().below(ids.size())];
            (void)specHcAddPage(
                s, id, ctx.rng().below(64) * pageSize,
                ctx.rng().below(48) * pageSize,
                ctx.rng().chance(1, 3) ? epcStateTcs : epcStateReg);
            break;
          }
          default: {
            const i64 id =
                ids.empty() ? 1 : ids[ctx.rng().below(ids.size())];
            (void)specHcInitFinish(s, id);
          }
        }
        ctx.tick();
        const auto violations = sec::checkInvariants(s);
        if (!violations.empty())
            return "step " + std::to_string(step) + ": " +
                   sec::describeViolations(violations);
    }
    return std::nullopt;
}

std::string
shardName(const std::string &prefix, int block)
{
    return prefix + "/s" + std::to_string(block);
}

} // namespace

std::vector<Scenario>
conformanceScenarios(const ConformanceOptions &opts)
{
    std::vector<Scenario> scenarios;
    for (const SweepDef &def : sweepDefs) {
        if (def.layer < opts.minLayer || def.layer > opts.maxLayer)
            continue;
        for (int block = 0; block < opts.seedBlocks; ++block) {
            std::ostringstream name;
            name << "conformance/L" << (def.layer < 10 ? "0" : "")
                 << def.layer << "/" << def.function << "/s" << block;
            const SweepFn run = def.run;
            const int iters = opts.itersPerBlock;
            scenarios.push_back(Scenario{
                name.str(), "conformance", def.layer,
                [run, iters](ShardContext &ctx) {
                    return run(ctx, iters);
                }});
        }
    }
    return scenarios;
}

std::vector<Scenario>
exhaustiveScenarios()
{
    std::vector<Scenario> scenarios;
    const u64 total = std::size(exhaustiveVaDomain) * exhaustiveOpCount;
    for (u64 first = 0; first < total; ++first) {
        scenarios.push_back(Scenario{
            shardName("exhaustive/depth2", int(first)), "exhaustive", 9,
            [first](ShardContext &ctx) {
                return exhaustiveBlock(ctx, first);
            }});
    }
    return scenarios;
}

std::vector<Scenario>
noninterferenceScenarios(const NiOptions &opts)
{
    std::vector<Scenario> scenarios;
    for (int block = 0; block < opts.seedBlocks; ++block) {
        const int steps = opts.stepsPerTrace;
        scenarios.push_back(Scenario{
            shardName("noninterference/theorem51", block),
            "noninterference", 0, [steps](ShardContext &ctx) {
                return niTraceShard(ctx, steps);
            }});
    }
    return scenarios;
}

std::vector<Scenario>
invariantScenarios(const InvariantOptions &opts)
{
    std::vector<Scenario> scenarios;
    for (int block = 0; block < opts.seedBlocks; ++block) {
        const int steps = opts.stepsPerShard;
        scenarios.push_back(Scenario{
            shardName("invariants/hypercall-sweep", block), "invariants",
            0, [steps](ShardContext &ctx) {
                return invariantShard(ctx, steps);
            }});
    }
    return scenarios;
}

} // namespace hev::check
