#include "fuzz/smp_executor.hh"

#include <array>
#include <optional>
#include <set>
#include <sstream>

#include "fuzz/forensics.hh"
#include "hv/hv_invariants.hh"
#include "obs/flight.hh"
#include "smp/smp_invariants.hh"
#include "smp/smp_monitor.hh"
#include "support/rng.hh"

namespace hev::fuzz
{

namespace
{

using smp::SmpMonitor;
using smp::VcpuId;

/** ELRANGE bases the two enclave slots rotate through. */
constexpr u64 elrangeBases[2] = {0x10'0000, 0x30'0000};
/** Normal-VM VA slots the OS ops map/unmap/access. */
constexpr u64 slotVaBase = 0x50'0000;
constexpr u64 slotCount = 4;

/** Deterministic differential harness around one SmpMonitor. */
class SmpExecutor
{
  public:
    SmpExecutor(const ExecOptions &opts, u64 schedule_seed)
        : smpCfg(makeConfig(opts)), smp(smpCfg),
          sched(schedule_seed ? schedule_seed : 0x51ed)
    {
        smp.setIpiDriver([this](VcpuId, u64) {
            for (VcpuId w = 0; w < smp.vcpuCount(); ++w)
                smp.serviceIpis(w);
        });
    }

    ExecResult run(const ExecOptions &opts, const Trace &trace);

  private:
    static smp::SmpConfig
    makeConfig(const ExecOptions &opts)
    {
        smp::SmpConfig cfg;
        cfg.monitor = opts.monitor;
        cfg.vcpus = opts.smpVcpus < 1 ? 1
                    : opts.smpVcpus > 8 ? 8
                                        : opts.smpVcpus;
        cfg.cacheCapacity = 8;
        cfg.planted.skipShootdownAck = opts.skipShootdownAckBug;
        return cfg;
    }

    bool setupScene(std::string *detail);

    /** Execute one op; returns its folded outcome code. */
    u64 applyOp(const Op &op);

    /** Status/Expected outcome -> small deterministic code. */
    static u64
    codeOf(const Status &st)
    {
        return st ? 0 : u64(st.error()) + 1;
    }

    u64 enclaveIdOf(u64 sel) const;

    smp::SmpConfig smpCfg;
    SmpMonitor smp;
    Rng sched;
    std::array<std::optional<hv::EnclaveHandle>, 2> enclaves;
    std::array<Gpa, slotCount> backing{};
    /** Sealed blobs in (modeled) OS custody, append-only. */
    std::vector<hv::SealedBlob> blobs;
    /** Enclave images in (modeled) OS custody, append-only. */
    std::vector<hv::EnclaveImage> images;
};

u64
SmpExecutor::enclaveIdOf(u64 sel) const
{
    const auto &slot = enclaves[sel % enclaves.size()];
    // A retired slot decodes to a never-valid id so lifecycle ops
    // still exercise the NoSuchEnclave paths deterministically.
    return slot ? u64(slot->id) : 9999;
}

bool
SmpExecutor::setupScene(std::string *detail)
{
    // Three Reg pages (plus the TCS at page 3) so a batched evict can
    // cover a run of three evictable pages — the minimum where the
    // skip-middle planted bug has a middle page to forget.
    auto first = smp.machine().setupEnclave(elrangeBases[0], 3, 1, 0x111);
    if (!first) {
        *detail = std::string("scene enclave setup failed: ") +
                  hvErrorName(first.error());
        return false;
    }
    enclaves[0] = *first;
    for (u64 i = 0; i < slotCount; ++i) {
        auto page = smp.machine().os().allocPage();
        if (!page) {
            *detail = "scene slot allocation failed";
            return false;
        }
        backing[i] = *page;
        if (i % 2 == 0)
            (void)smp.osMap(0, slotVaBase + i * pageSize, *page);
    }
    return true;
}

u64
SmpExecutor::applyOp(const Op &op)
{
    const VcpuId v = op.vcpu % smp.vcpuCount();
    const bool inEnclave =
        smp.archOf(v).mode == hv::CpuMode::GuestEnclave;
    const u64 slot = op.a % slotCount;
    const u64 slotVa = slotVaBase + slot * pageSize;

    // Address domain: enclave-resident vCPUs touch their ELRANGE,
    // normal-mode ones the OS VA slots.
    u64 va = slotVa + (op.c % (pageSize / 8)) * 8;
    if (inEnclave) {
        const EnclaveId current = smp.archOf(v).currentEnclave;
        u64 base = elrangeBases[0];
        for (const auto &slot_handle : enclaves)
            if (slot_handle && slot_handle->id == current)
                base = slot_handle->elrange.start.value;
        // Page index from op.b so a resident vCPU can cache any page
        // of its ELRANGE (including the middle page of a batch); every
        // pre-batch seed uses b=0, which degenerates to the old decode.
        va = base + (op.b % 4) * pageSize + (op.c % 32) * 8;
    }

    switch (op.kind) {
      case OpKind::HcInit: {
        const u64 which = op.a % enclaves.size();
        if (enclaves[which])
            return 100; // slot occupied; deterministic no-op code
        auto handle = smp.machine().setupEnclave(
            elrangeBases[which], 1 + op.b % 2, 1, op.c % 1000);
        if (!handle)
            return u64(handle.error()) + 1;
        enclaves[which] = *handle;
        return 0;
      }
      case OpKind::HcAddPage: {
        const u64 id = enclaveIdOf(op.a);
        const u64 gva = elrangeBases[op.a % 2] + (op.b % 4) * pageSize;
        return codeOf(smp.hcEnclaveAddPage(
            v, EnclaveId(id), Gva(gva), Gpa(backing[op.c % slotCount]),
            op.d % 2 ? hv::AddPageKind::Tcs : hv::AddPageKind::Reg));
      }
      case OpKind::HcInitFinish:
        return codeOf(
            smp.hcEnclaveInitFinish(v, EnclaveId(enclaveIdOf(op.a))));
      case OpKind::HcRemove: {
        const u64 which = op.a % enclaves.size();
        const auto st =
            smp.hcEnclaveDestroy(v, EnclaveId(enclaveIdOf(op.a)));
        if (st)
            enclaves[which].reset();
        return codeOf(st);
      }
      case OpKind::Enter:
        return codeOf(
            smp.hcEnclaveEnter(v, EnclaveId(enclaveIdOf(op.a))));
      case OpKind::Exit:
        return codeOf(smp.hcEnclaveExit(v));
      case OpKind::MemLoad:
      case OpKind::LayerQuery:
      case OpKind::QueryVa: {
        auto value = smp.memLoad(v, Gva(va));
        if (!value)
            return u64(value.error()) + 1;
        // Differential check: the cached access must read the same
        // word a TLB-less authoritative walk reaches right now.
        auto auth = smp.translateAuthoritative(
            v, smp.archOf(v).domain, Gva(va), false);
        if (auth && !smp.shootdownInFlight(smp.archOf(v).domain)) {
            const u64 direct = smp.monitor().mem().read(*auth);
            if (direct != *value)
                return 0xd1ff; // divergence sentinel; oracle flags it
        }
        return (*value % 251) + 300;
      }
      case OpKind::MemStore:
        return codeOf(smp.memStore(v, Gva(va), op.d));
      case OpKind::OsUnmap:
        return codeOf(smp.osUnmap(v, slotVa));
      case OpKind::OsMap:
        return codeOf(smp.osMap(v, slotVa, backing[slot]));
      case OpKind::LayerMap:
        return codeOf(smp.osProtectRo(v, slotVa, backing[slot]));
      case OpKind::LayerUnmap:
        return codeOf(smp.osUnmap(v, slotVa));
      case OpKind::EvictPage: {
        const u64 id = enclaveIdOf(op.a);
        const u64 gva = elrangeBases[op.a % 2] + (op.b % 4) * pageSize;
        auto blob = smp.hcEnclaveEvictPage(v, EnclaveId(id), Gva(gva));
        if (!blob)
            return u64(blob.error()) + 1;
        blobs.push_back(*blob);
        return 0;
      }
      case OpKind::ReloadPage: {
        if (blobs.empty())
            return 99; // nothing in custody; deterministic no-op code
        const hv::SealedBlob &blob = blobs[op.c % blobs.size()];
        return codeOf(smp.hcEnclaveReloadPage(
            v, EnclaveId(enclaveIdOf(op.a)), blob));
      }
      case OpKind::AddPagesBatch: {
        const u64 id = enclaveIdOf(op.a);
        const u64 count = 1 + op.d % 3;
        std::vector<hv::AddPageRequest> reqs;
        for (u64 i = 0; i < count; ++i)
            reqs.push_back({Gva(elrangeBases[op.a % 2] +
                                ((op.b + i) % 4) * pageSize),
                            Gpa(backing[op.c % slotCount]),
                            hv::AddPageKind::Reg});
        return codeOf(
            smp.hcEnclaveAddPagesBatch(v, EnclaveId(id), reqs));
      }
      case OpKind::EvictPagesBatch: {
        const u64 id = enclaveIdOf(op.a);
        const u64 count = 1 + op.d % 3;
        std::vector<Gva> gvas;
        for (u64 i = 0; i < count; ++i)
            gvas.push_back(Gva(elrangeBases[op.a % 2] +
                               ((op.b + i) % 4) * pageSize));
        auto out = smp.hcEnclaveEvictPagesBatch(v, EnclaveId(id), gvas);
        if (!out)
            return u64(out.error()) + 1;
        for (const hv::SealedBlob &blob : *out)
            blobs.push_back(blob);
        return 0;
      }
      case OpKind::Snapshot: {
        const u64 which = op.a % enclaves.size();
        auto image = smp.hcEnclaveSnapshot(
            v, EnclaveId(enclaveIdOf(op.a)),
            op.b & 1 ? hv::SnapshotMode::Move : hv::SnapshotMode::Fork);
        if (!image)
            return u64(image.error()) + 1;
        if (op.b & 1)
            enclaves[which].reset(); // move retired the source
        images.push_back(std::move(*image));
        return 0;
      }
      case OpKind::RestoreImage: {
        if (images.empty())
            return 98; // nothing in custody; deterministic no-op code
        auto twin = smp.hcEnclaveRestoreImage(
            v, images[op.c % images.size()]);
        return twin ? 0 : u64(twin.error()) + 1;
      }
      case OpKind::MigrateLive:
        // The live-migration engine drives a Machine pair, not an
        // SmpMonitor; the SMP stream folds it to a deterministic no-op.
        return 97;
    }
    return 0;
}

ExecResult
SmpExecutor::run(const ExecOptions &opts, const Trace &trace)
{
    ExecResult result;
    u64 signature = 0xcbf29ce484222325ull;
    const auto fold = [&signature](u64 value) {
        signature ^= value;
        signature *= 0x100000001b3ull;
    };
    std::set<u32> featureSet;

    std::string detail;
    if (!setupScene(&detail)) {
        result.divergence = true;
        result.detail = detail;
        result.signature = signature;
        return result;
    }

    const u16 runTag = obs::newFlightRunTag();
    const u64 cap = std::min<u64>(trace.ops.size(), opts.maxOps);
    for (u64 i = 0; i < cap; ++i) {
        const Op &op = trace.ops[i];
        const VcpuId v = op.vcpu % smp.vcpuCount();
        const u64 code = applyOp(op);
        fold(u64(op.kind));
        fold(v);
        fold(code);
        ++result.opsExecuted;
        obs::flightRecord(u16(op.kind), op.a, op.b, op.c, op.d, code,
                          u16(i), runTag, u8(op.vcpu),
                          obs::flightReplayable);
        featureSet.insert((u32(op.kind) << 8) | u32(code & 0xff));
        featureSet.insert(0x8000u | (u32(op.kind) << 4) | v);

        auto violations = smp::checkTlbCoherence(smp);
        if (violations.empty())
            violations = smp::checkSmpInvariants(smp);
        if (violations.empty() && code == 0xd1ff)
            violations.push_back(
                "cached load disagrees with the authoritative walk");
        if (violations.empty() && (i % 8 == 7 || i + 1 == cap))
            violations = hv::checkMonitorInvariants(smp.monitor());
        if (!violations.empty()) {
            result.divergence = true;
            result.failedOp = i;
            std::ostringstream os;
            os << "smp op " << i << " (" << opKindName(op.kind)
               << " vcpu " << v << "): " << violations.front();
            result.detail = os.str();
            featureSet.insert(0xffffu);
            const std::string path =
                obs::forensicsPathOrEnv(opts.forensicsPath);
            if (!path.empty()) {
                ForensicsInput in;
                in.kind = "smp-fuzz";
                in.detail = result.detail;
                in.failedOp = i;
                in.runTag = runTag;
                in.scheduleSeed = trace.scheduleSeed;
                in.digests["epcm"] =
                    hv::epcmDigest(smp.monitor().epcm());
                for (VcpuId w = 0; w < smp.vcpuCount(); ++w)
                    in.digests["tlb.v" + std::to_string(w)] =
                        hv::tlbDigest(smp.tlbOf(w));
                emitForensics(path, in);
            }
            break;
        }

        // Scheduled IPI delivery: between ops, each vCPU may or may
        // not get around to servicing its mailbox — drawn from the
        // schedule stream, so the interleaving replays exactly.
        for (VcpuId w = 0; w < smp.vcpuCount(); ++w)
            if (sched.chance(1, 3))
                smp.serviceIpis(w);
    }

    result.signature = signature;
    result.features.assign(featureSet.begin(), featureSet.end());
    return result;
}

} // namespace

bool
needsSmpExecutor(const ExecOptions &opts, const Trace &trace)
{
    if (opts.smpFuzz || trace.scheduleSeed != 0)
        return true;
    for (const Op &op : trace.ops)
        if (op.vcpu != 0)
            return true;
    return false;
}

ExecResult
executeSmpTrace(const ExecOptions &opts, const Trace &trace)
{
    SmpExecutor executor(opts, trace.scheduleSeed);
    return executor.run(opts, trace);
}

} // namespace hev::fuzz
