/**
 * @file
 * Fuzz-side forensics: turn the obs flight recorder's tail back into
 * a replayable trace and emit failure bundles.
 *
 * The executors record every dispatched op into the flight ring with
 * its raw arguments and the run's tag (obs/flight.hh).  When an
 * oracle fails, the tail of that run *is* the repro: re-serialized as
 * `hev-trace v1` text it feeds hev_fuzz replay/shrink unchanged.  The
 * bundle writer here is the one place that marries the generic obs
 * bundle with the fuzz op vocabulary (names, trace serialization).
 */

#ifndef HEV_FUZZ_FORENSICS_HH
#define HEV_FUZZ_FORENSICS_HH

#include <map>
#include <string>

#include "fuzz/trace.hh"

namespace hev::fuzz
{

/** Failure coordinates an executor hands to emitForensics. */
struct ForensicsInput
{
    std::string kind;     //!< "fuzz" | "smp-fuzz" | ...
    std::string detail;   //!< the oracle's failure message
    std::string scenario; //!< optional source label (corpus file, ...)
    u64 failedOp = 0;     //!< index of the failing op
    u16 runTag = 0;       //!< the failing execution's flight tag
    u64 scheduleSeed = 0; //!< carried into the replay trace
    std::map<std::string, u64> digests; //!< state digests at failure
};

/**
 * Reassemble the flight tail of one tagged run into a Trace: every
 * replayable record, in recorded (= execution) order, with the raw op
 * arguments and vcpu restored.  Exact as long as the run fit in the
 * ring (maxOps <= flightRingCapacity, which the default 64 does).
 */
Trace flightTailToTrace(u16 run_tag, u64 schedule_seed);

/** Pretty printer for flight op ids (fuzz ops by name). */
std::string fuzzOpLabel(u16 op);

/**
 * Write the forensics bundle for a failed execution to `path` (plus
 * `path`.trace with the replayable tail).  False on I/O failure; the
 * caller's ExecResult is never affected.
 */
bool emitForensics(const std::string &path, const ForensicsInput &in);

} // namespace hev::fuzz

#endif // HEV_FUZZ_FORENSICS_HH
