#include "fuzz/trace.hh"

#include <fstream>
#include <sstream>

namespace hev::fuzz
{

namespace
{

constexpr const char *traceHeader = "hev-trace v1";

constexpr const char *kindNames[opKindCount] = {
    "hc_init",     "hc_add_page", "hc_init_finish", "hc_remove",
    "enter",       "exit",        "mem_load",       "mem_store",
    "os_unmap",    "os_map",      "query_va",       "layer_map",
    "layer_unmap", "layer_query", "evict_page",     "reload_page",
    "add_pages_batch", "evict_pages_batch",
    "snapshot",    "restore_image", "migrate_live",
};

/** Parse a decimal or 0x-hex u64. */
std::optional<u64>
parseNumber(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    u64 value = 0;
    if (token.size() > 2 && token[0] == '0' &&
        (token[1] == 'x' || token[1] == 'X')) {
        for (size_t i = 2; i < token.size(); ++i) {
            const char c = token[i];
            u64 digit;
            if (c >= '0' && c <= '9')
                digit = u64(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = u64(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = u64(c - 'A' + 10);
            else
                return std::nullopt;
            value = (value << 4) | digit;
        }
        return value;
    }
    for (const char c : token) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + u64(c - '0');
    }
    return value;
}

} // namespace

const char *
opKindName(OpKind kind)
{
    const u32 index = u32(kind);
    return index < opKindCount ? kindNames[index] : "?";
}

std::optional<OpKind>
opKindFromName(const std::string &name)
{
    for (u32 i = 0; i < opKindCount; ++i)
        if (name == kindNames[i])
            return OpKind(i);
    return std::nullopt;
}

std::string
serializeTrace(const Trace &trace)
{
    std::ostringstream out;
    out << traceHeader << "\n";
    if (trace.scheduleSeed != 0)
        out << "schedule-seed " << trace.scheduleSeed << "\n";
    for (const Op &op : trace.ops) {
        out << "op " << opKindName(op.kind) << " " << op.a << " " << op.b
            << " " << op.c << " " << op.d;
        if (op.vcpu != 0)
            out << " vcpu=" << op.vcpu;
        out << "\n";
    }
    return out.str();
}

std::optional<Trace>
parseTrace(const std::string &text, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return std::nullopt;
    };

    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    Trace trace;
    u64 lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Trim trailing CR and surrounding spaces.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' ' ||
                line.back() == '\t'))
            line.pop_back();
        size_t start = 0;
        while (start < line.size() &&
               (line[start] == ' ' || line[start] == '\t'))
            ++start;
        line = line.substr(start);
        if (line.empty() || line[0] == '#')
            continue;
        if (!sawHeader) {
            if (line != traceHeader)
                return fail("line " + std::to_string(lineNo) +
                            ": expected header '" +
                            std::string(traceHeader) + "'");
            sawHeader = true;
            continue;
        }
        std::istringstream fields(line);
        std::string tag, name;
        fields >> tag >> name;
        if (tag == "schedule-seed") {
            const auto value = parseNumber(name);
            if (!value)
                return fail("line " + std::to_string(lineNo) +
                            ": bad schedule seed '" + name + "'");
            std::string extra;
            if (fields >> extra)
                return fail("line " + std::to_string(lineNo) +
                            ": trailing token '" + extra + "'");
            trace.scheduleSeed = *value;
            continue;
        }
        if (tag != "op")
            return fail("line " + std::to_string(lineNo) +
                        ": expected 'op', got '" + tag + "'");
        const auto kind = opKindFromName(name);
        if (!kind)
            return fail("line " + std::to_string(lineNo) +
                        ": unknown op '" + name + "'");
        Op op;
        op.kind = *kind;
        u64 *args[4] = {&op.a, &op.b, &op.c, &op.d};
        for (u64 *arg : args) {
            std::string token;
            if (!(fields >> token))
                return fail("line " + std::to_string(lineNo) +
                            ": expected 4 arguments");
            const auto value = parseNumber(token);
            if (!value)
                return fail("line " + std::to_string(lineNo) +
                            ": bad number '" + token + "'");
            *arg = *value;
        }
        std::string extra;
        if (fields >> extra) {
            if (extra.rfind("vcpu=", 0) != 0)
                return fail("line " + std::to_string(lineNo) +
                            ": trailing token '" + extra + "'");
            const auto value = parseNumber(extra.substr(5));
            if (!value)
                return fail("line " + std::to_string(lineNo) +
                            ": bad vcpu '" + extra + "'");
            op.vcpu = u32(*value);
            std::string more;
            if (fields >> more)
                return fail("line " + std::to_string(lineNo) +
                            ": trailing token '" + more + "'");
        }
        trace.ops.push_back(op);
    }
    if (!sawHeader)
        return fail("missing 'hev-trace v1' header");
    return trace;
}

bool
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << serializeTrace(trace);
    return bool(out);
}

std::optional<Trace>
readTraceFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream content;
    content << in.rdbuf();
    return parseTrace(content.str(), error);
}

} // namespace hev::fuzz
