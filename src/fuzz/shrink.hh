/**
 * @file
 * Delta-debugging trace shrinking and repro rendering.
 *
 * shrinkTrace() reduces a failing trace with classic ddmin: chunked
 * op removal with halving granularity, then single-op removal to a
 * fixpoint, then per-argument canonicalization toward zero.  The
 * reduction predicate is "still diverges under the same options" (any
 * divergence counts, not just byte-identical detail — shrinking may
 * legitimately surface the same bug through an earlier oracle).  The
 * procedure is deterministic — no randomness at all — and emits a
 * locally-1-minimal result: removing any single remaining op makes
 * the failure vanish.
 *
 * renderReproFile() and renderRegressionTestBody() turn the result
 * into a self-contained .trace artifact and a ready-to-paste C++ test
 * body for the regression suite.
 */

#ifndef HEV_FUZZ_SHRINK_HH
#define HEV_FUZZ_SHRINK_HH

#include "fuzz/executor.hh"

namespace hev::fuzz
{

/** Outcome of shrinking one failing trace. */
struct ShrinkResult
{
    /** The reduced trace (still failing). */
    Trace trace;
    /** Execution result of the reduced trace. */
    ExecResult result;
    /** Trace executions the shrinker spent. */
    u64 execsUsed = 0;
    /**
     * True iff verified locally 1-minimal: every single-op removal
     * was tried and passed (only false when the exec budget ran out).
     */
    bool oneMinimal = false;
};

/**
 * Shrink `failing` (which must diverge under `opts`) to a locally
 * 1-minimal counterexample, spending at most maxExecs executions.
 */
ShrinkResult shrinkTrace(const ExecOptions &opts, const Trace &failing,
                         u64 maxExecs = 20000);

/**
 * A self-contained repro file: the trace in the standard format plus
 * `#` comment lines recording the divergence detail, signature and
 * the planted-bug set (replayable with `hev_fuzz replay`).
 */
std::string renderReproFile(const ShrinkResult &shrunk,
                            const std::vector<std::string> &bugNames = {});

/**
 * A ready-to-paste C++ regression test body asserting the trace
 * still diverges (for tests/fuzz/).
 */
std::string
renderRegressionTestBody(const ShrinkResult &shrunk,
                         const std::vector<std::string> &bugNames = {});

} // namespace hev::fuzz

#endif // HEV_FUZZ_SHRINK_HH
