#include "fuzz/feedback.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace hev::fuzz
{

bool
FeatureMap::observe(const std::vector<u32> &features)
{
    bool interesting = false;
    for (const u32 feature : features) {
        const u32 index = feature & (featureSpace - 1);
        const u8 before = hits[index];
        if (before == 0)
            ++coveredCount;
        const u8 after = before == 0xFF ? before : u8(before + 1);
        hits[index] = after;
        // A feature is only ever counted once per run (the executor
        // dedups), so bucket transitions happen exactly at the
        // thresholds 1, 2, 3, 4 and 8.
        if (bucketOf(after) != bucketOf(before))
            interesting = true;
    }
    return interesting;
}

u64
Corpus::add(CorpusEntry entry)
{
    const u64 index = entries.size();
    if (!mirrorDir.empty()) {
        char name[48];
        std::snprintf(name, sizeof(name), "t%06llu-%016llx.trace",
                      (unsigned long long)index,
                      (unsigned long long)entry.signature);
        writeTraceFile(entry.trace, mirrorDir + "/" + name);
    }
    entries.push_back(std::move(entry));
    return index;
}

bool
Corpus::mirrorTo(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!std::filesystem::is_directory(dir, ec))
        return false;
    mirrorDir = dir;
    return true;
}

u64
Corpus::loadFrom(const std::string &dir)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return 0;
    std::vector<std::string> files;
    for (const auto &entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string path = entry.path().string();
        if (entry.path().extension() == ".trace")
            files.push_back(path);
    }
    std::sort(files.begin(), files.end());

    u64 loaded = 0;
    for (const std::string &path : files) {
        const auto trace = readTraceFile(path);
        if (!trace)
            continue;
        CorpusEntry entry;
        entry.trace = *trace;
        // Recover the signature from t<index>-<sig>.trace names.
        const std::string stem = std::filesystem::path(path).stem().string();
        const size_t dash = stem.find('-');
        if (dash != std::string::npos) {
            u64 sig = 0;
            bool valid = dash + 1 < stem.size();
            for (size_t i = dash + 1; valid && i < stem.size(); ++i) {
                const char c = stem[i];
                if (c >= '0' && c <= '9')
                    sig = (sig << 4) | u64(c - '0');
                else if (c >= 'a' && c <= 'f')
                    sig = (sig << 4) | u64(c - 'a' + 10);
                else
                    valid = false;
            }
            if (valid)
                entry.signature = sig;
        }
        entries.push_back(std::move(entry));
        ++loaded;
    }
    return loaded;
}

} // namespace hev::fuzz
