/**
 * @file
 * Deterministic trace mutation and the seed skeletons.
 *
 * Every mutator draws randomness only from the Rng stream it is
 * handed, so a fuzzing run is a pure function of (seed, corpus):
 * replaying with the same seed reproduces every generated trace
 * bit-identically.  Because the executor decodes arguments modulo
 * state-dependent domains, mutators can havoc arguments freely —
 * every u64 is meaningful — and no mutation can produce an invalid
 * trace.
 */

#ifndef HEV_FUZZ_MUTATE_HH
#define HEV_FUZZ_MUTATE_HH

#include "fuzz/trace.hh"
#include "support/rng.hh"

namespace hev::fuzz
{

/**
 * A uniformly random op.  With vcpus > 1 the op is attributed to a
 * random vCPU (SMP fuzzing); the default draws no extra randomness,
 * so single-vCPU streams are unchanged.
 */
Op randomOp(Rng &rng, u32 vcpus = 1);

/**
 * Mutate `base` with one to four stacked operators (op insertion,
 * deletion, swap, duplication, kind replacement, argument havoc:
 * fresh value / ±1 / zero; with vcpus > 1 also vcpu reassignment and
 * schedule-seed havoc).  The result has at least one op and at most
 * maxOps.
 */
Trace mutateTrace(const Trace &base, Rng &rng, u32 maxOps, u32 vcpus = 1);

/** Crossover: a prefix of `a` followed by a suffix of `b`. */
Trace spliceTraces(const Trace &a, const Trace &b, Rng &rng, u32 maxOps);

/**
 * Hand-written skeleton traces seeding the corpus: the happy-path
 * enclave life cycle plus one skeleton per planted-bug trigger region
 * (ELRANGE boundary add, post-add translation probes, unmap/load
 * pairs, layer-op runs, remove/re-init churn).
 */
std::vector<Trace> seedTraces();

/**
 * Seed skeletons for SMP fuzzing (fuzz/smp_executor.hh): cross-vCPU
 * load / unmap / load triples around the shootdown protocol, a
 * two-vCPU enclave life cycle, and a permission-downgrade probe.
 * Ops are attributed across `vcpus` vCPUs.
 */
std::vector<Trace> smpSeedTraces(u32 vcpus);

} // namespace hev::fuzz

#endif // HEV_FUZZ_MUTATE_HH
