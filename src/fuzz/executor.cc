#include "fuzz/executor.hh"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "ccal/checker.hh"
#include "ccal/specs.hh"
#include "ccal/tree_state.hh"
#include "fuzz/forensics.hh"
#include "fuzz/smp_executor.hh"
#include "hv/hv_invariants.hh"
#include "hv/machine.hh"
#include "migrate/migrate.hh"
#include "obs/flight.hh"
#include "sec/invariants.hh"

namespace hev::fuzz
{

namespace
{

using namespace ccal;
using namespace ccal::spec;
using hv::AddPageKind;
using hv::EnclaveConfig;
using hv::Machine;

mir::Value
iv(i64 v)
{
    return mir::Value::intVal(v);
}

mir::Value
uv(u64 v)
{
    return mir::Value::intVal(i64(v));
}

/**
 * Coarse error classes shared by the concrete monitor and the specs
 * (same table as tests/integration/test_differential.cc), plus Skipped
 * for ops the executor declined to run (resource guard, wrong mode).
 */
enum class Rc : u8
{
    Ok = 0,
    Invalid,
    Isolation,
    Conflict,
    Resource,
    NoSuch,
    Skipped,
    SealAuth,     //!< sealed-blob MAC / ownership rejection
    SealRollback, //!< sealed-blob anti-rollback rejection
};

constexpr u32 rcCount = 9;

Rc
classifyHv(HvError error)
{
    switch (error) {
      case HvError::None: return Rc::Ok;
      case HvError::InvalidParam:
      case HvError::NotAligned: return Rc::Invalid;
      case HvError::IsolationViolation:
      case HvError::PermissionDenied: return Rc::Isolation;
      case HvError::AlreadyMapped:
      case HvError::BadEnclaveState:
      case HvError::EpcmConflict: return Rc::Conflict;
      case HvError::OutOfMemory:
      case HvError::OutOfEpc: return Rc::Resource;
      case HvError::NoSuchEnclave:
      case HvError::NotMapped: return Rc::NoSuch;
      case HvError::SealAuthFailed:
      case HvError::ImageAuthFailed: return Rc::SealAuth;
      case HvError::SealRollback:
      case HvError::ImageRollback: return Rc::SealRollback;
      case HvError::ImageTruncated: return Rc::Invalid;
      // Exhaustive on purpose: tools/hev_lint.py rejects any HvError
      // variant without an explicit class, so a new error cannot
      // silently fall into a catch-all and dodge the differential
      // comparison against the spec's coarse codes.
      case HvError::Unsupported: return Rc::Invalid;
      // Invalid (not Conflict): the flat spec has no shootdown window,
      // so its reload-during-batch verdict lands in the same coarse
      // class the executor's skip-compare logic expects.
      case HvError::ShootdownInFlight: return Rc::Invalid;
    }
    return Rc::Invalid;
}

Rc
classifySpec(i64 code)
{
    switch (code) {
      case 0: return Rc::Ok;
      case errInvalidParam:
      case errNotAligned: return Rc::Invalid;
      case errIsolation: return Rc::Isolation;
      case errAlreadyMapped:
      case errBadState: return Rc::Conflict;
      case errOutOfMemory:
      case errOutOfEpc: return Rc::Resource;
      case errNoSuchEnclave:
      case errNotMapped: return Rc::NoSuch;
      case errSealAuth:
      case errImageAuth: return Rc::SealAuth;
      case errSealRollback:
      case errImageRollback: return Rc::SealRollback;
      case errImageTruncated: return Rc::Invalid;
      default: return Rc::Invalid;
    }
}

const char *
rcName(Rc rc)
{
    switch (rc) {
      case Rc::Ok: return "ok";
      case Rc::Invalid: return "invalid";
      case Rc::Isolation: return "isolation";
      case Rc::Conflict: return "conflict";
      case Rc::Resource: return "resource";
      case Rc::NoSuch: return "no-such";
      case Rc::Skipped: return "skipped";
      case Rc::SealAuth: return "seal-auth";
      case Rc::SealRollback: return "seal-rollback";
    }
    return "?";
}

/** The abstract geometry matching an hv layout (same addresses). */
Geometry
geometryOf(const hv::MonitorConfig &cfg)
{
    Geometry geo;
    geo.frameBase = cfg.layout.secureBase();
    geo.frameCount = cfg.layout.ptAreaBytes / pageSize;
    geo.epcBase = cfg.layout.epcRange().start.value;
    geo.epcCount = cfg.layout.epcBytes / pageSize;
    geo.normalLimit = cfg.layout.secureBase();
    return geo;
}

constexpr u64 fnvOffset = 0xcbf29ce484222325ull;
constexpr u64 fnvPrime = 0x100000001b3ull;

u64
fnvStep(u64 hash, u64 value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= fnvPrime;
    }
    return hash;
}

/** Everything needed to run one trace; fresh per execution. */
class Executor
{
  public:
    explicit Executor(const ExecOptions &options)
        : opts(options), machine(options.monitor),
          specState(geometryOf(options.monitor)),
          mirFlat(geometryOf(options.monitor)),
          twinState(geometryOf(options.monitor))
    {
        // One staging page in normal memory feeds every add_page; a
        // fresh machine cannot fail this allocation.
        auto stage = machine.os().allocPage();
        stagePage = stage ? *stage : Gpa(0);
    }

    ExecResult
    run(const Trace &trace)
    {
        ExecResult result;
        u64 signature = fnvOffset;
        const u16 runTag = obs::newFlightRunTag();
        for (u64 i = 0; i < trace.ops.size() && i < opts.maxOps; ++i) {
            const Op &op = trace.ops[i];
            lastRc = Rc::Skipped;
            const auto failure = dispatch(op);
            ++result.opsExecuted;
            obs::flightRecord(u16(op.kind), op.a, op.b, op.c, op.d,
                              u64(lastRc), u16(i), runTag, u8(op.vcpu),
                              obs::flightReplayable);

            // Coverage features: (op, outcome), the 2-gram edge with
            // the previous op, and a coarse state-shape bucket.
            const u32 sig = u32(op.kind) * rcCount + u32(lastRc);
            addFeature(0x1000 + sig);
            addFeature(pairFeature(prevSig, sig));
            prevSig = sig;
            addFeature(
                0x4000 +
                u32(machine.monitor().liveEnclaves() % 8) * 32 +
                u32(machine.monitor().ptAlloc().usedFrames() / 16));
            signature = fnvStep(signature, u64(op.kind));
            signature = fnvStep(signature, u64(lastRc));

            if (failure) {
                result.divergence = true;
                result.failedOp = i;
                std::ostringstream detail;
                detail << "op " << i << " (" << opKindName(op.kind)
                       << "): " << *failure;
                result.detail = detail.str();
                const std::string path =
                    obs::forensicsPathOrEnv(opts.forensicsPath);
                if (!path.empty()) {
                    ForensicsInput in;
                    in.kind = "fuzz";
                    in.detail = result.detail;
                    in.failedOp = i;
                    in.runTag = runTag;
                    in.scheduleSeed = trace.scheduleSeed;
                    in.digests["epcm"] =
                        hv::epcmDigest(machine.monitor().epcm());
                    in.digests["tlb"] =
                        hv::tlbDigest(machine.monitor().tlb());
                    emitForensics(path, in);
                }
                break;
            }
        }
        signature = fnvStep(signature, result.divergence ? 1 : 0);
        result.signature = signature;
        result.features.assign(featureSet.begin(), featureSet.end());
        return result;
    }

  private:
    using Fail = std::optional<std::string>;

    Fail
    dispatch(const Op &op)
    {
        switch (op.kind) {
          case OpKind::HcInit: return opHcInit(op);
          case OpKind::HcAddPage: return opHcAddPage(op);
          case OpKind::HcInitFinish: return opHcInitFinish(op);
          case OpKind::HcRemove: return opHcRemove(op);
          case OpKind::Enter: return opEnter(op);
          case OpKind::Exit: return opExit(op);
          case OpKind::MemLoad:
          case OpKind::MemStore: return opMemAccess(op);
          case OpKind::OsUnmap: return opOsUnmap(op);
          case OpKind::OsMap: return opOsMap(op);
          case OpKind::QueryVa: return opQueryVa(op);
          case OpKind::LayerMap: return opLayerMap(op);
          case OpKind::LayerUnmap: return opLayerUnmap(op);
          case OpKind::LayerQuery: return opLayerQuery(op);
          case OpKind::EvictPage: return opEvictPage(op);
          case OpKind::ReloadPage: return opReloadPage(op);
          case OpKind::AddPagesBatch: return opAddPagesBatch(op);
          case OpKind::EvictPagesBatch: return opEvictPagesBatch(op);
          case OpKind::Snapshot: return opSnapshot(op);
          case OpKind::RestoreImage: return opRestoreImage(op);
          case OpKind::MigrateLive: return opMigrateLive(op);
        }
        return std::nullopt;
    }

    /// @name Hypercall ops
    /// @{

    Fail
    opHcInit(const Op &op)
    {
        if (lowOnFrames())
            return std::nullopt;
        u64 el_start = 0x10'0000ull * (1 + op.a % 4);
        const u64 el_pages = 1 + op.b % 4;
        const u64 el_end = el_start + el_pages * pageSize;
        const u64 mbuf_pages = 1 + op.c % 2;
        u64 mbuf_gva = el_end + pageSize;
        const u64 twist = op.d % 8;

        u64 backing;
        if (twist == 7) {
            // Secure-region backing: both sides must reject.
            backing = opts.monitor.layout.secureBase();
        } else {
            std::vector<Gpa> pages;
            for (u64 i = 0; i < mbuf_pages; ++i) {
                auto page = machine.os().allocPage();
                if (!page)
                    break;
                pages.push_back(*page);
            }
            bool contiguous = pages.size() == mbuf_pages;
            for (u64 i = 1; contiguous && i < pages.size(); ++i)
                contiguous =
                    pages[i].value == pages[0].value + i * pageSize;
            if (!contiguous) {
                for (const Gpa page : pages)
                    (void)machine.os().freePage(page);
                return std::nullopt; // guest pool frontier; skip
            }
            backing = pages[0].value;
        }
        if (twist == 5)
            el_start += 0x100; // misaligned ELRANGE start
        if (twist == 6)
            mbuf_gva = el_start; // mbuf overlaps ELRANGE

        EnclaveConfig cfg;
        cfg.elrange = {Gva(el_start), Gva(el_end)};
        cfg.mbufGva = Gva(mbuf_gva);
        cfg.mbufPages = mbuf_pages;
        cfg.mbufBacking = Gpa(backing);
        cfg.creatorGptRoot = machine.vcpu().gptRoot;
        auto hv_id = machine.monitor().hcEnclaveInit(cfg);

        const IntResult spec_id = specHcInit(
            specState, el_start, el_end, mbuf_gva, mbuf_pages, backing);

        if (hv_id.ok() != spec_id.isOk) {
            std::ostringstream msg;
            msg << "init verdicts differ: hv="
                << (hv_id.ok() ? "ok" : hvErrorName(hv_id.error()))
                << " spec="
                << (spec_id.isOk ? i64(0) : spec_id.errCode);
            return msg.str();
        }
        if (!hv_id.ok() &&
            classifyHv(hv_id.error()) != classifySpec(spec_id.errCode)) {
            std::ostringstream msg;
            msg << "init error classes differ: hv="
                << hvErrorName(hv_id.error())
                << " spec=" << spec_id.errCode;
            return msg.str();
        }
        lastRc = hv_id.ok() ? Rc::Ok : classifyHv(hv_id.error());

        if (auto f = mirAgree("hc_init", harness14(), "hc_init",
                              {uv(el_start), uv(el_end), uv(mbuf_gva),
                               uv(mbuf_pages), uv(backing)},
                              encodeIntResult(spec_id)))
            return f;

        if (hv_id.ok()) {
            idMap[*hv_id] = i64(spec_id.value);
            created.push_back(*hv_id);
            const AbsEnclave &abs =
                specState.enclaves.at(i64(spec_id.value));
            gptTrees.emplace(
                *hv_id,
                treeFromFlat(specState, specState.rootOf(abs.gptHandle)));
            if (auto f = treeAgree("init gpt", gptTrees.at(*hv_id),
                                   abs.gptHandle))
                return f;
        }
        if (auto f = invariantsAgree("init"))
            return f;
        return epcmAgree("init");
    }

    Fail
    opHcAddPage(const Op &op)
    {
        if (lowOnFrames())
            return std::nullopt;
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const u64 twist = op.c % 8;

        u64 gva;
        const auto abs_it = specState.enclaves.find(spec_id);
        if (abs_it != specState.enclaves.end() &&
            abs_it->second.state != enclStateDead) {
            const AbsEnclave &abs = abs_it->second;
            const u64 el_pages = (abs.elEnd - abs.elStart) / pageSize;
            // +2 slots reach exactly elEnd (the off-by-one boundary)
            // and one page beyond.
            gva = abs.elStart + (op.b % (el_pages + 2)) * pageSize;
        } else {
            gva = 0x10'0000 + (op.b % 8) * pageSize;
        }
        if (twist == 6)
            gva += 0x100; // misaligned
        const u64 src = twist == 7 ? opts.monitor.layout.secureBase()
                                   : stagePage.value;
        const bool tcs = (op.c >> 3) & 1;
        const i64 kind_code = tcs ? epcStateTcs : epcStateReg;

        auto st = machine.monitor().hcEnclaveAddPage(
            hv_id, Gva(gva), Gpa(src),
            tcs ? AddPageKind::Tcs : AddPageKind::Reg);
        const i64 rc =
            specHcAddPage(specState, spec_id, gva, src, kind_code);

        if (auto f = verdictsAgree("add_page", st, rc))
            return f;
        if (auto f = mirAgree("hc_add_page", harness14(), "hc_add_page",
                              {iv(spec_id), uv(gva), uv(src),
                               iv(kind_code)},
                              iv(rc)))
            return f;

        if (st.ok()) {
            const AbsEnclave &abs = specState.enclaves.at(spec_id);
            const u64 gpa = specState.geo.epcGpaBase +
                            (abs.addedPages - 1) * pageSize;
            u64 flags = pteRwFlags;
            if (opts.treeSkewBug)
                flags &= ~pteFlagW;
            TreeState &tree = gptTrees.at(hv_id);
            const i64 tree_rc = treeMap(tree, gva, gpa, flags);
            if (tree_rc != 0) {
                std::ostringstream msg;
                msg << "tree map failed (rc " << tree_rc
                    << ") where the flat spec succeeded";
                return msg.str();
            }
            if (auto f = treeAgree("add_page gpt", tree, abs.gptHandle))
                return f;
        }
        if (auto f = invariantsAgree("add_page"))
            return f;
        return epcmAgree("add_page");
    }

    Fail
    opHcInitFinish(const Op &op)
    {
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        auto st = machine.monitor().hcEnclaveInitFinish(hv_id);
        const i64 rc = specHcInitFinish(specState, spec_id);
        if (auto f = verdictsAgree("init_finish", st, rc))
            return f;
        if (auto f = mirAgree("hc_init_finish", harness14(),
                              "hc_init_finish", {iv(spec_id)}, iv(rc)))
            return f;
        return invariantsAgree("init_finish");
    }

    Fail
    opHcRemove(const Op &op)
    {
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);

        if (inEnclave && hv_id == curEnclave) {
            // The spec has no notion of an executing vCPU; the monitor
            // must reject removal of the active enclave on its own.
            auto st = machine.monitor().hcEnclaveRemove(hv_id);
            if (st.ok())
                return "hv removed the enclave the vCPU is executing in";
            lastRc = classifyHv(st.error());
            return invariantsAgree("remove-active");
        }

        auto st = machine.monitor().hcEnclaveRemove(hv_id);
        const i64 rc = specHcRemove(specState, spec_id);
        if (auto f = verdictsAgree("remove", st, rc))
            return f;
        if (auto f = mirAgree("hc_remove", harness14(), "hc_remove",
                              {iv(spec_id)}, iv(rc)))
            return f;
        if (st.ok()) {
            removesHappened = true;
            gptTrees.erase(hv_id);
        }
        return invariantsAgree("remove");
    }

    Fail
    opEvictPage(const Op &op)
    {
        if (inEnclave)
            return std::nullopt; // management hypercall, normal mode only
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);

        u64 gva;
        const auto abs_it = specState.enclaves.find(spec_id);
        if (abs_it != specState.enclaves.end() &&
            abs_it->second.state != enclStateDead) {
            const AbsEnclave &abs = abs_it->second;
            const u64 el_pages = (abs.elEnd - abs.elStart) / pageSize;
            gva = abs.elStart + (op.b % (el_pages + 2)) * pageSize;
        } else {
            gva = 0x10'0000 + (op.b % 8) * pageSize;
        }

        auto blob = machine.monitor().hcEnclaveEvictPage(hv_id, Gva(gva));
        const IntResult r = specHcEvictPage(specState, spec_id, gva);
        if (opts.mirLockstep) {
            // No L14 MIR model for evict yet; the spec transition is
            // applied to the MIR shadow state so lockstep equality of
            // the *next* modeled call still holds.
            (void)specHcEvictPage(mirFlat, spec_id, gva);
        }

        if (blob.ok() != r.isOk) {
            std::ostringstream msg;
            msg << "evict verdicts differ: hv="
                << (blob.ok() ? "ok" : hvErrorName(blob.error()))
                << " spec=" << (r.isOk ? i64(0) : r.errCode);
            return msg.str();
        }
        if (!blob.ok() &&
            classifyHv(blob.error()) != classifySpec(r.errCode)) {
            std::ostringstream msg;
            msg << "evict error classes differ: hv="
                << hvErrorName(blob.error()) << " ("
                << rcName(classifyHv(blob.error())) << ") vs spec "
                << r.errCode << " (" << rcName(classifySpec(r.errCode))
                << ")";
            return msg.str();
        }
        lastRc = blob.ok() ? Rc::Ok : classifyHv(blob.error());

        if (blob.ok()) {
            if (blob->version != r.value) {
                std::ostringstream msg;
                msg << "evict version skew: hv " << blob->version
                    << " vs spec " << r.value;
                return msg.str();
            }
            // Blob history is append-only, like real OS custody: stale
            // versions stay presentable, which is what gives the
            // anti-rollback check something to reject.
            sealedBlobs.push_back({*blob, spec_id, gva, r.value});
            TreeState &tree = gptTrees.at(hv_id);
            const i64 tree_rc = treeUnmap(tree, gva);
            if (tree_rc != 0) {
                std::ostringstream msg;
                msg << "tree unmap failed (rc " << tree_rc
                    << ") where the flat spec evicted";
                return msg.str();
            }
            if (auto f = treeAgree(
                    "evict gpt", tree,
                    specState.enclaves.at(spec_id).gptHandle))
                return f;
        }
        if (auto f = invariantsAgree("evict_page"))
            return f;
        return epcmAgree("evict_page");
    }

    Fail
    opReloadPage(const Op &op)
    {
        if (inEnclave || sealedBlobs.empty())
            return std::nullopt;
        if (lowOnFrames())
            return std::nullopt; // reload re-maps and may need frames
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const SealedPair &pair = sealedBlobs[op.c % sealedBlobs.size()];

        auto st =
            machine.monitor().hcEnclaveReloadPage(hv_id, pair.hvBlob);
        const i64 rc = specHcReloadPage(specState, spec_id,
                                        pair.specOwner, pair.gva,
                                        pair.version);
        if (opts.mirLockstep)
            (void)specHcReloadPage(mirFlat, spec_id, pair.specOwner,
                                   pair.gva, pair.version);
        if (auto f = verdictsAgree("reload_page", st, rc))
            return f;

        if (st.ok()) {
            const AbsEnclave &abs = specState.enclaves.at(spec_id);
            const QueryResult back =
                specAsQuery(specState, abs.gptHandle, pair.gva);
            if (!back.isSome)
                return "reload succeeded but the spec stage-1 slot is "
                       "empty";
            u64 flags = pteRwFlags;
            if (opts.treeSkewBug)
                flags &= ~pteFlagW;
            TreeState &tree = gptTrees.at(hv_id);
            const i64 tree_rc =
                treeMap(tree, pair.gva,
                        back.physAddr & ~(pageSize - 1), flags);
            if (tree_rc != 0) {
                std::ostringstream msg;
                msg << "tree map failed (rc " << tree_rc
                    << ") where the flat spec reloaded";
                return msg.str();
            }
            if (auto f = treeAgree("reload gpt", tree, abs.gptHandle))
                return f;

            // The reloaded frame must hold the sealed content
            // bit-identically.
            const hv::Enclave *enc = machine.monitor().findEnclave(hv_id);
            auto walk = machine.monitor().translateEnclaveUncached(
                enc->gptRoot, enc->eptRoot, Gva(pair.gva), false);
            if (!walk.ok())
                return "reload succeeded but the page does not "
                       "translate";
            const u64 page = walk->value & ~(pageSize - 1);
            for (u64 off = 0; off < pageSize; off += sizeof(u64)) {
                if (machine.monitor().mem().read(Hpa(page + off)) !=
                    pair.hvBlob.words[off / sizeof(u64)]) {
                    std::ostringstream msg;
                    msg << "reload content mismatch at offset " << off;
                    return msg.str();
                }
            }
        }
        if (auto f = invariantsAgree("reload_page"))
            return f;
        return epcmAgree("reload_page");
    }

    /** Element gvas of a batch: a contiguous selector window so that a
     *  batch of 1 decodes exactly like the single-op form. */
    u64
    batchGva(i64 spec_id, u64 b_sel, u64 index) const
    {
        const auto abs_it = specState.enclaves.find(spec_id);
        if (abs_it != specState.enclaves.end() &&
            abs_it->second.state != enclStateDead) {
            const AbsEnclave &abs = abs_it->second;
            const u64 el_pages = (abs.elEnd - abs.elStart) / pageSize;
            return abs.elStart +
                   ((b_sel + index) % (el_pages + 2)) * pageSize;
        }
        return 0x10'0000 + ((b_sel + index) % 8) * pageSize;
    }

    Fail
    opAddPagesBatch(const Op &op)
    {
        if (inEnclave)
            return std::nullopt; // management hypercall, normal mode only
        if (lowOnFrames())
            return std::nullopt;
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const u64 count = 1 + op.d % 4;
        const u64 twist = op.c % 8;
        const bool tcs = (op.c >> 3) & 1;

        std::vector<hv::AddPageRequest> reqs;
        std::vector<SpecAddPageOp> spec_ops;
        for (u64 i = 0; i < count; ++i) {
            u64 gva = batchGva(spec_id, op.b, i);
            if (twist == 6 && i == count / 2)
                gva += 0x100; // misaligned mid-batch element
            const u64 src = twist == 7
                                ? opts.monitor.layout.secureBase()
                                : stagePage.value;
            // At most the final element is a TCS, so the entry-point
            // bookkeeping matches the equivalent single-op sequence.
            const bool el_tcs = tcs && i + 1 == count;
            reqs.push_back({Gva(gva), Gpa(src),
                            el_tcs ? AddPageKind::Tcs
                                   : AddPageKind::Reg});
            spec_ops.push_back(
                {gva, src, el_tcs ? epcStateTcs : epcStateReg});
        }

        // The batch≡fold theorem, checked from the live abstract state
        // before either side moves.
        const BatchEquivalence eq =
            checkAddBatchFold(specState, spec_id, spec_ops);
        if (!eq.equivalent)
            return "add_pages_batch batch/fold equivalence broken: " +
                   eq.detail;

        auto st =
            machine.monitor().hcEnclaveAddPagesBatch(hv_id, reqs);
        const i64 rc =
            specHcAddPagesBatch(specState, spec_id, spec_ops);
        if (opts.mirLockstep) {
            // No L14 MIR model for the batch; apply the spec transition
            // to the MIR shadow state, as evict does.
            (void)specHcAddPagesBatch(mirFlat, spec_id, spec_ops);
        }
        if (auto f = verdictsAgree("add_pages_batch", st, rc))
            return f;

        if (st.ok()) {
            const AbsEnclave &abs = specState.enclaves.at(spec_id);
            u64 flags = pteRwFlags;
            if (opts.treeSkewBug)
                flags &= ~pteFlagW;
            std::vector<TreeBatchOp> tree_ops;
            for (u64 i = 0; i < spec_ops.size(); ++i)
                tree_ops.push_back(
                    {true, spec_ops[i].gva,
                     specState.geo.epcGpaBase +
                         (abs.addedPages - spec_ops.size() + i) *
                             pageSize,
                     flags});
            TreeState &tree = gptTrees.at(hv_id);
            const i64 tree_rc = treeApplyBatch(tree, tree_ops);
            if (tree_rc != 0) {
                std::ostringstream msg;
                msg << "tree batch map failed (rc " << tree_rc
                    << ") where the flat spec succeeded";
                return msg.str();
            }
            if (auto f = treeAgree("add_pages_batch gpt", tree,
                                   abs.gptHandle))
                return f;
        }
        if (auto f = invariantsAgree("add_pages_batch"))
            return f;
        return epcmAgree("add_pages_batch");
    }

    Fail
    opEvictPagesBatch(const Op &op)
    {
        if (inEnclave)
            return std::nullopt; // management hypercall, normal mode only
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const u64 count = 1 + op.d % 4;

        std::vector<Gva> gvas;
        std::vector<u64> raw;
        for (u64 i = 0; i < count; ++i) {
            const u64 gva = batchGva(spec_id, op.b, i);
            gvas.push_back(Gva(gva));
            raw.push_back(gva);
        }

        const BatchEquivalence eq =
            checkEvictBatchFold(specState, spec_id, raw);
        if (!eq.equivalent)
            return "evict_pages_batch batch/fold equivalence broken: " +
                   eq.detail;

        auto blobs =
            machine.monitor().hcEnclaveEvictPagesBatch(hv_id, gvas);
        std::vector<u64> versions;
        const IntResult r =
            specHcEvictPagesBatch(specState, spec_id, raw, &versions);
        if (opts.mirLockstep)
            (void)specHcEvictPagesBatch(mirFlat, spec_id, raw);

        if (blobs.ok() != r.isOk) {
            std::ostringstream msg;
            msg << "evict batch verdicts differ: hv="
                << (blobs.ok() ? "ok" : hvErrorName(blobs.error()))
                << " spec=" << (r.isOk ? i64(0) : r.errCode);
            return msg.str();
        }
        if (!blobs.ok() &&
            classifyHv(blobs.error()) != classifySpec(r.errCode)) {
            std::ostringstream msg;
            msg << "evict batch error classes differ: hv="
                << hvErrorName(blobs.error()) << " ("
                << rcName(classifyHv(blobs.error())) << ") vs spec "
                << r.errCode << " (" << rcName(classifySpec(r.errCode))
                << ")";
            return msg.str();
        }
        lastRc = blobs.ok() ? Rc::Ok : classifyHv(blobs.error());

        if (blobs.ok()) {
            if (blobs->size() != raw.size() ||
                versions.size() != raw.size())
                return "evict batch arity skew between hv and spec";
            for (u64 i = 0; i < raw.size(); ++i) {
                if ((*blobs)[i].version != versions[i]) {
                    std::ostringstream msg;
                    msg << "evict batch version skew at element " << i
                        << ": hv " << (*blobs)[i].version << " vs spec "
                        << versions[i];
                    return msg.str();
                }
                sealedBlobs.push_back(
                    {(*blobs)[i], spec_id, raw[i], versions[i]});
            }
            std::vector<TreeBatchOp> tree_ops;
            for (const u64 gva : raw)
                tree_ops.push_back({false, gva, 0, 0});
            TreeState &tree = gptTrees.at(hv_id);
            const i64 tree_rc = treeApplyBatch(tree, tree_ops);
            if (tree_rc != 0) {
                std::ostringstream msg;
                msg << "tree batch unmap failed (rc " << tree_rc
                    << ") where the flat spec evicted";
                return msg.str();
            }
            if (auto f = treeAgree(
                    "evict_pages_batch gpt", tree,
                    specState.enclaves.at(spec_id).gptHandle))
                return f;
        }
        if (auto f = invariantsAgree("evict_pages_batch"))
            return f;
        return epcmAgree("evict_pages_batch");
    }

    Fail
    opSnapshot(const Op &op)
    {
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const bool move = op.b & 1;
        const hv::SnapshotMode mode =
            move ? hv::SnapshotMode::Move : hv::SnapshotMode::Fork;

        if (inEnclave && hv_id == curEnclave) {
            // The spec has no notion of an executing vCPU; the monitor
            // must refuse to snapshot the enclave it is running on its
            // own (a resident vCPU keeps state outside the image).
            auto image = machine.monitor().hcEnclaveSnapshot(hv_id, mode);
            if (image.ok())
                return "hv snapshotted the enclave the vCPU is "
                       "executing in";
            lastRc = classifyHv(image.error());
            return invariantsAgree("snapshot-active");
        }

        auto image = machine.monitor().hcEnclaveSnapshot(hv_id, mode);
        // The spec's measurement is an opaque ledger token; use the
        // monitor's so the two anti-rollback ledgers stay key-aligned.
        const u64 meas = image.ok() ? image->measurement : 0;

        // The migration ≡ quiesced-fold theorem, checked from the live
        // pre-states (pure: both states are copied).  Gated to a
        // deterministic quarter of successful snapshots for throughput.
        if (image.ok() && (op.d & 3) == 0) {
            const BatchEquivalence eq = checkMigrateQuiescedFold(
                specState, twinState, spec_id, move, meas);
            if (!eq.equivalent)
                return "snapshot quiesced-fold equivalence broken: " +
                       eq.detail;
        }

        AbsImage abs;
        const i64 rc =
            specHcSnapshot(specState, spec_id, move, meas, &abs);
        if (opts.mirLockstep) {
            // No L14 MIR model for snapshot; apply the spec transition
            // to the MIR shadow state, as evict does.
            (void)specHcSnapshot(mirFlat, spec_id, move, meas, nullptr);
        }

        if (image.ok() != (rc == 0)) {
            std::ostringstream msg;
            msg << "snapshot verdicts differ: hv="
                << (image.ok() ? "ok" : hvErrorName(image.error()))
                << " spec=" << rc;
            return msg.str();
        }
        if (!image.ok() && classifyHv(image.error()) != classifySpec(rc)) {
            std::ostringstream msg;
            msg << "snapshot error classes differ: hv="
                << hvErrorName(image.error()) << " ("
                << rcName(classifyHv(image.error())) << ") vs spec "
                << rc << " (" << rcName(classifySpec(rc)) << ")";
            return msg.str();
        }
        lastRc = image.ok() ? Rc::Ok : classifyHv(image.error());

        if (image.ok()) {
            // Image shape agreement: same pages, same gva order, the
            // same evict-all version vector.
            if (image->pages.size() != abs.pages.size() ||
                image->versionBase != abs.versionBase) {
                std::ostringstream msg;
                msg << "snapshot image skew: hv " << image->pages.size()
                    << " pages from version " << image->versionBase
                    << " vs spec " << abs.pages.size() << " from "
                    << abs.versionBase;
                return msg.str();
            }
            for (u64 i = 0; i < abs.pages.size(); ++i) {
                if (image->pages[i].gva.value != abs.pages[i].gva ||
                    image->pages[i].version !=
                        abs.pages[i].sealed.version) {
                    std::ostringstream msg;
                    msg << "snapshot page " << i << " skew: hv gva "
                        << std::hex << image->pages[i].gva.value << " v"
                        << std::dec << image->pages[i].version
                        << " vs spec gva " << std::hex
                        << abs.pages[i].gva << " v" << std::dec
                        << abs.pages[i].sealed.version;
                    return msg.str();
                }
            }
            images.push_back({*image, abs});
            if (move) {
                removesHappened = true;
                gptTrees.erase(hv_id);
            } else if (auto f = treeAgree(
                           "snapshot gpt", gptTrees.at(hv_id),
                           specState.enclaves.at(spec_id).gptHandle)) {
                return f;
            }
        }
        if (auto f = invariantsAgree("snapshot"))
            return f;
        return epcmAgree("snapshot");
    }

    Fail
    opRestoreImage(const Op &op)
    {
        if (images.empty())
            return std::nullopt;
        ensureTwin();
        if (twinLowOnFrames())
            return std::nullopt;
        const ImagePair &pair = images[op.a % images.size()];
        hv::EnclaveImage hv_img = pair.hvImage;
        AbsImage abs_img = pair.absImage;

        // OS-side tampering before presentation: the concrete image is
        // corrupted for real, the abstract one records what a verifier
        // would conclude.
        switch (op.c % 4) {
          case 0: // presented verbatim (replays draw ImageRollback)
            break;
          case 1: // header MAC flip
            hv_img.mac ^= 1;
            abs_img.authentic = false;
            break;
          case 2: // truncate: the page vector contradicts the header
            hv_img.pages.pop_back();
            hv_img.pageMeta.pop_back();
            abs_img.pages.pop_back();
            break;
          default: // content tamper under the original blob MAC
            hv_img.pages[0].words[0] ^= 1;
            abs_img.authentic = false;
            break;
        }

        auto twin_id = twin->monitor().hcEnclaveRestoreImage(hv_img);
        const IntResult rc = specHcRestoreImage(twinState, abs_img);

        if (twin_id.ok() != rc.isOk) {
            std::ostringstream msg;
            msg << "restore verdicts differ: hv="
                << (twin_id.ok() ? "ok" : hvErrorName(twin_id.error()))
                << " spec=" << (rc.isOk ? i64(0) : rc.errCode);
            return msg.str();
        }
        if (!twin_id.ok() &&
            classifyHv(twin_id.error()) != classifySpec(rc.errCode)) {
            std::ostringstream msg;
            msg << "restore error classes differ: hv="
                << hvErrorName(twin_id.error()) << " ("
                << rcName(classifyHv(twin_id.error())) << ") vs spec "
                << rc.errCode << " ("
                << rcName(classifySpec(rc.errCode)) << ")";
            return msg.str();
        }
        lastRc = twin_id.ok() ? Rc::Ok : classifyHv(twin_id.error());

        if (twin_id.ok()) {
            // Only restores create enclaves on the twin, so ids stay
            // aligned between the concrete and abstract hosts.
            if (u64(*twin_id) != u64(rc.value)) {
                std::ostringstream msg;
                msg << "twin enclave id skew: hv " << u64(*twin_id)
                    << " vs spec " << rc.value;
                return msg.str();
            }
            // Ledger agreement on the key both sides just accepted.
            const auto hv_led = twin->monitor().restoredImageLedger();
            const auto hv_it = hv_led.find(hv_img.measurement);
            const auto sp_it =
                twinState.imageLedger.find(abs_img.measurement);
            if (hv_it == hv_led.end() ||
                sp_it == twinState.imageLedger.end() ||
                hv_it->second != sp_it->second) {
                std::ostringstream msg;
                msg << "twin ledger skew for measurement " << std::hex
                    << hv_img.measurement;
                return msg.str();
            }
            // Content: every restored page equals its sealed payload.
            std::array<u64, pageSize / sizeof(u64)> words{};
            for (const hv::SealedBlob &blob : hv_img.pages) {
                if (!twin->monitor()
                         .enclaveReadPage(*twin_id, blob.gva,
                                          words.data())
                         .ok())
                    return "restored page does not read back";
                if (words != blob.words) {
                    std::ostringstream msg;
                    msg << "restore content mismatch at gva " << std::hex
                        << blob.gva.value;
                    return msg.str();
                }
            }
        }
        return twinInvariants("restore_image");
    }

    Fail
    opMigrateLive(const Op &op)
    {
        if (inEnclave)
            return std::nullopt; // the engine quiesces the source itself
        if (lowOnFrames())
            return std::nullopt;
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        ensureTwin();
        if (twinLowOnFrames())
            return std::nullopt;

        const hv::Enclave *enc = machine.monitor().findEnclave(hv_id);
        const bool move = op.c & 1;
        const u64 meas = enc ? enc->measurement : 0;

        // Deterministic dirty injection between rounds: each workload
        // step rewrites one resident page through the stamping path.
        std::vector<Gva> resident;
        if (auto r = machine.monitor().enclaveResidentPages(hv_id))
            resident = std::move(*r);
        const u64 salt = op.d;
        const auto workload = [&](u64 round) {
            for (u64 t = 0; t < 4 && t < resident.size(); ++t) {
                const Gva va =
                    resident[(salt + round + t) % resident.size()];
                if (machine.monitor()
                        .enclaveStore(hv_id, va,
                                      0xd117'0000 + salt * 16 + round)
                        .ok())
                    break;
            }
        };

        migrate::MigrateOptions mopts;
        mopts.mode = move ? hv::SnapshotMode::Move
                          : hv::SnapshotMode::Fork;
        mopts.maxPrecopyRounds = 1 + op.b % 3;
        auto result =
            migrate::migrateLive(machine, hv_id, *twin, workload, mopts);

        // Mirror the spec on a scratch copy: the source-side fold
        // commits exactly when the engine got past sealFromStaging —
        // i.e. on success, or on a restore-stage failure (the twin ran
        // dry or its ledger refused the lineage).
        FlatState scratch = specState;
        AbsImage abs;
        const i64 rc = specHcSnapshot(scratch, spec_id, move, meas, &abs);

        if (result.ok()) {
            lastRc = Rc::Ok;
            if (rc != 0) {
                std::ostringstream msg;
                msg << "migrate_live succeeded but the spec source fold "
                       "failed with "
                    << rc;
                return msg.str();
            }
            commitMigrateFold(scratch, hv_id, move);
            const IntResult rr = specHcRestoreImage(twinState, abs);
            if (!rr.isOk) {
                std::ostringstream msg;
                msg << "migrate_live restored on the twin but the spec "
                       "restore failed with "
                    << rr.errCode;
                return msg.str();
            }
            if (u64(result->dstId) != u64(rr.value)) {
                std::ostringstream msg;
                msg << "migrated twin id skew: hv " << u64(result->dstId)
                    << " vs spec " << rr.value;
                return msg.str();
            }
            if (!move) {
                // The content oracle: after a fork migration the twin
                // must hold exactly what the source holds now — this is
                // what catches skip-dirty-on-final-round, whose stale
                // pages ship under freshly recomputed, valid MACs.
                std::array<u64, pageSize / sizeof(u64)> src_words{};
                std::array<u64, pageSize / sizeof(u64)> dst_words{};
                for (const Gva gva : resident) {
                    if (!machine.monitor()
                             .enclaveReadPage(hv_id, gva,
                                              src_words.data())
                             .ok() ||
                        !twin->monitor()
                             .enclaveReadPage(result->dstId, gva,
                                              dst_words.data())
                             .ok())
                        return "migrated page does not read back";
                    if (src_words != dst_words) {
                        std::ostringstream msg;
                        msg << "migrate content oracle: twin diverges "
                               "at gva "
                            << std::hex << gva.value;
                        return msg.str();
                    }
                }
            } else if (machine.monitor().findEnclave(hv_id)) {
                return "move migration left the source enclave alive";
            }
        } else {
            const HvError e = result.error();
            lastRc = classifyHv(e);
            const bool fold_committed =
                e == HvError::ImageRollback || e == HvError::OutOfEpc ||
                e == HvError::OutOfMemory ||
                e == HvError::ImageAuthFailed ||
                e == HvError::ImageTruncated;
            if (fold_committed) {
                if (rc != 0) {
                    std::ostringstream msg;
                    msg << "migrate_live failed on the twin (restore "
                           "stage) but the spec source fold failed "
                           "upstream with "
                        << rc;
                    return msg.str();
                }
                commitMigrateFold(scratch, hv_id, move);
                const IntResult rr = specHcRestoreImage(twinState, abs);
                if (rr.isOk ||
                    classifySpec(rr.errCode) != classifyHv(e)) {
                    std::ostringstream msg;
                    msg << "migrate restore-failure classes differ: hv="
                        << hvErrorName(e) << " vs spec "
                        << (rr.isOk ? i64(0) : rr.errCode);
                    return msg.str();
                }
            } else if (rc == 0 || classifySpec(rc) != classifyHv(e)) {
                std::ostringstream msg;
                msg << "migrate quiesce-failure classes differ: hv="
                    << hvErrorName(e) << " vs spec " << rc;
                return msg.str();
            }
        }
        if (auto f = invariantsAgree("migrate_live"))
            return f;
        if (auto f = twinInvariants("migrate_live"))
            return f;
        return epcmAgree("migrate_live");
    }

    /** Commit a scratch spec fold after migrateLive moved the source. */
    void
    commitMigrateFold(FlatState &scratch, EnclaveId hv_id, bool move)
    {
        specState = std::move(scratch);
        if (opts.mirLockstep) {
            // Keep the MIR shadow equal to the committed spec state
            // (no L14 model for the migration fold).
            mirFlat = specState;
        }
        if (move) {
            removesHappened = true;
            gptTrees.erase(hv_id);
        }
    }

    /** Invariants of the twin host, both concrete and abstract. */
    Fail
    twinInvariants(const char *where)
    {
        const auto hv_viol =
            hv::checkMonitorInvariants(twin->monitor());
        if (!hv_viol.empty())
            return std::string(where) +
                   ": twin monitor invariant broken: " + hv_viol.front();
        const auto spec_viol = sec::checkInvariants(twinState);
        if (!spec_viol.empty())
            return std::string(where) +
                   ": twin abstract invariant broken: " +
                   spec_viol.front().detail;
        return std::nullopt;
    }

    /** The restore/migration target host, created on first use. */
    void
    ensureTwin()
    {
        if (!twin)
            twin = std::make_unique<Machine>(opts.monitor);
    }

    /** The twin-side analogue of lowOnFrames (same model gap). */
    bool
    twinLowOnFrames() const
    {
        const auto &fa = twin->monitor().ptAlloc();
        if (fa.totalFrames() - fa.usedFrames() < 16)
            return true;
        u64 free_spec = 0;
        for (const bool used : twinState.allocated)
            free_spec += used ? 0 : 1;
        return free_spec < 16;
    }

    Fail
    opEnter(const Op &op)
    {
        EnclaveId hv_id;
        i64 spec_id;
        pickEnclave(op.a, hv_id, spec_id);
        const auto abs_it = specState.enclaves.find(spec_id);
        const bool expect_ok =
            !inEnclave && abs_it != specState.enclaves.end() &&
            abs_it->second.state == enclStateInitialized;
        auto st =
            machine.monitor().hcEnclaveEnter(hv_id, machine.vcpu());
        if (st.ok() != expect_ok) {
            std::ostringstream msg;
            msg << "enter verdict: hv="
                << (st.ok() ? "ok" : hvErrorName(st.error()))
                << " but the abstract lifecycle says "
                << (expect_ok ? "ok" : "reject");
            return msg.str();
        }
        lastRc = st.ok() ? Rc::Ok : classifyHv(st.error());
        if (st.ok()) {
            inEnclave = true;
            curEnclave = hv_id;
        }
        return invariantsAgree("enter");
    }

    Fail
    opExit(const Op &)
    {
        auto st = machine.monitor().hcEnclaveExit(machine.vcpu());
        if (st.ok() != inEnclave) {
            std::ostringstream msg;
            msg << "exit verdict: hv="
                << (st.ok() ? "ok" : hvErrorName(st.error()))
                << " but vCPU is " << (inEnclave ? "inside" : "outside");
            return msg.str();
        }
        lastRc = st.ok() ? Rc::Ok : classifyHv(st.error());
        if (st.ok()) {
            inEnclave = false;
            curEnclave = invalidEnclave;
        }
        return invariantsAgree("exit");
    }

    /// @}
    /// @name Memory-access ops
    /// @{

    Fail
    opMemAccess(const Op &op)
    {
        const bool is_write = op.kind == OpKind::MemStore;
        const u64 va = decodeMemVa(op);
        hv::VCpu &cpu = machine.vcpu();
        hv::Monitor &mon = machine.monitor();

        // Uncached reference walk through the live tables.
        auto walk = inEnclave
                        ? mon.translateEnclaveUncached(
                              cpu.gptRoot, cpu.eptRoot, Gva(va), is_write)
                        : mon.translateUncached(cpu.gptRoot, cpu.eptRoot,
                                                Gva(va), is_write);

        const u64 hits_before = mon.tlb().hits();
        const u64 misses_before = mon.tlb().misses();
        bool access_ok;
        HvError access_err = HvError::None;
        u64 loaded = 0;
        if (is_write) {
            auto st = machine.memStore(Gva(va), op.d);
            access_ok = st.ok();
            access_err = st.error();
        } else {
            auto ld = machine.memLoad(Gva(va));
            access_ok = ld.ok();
            access_err = ld.error();
            if (ld.ok())
                loaded = *ld;
        }
        addFeature(0x3000 + u32(op.kind) * 4 +
                   (mon.tlb().hits() > hits_before ? 2u : 0u) +
                   (mon.tlb().misses() > misses_before ? 1u : 0u));

        // The TLB-assisted path and the uncached walk must agree: a
        // cached translation surviving an unmap is exactly the
        // stale-TLB isolation hole.
        if (access_ok != walk.ok()) {
            std::ostringstream msg;
            msg << (is_write ? "store" : "load") << " at va " << std::hex
                << va << ": cached path "
                << (access_ok ? "succeeded" : hvErrorName(access_err))
                << " but uncached walk "
                << (walk.ok() ? "succeeded" : hvErrorName(walk.error()));
            return msg.str();
        }
        if (access_ok && !is_write &&
            loaded != mon.mem().read(*walk)) {
            std::ostringstream msg;
            msg << "load at va " << std::hex << va
                << ": cached translation reads a different page than "
                   "the uncached walk";
            return msg.str();
        }
        lastRc = access_ok ? Rc::Ok : classifyHv(access_err);

        // In enclave mode, the L15 spec translation is a third oracle.
        if (inEnclave) {
            const AbsEnclave &abs =
                specState.enclaves.at(idMap.at(curEnclave));
            const QueryResult sq =
                specMemTranslate(specState, abs.gptHandle, abs.eptHandle,
                                 va, is_write);
            if (auto f = translationAgree(
                    is_write ? "store" : "load", va, walk, sq))
                return f;
        }
        return invariantsAgree("mem");
    }

    Fail
    opOsUnmap(const Op &op)
    {
        if (inEnclave)
            return std::nullopt; // guest PT management is a normal-mode op
        const u64 va = topRegionPage(op.a);
        auto st = machine.os().gptUnmap(machine.kernelGptRoot(), va);
        lastRc = st.ok() ? Rc::Ok : classifyHv(st.error());
        // MOV CR3 reload: the architectural point where stale entries
        // must die.
        (void)machine.monitor().guestSetGptRoot(machine.vcpu(),
                                                machine.vcpu().gptRoot);
        return invariantsAgree("os_unmap");
    }

    Fail
    opOsMap(const Op &op)
    {
        if (inEnclave)
            return std::nullopt;
        const u64 va = topRegionPage(op.a);
        auto st = machine.os().gptMap(machine.kernelGptRoot(), va,
                                      Gpa(va), hv::PteFlags::userRw());
        lastRc = st.ok() ? Rc::Ok : classifyHv(st.error());
        (void)machine.monitor().guestSetGptRoot(machine.vcpu(),
                                                machine.vcpu().gptRoot);
        return invariantsAgree("os_map");
    }

    Fail
    opQueryVa(const Op &op)
    {
        std::vector<EnclaveId> live;
        for (const EnclaveId id : created) {
            const auto it = specState.enclaves.find(idMap.at(id));
            if (machine.monitor().findEnclave(id) &&
                it != specState.enclaves.end() &&
                it->second.state != enclStateDead)
                live.push_back(id);
        }
        if (live.empty())
            return std::nullopt;
        const EnclaveId hv_id = live[op.a % live.size()];
        const hv::Enclave *enc = machine.monitor().findEnclave(hv_id);
        const AbsEnclave &abs = specState.enclaves.at(idMap.at(hv_id));

        u64 va;
        const u64 el_pages = (abs.elEnd - abs.elStart) / pageSize;
        if (op.c % 3 == 2)
            va = abs.mbufGva + (op.b % abs.mbufPages) * pageSize;
        else
            va = abs.elStart + (op.b % (el_pages + 2)) * pageSize;

        lastRc = Rc::Ok;
        for (const bool is_write : {false, true}) {
            auto walk = machine.monitor().translateEnclaveUncached(
                enc->gptRoot, enc->eptRoot, Gva(va), is_write);
            const QueryResult sq =
                specMemTranslate(specState, abs.gptHandle, abs.eptHandle,
                                 va, is_write);
            if (auto f = translationAgree(
                    is_write ? "query(w)" : "query(r)", va, walk, sq))
                return f;
            if (!walk.ok())
                lastRc = classifyHv(walk.error());
            if (auto f = mirAgree("mem_translate", harness15(),
                                  "mem_translate",
                                  {encodeHandle(abs.gptHandle),
                                   encodeHandle(abs.eptHandle), uv(va),
                                   iv(is_write ? 1 : 0)},
                                  encodeQueryResult(sq)))
                return f;
        }
        return std::nullopt;
    }

    /// @}
    /// @name Layer ops (spec vs tree vs MIR on the scratch AS)
    /// @{

    Fail
    opLayerMap(const Op &op)
    {
        if (lowOnFrames())
            return std::nullopt;
        if (auto f = ensureScratch())
            return f;
        if (!scratchHandle)
            return std::nullopt;
        const u64 va = (op.a % 32) * pageSize;
        const u64 pa = (op.b % 64) * pageSize;
        // Only non-huge leaf flags: the incremental tree mirror models
        // 4 KiB mappings, like the enclave tables.
        const u64 flags =
            op.c % 2 ? pteRwFlags : (pteFlagP | pteFlagU);

        const i64 rc = specAsMap(specState, *scratchHandle, va, pa, flags);
        u64 tree_flags = flags;
        if (opts.treeSkewBug)
            tree_flags &= ~pteFlagW;
        const i64 tree_rc = treeMap(scratchTree, va, pa, tree_flags);
        lastRc = classifySpec(rc);
        if (rc != tree_rc) {
            std::ostringstream msg;
            msg << "as_map rc: flat spec " << rc << " vs tree view "
                << tree_rc;
            return msg.str();
        }
        if (auto f = mirAgree("as_map", harness11(), "as_map",
                              {encodeHandle(*scratchHandle), uv(va),
                               uv(pa), uv(flags)},
                              iv(rc)))
            return f;
        return treeAgree("as_map", scratchTree, *scratchHandle);
    }

    Fail
    opLayerUnmap(const Op &op)
    {
        if (lowOnFrames())
            return std::nullopt;
        if (auto f = ensureScratch())
            return f;
        if (!scratchHandle)
            return std::nullopt;
        const u64 va = (op.a % 32) * pageSize;
        const i64 rc = specAsUnmap(specState, *scratchHandle, va);
        const i64 tree_rc = treeUnmap(scratchTree, va);
        lastRc = classifySpec(rc);
        if (rc != tree_rc) {
            std::ostringstream msg;
            msg << "as_unmap rc: flat spec " << rc << " vs tree view "
                << tree_rc;
            return msg.str();
        }
        if (auto f = mirAgree("as_unmap", harness11(), "as_unmap",
                              {encodeHandle(*scratchHandle), uv(va)},
                              iv(rc)))
            return f;
        return treeAgree("as_unmap", scratchTree, *scratchHandle);
    }

    Fail
    opLayerQuery(const Op &op)
    {
        if (lowOnFrames())
            return std::nullopt;
        if (auto f = ensureScratch())
            return f;
        if (!scratchHandle)
            return std::nullopt;
        const u64 va = (op.a % 32) * pageSize + (op.b % 64) * 8;
        const QueryResult sq = specAsQuery(specState, *scratchHandle, va);
        const QueryResult tq = treeQuery(scratchTree, va);
        lastRc = sq.isSome ? Rc::Ok : Rc::NoSuch;
        if (!(sq == tq)) {
            std::ostringstream msg;
            msg << "as_query at va " << std::hex << va
                << ": flat spec and tree view disagree";
            return msg.str();
        }
        return mirAgree("as_query", harness11(), "as_query",
                        {encodeHandle(*scratchHandle), uv(va)},
                        encodeQueryResult(sq));
    }

    /// @}
    /// @name Shared oracles
    /// @{

    Fail
    verdictsAgree(const char *what, const Status &st, i64 rc)
    {
        if (st.ok() != (rc == 0)) {
            std::ostringstream msg;
            msg << what << " verdicts differ: hv="
                << (st.ok() ? "ok" : hvErrorName(st.error()))
                << " spec=" << rc;
            return msg.str();
        }
        if (!st.ok() && classifyHv(st.error()) != classifySpec(rc)) {
            std::ostringstream msg;
            msg << what << " error classes differ: hv="
                << hvErrorName(st.error()) << " ("
                << rcName(classifyHv(st.error())) << ") vs spec " << rc
                << " (" << rcName(classifySpec(rc)) << ")";
            return msg.str();
        }
        lastRc = st.ok() ? Rc::Ok : classifyHv(st.error());
        return std::nullopt;
    }

    /** hv uncached walk vs specMemTranslate on the same va. */
    Fail
    translationAgree(const char *what, u64 va, const Expected<Hpa> &walk,
                     const QueryResult &sq)
    {
        if (walk.ok() != sq.isSome) {
            std::ostringstream msg;
            msg << what << " at va " << std::hex << va << ": hv walk "
                << (walk.ok() ? "succeeded" : hvErrorName(walk.error()))
                << " but spec mem_translate "
                << (sq.isSome ? "succeeded" : "missed");
            return msg.str();
        }
        if (!walk.ok())
            return std::nullopt;
        const u64 hv_page = walk->value & ~(pageSize - 1);
        const u64 spec_page = sq.physAddr & ~(pageSize - 1);
        if (specState.geo.inEpc(spec_page)) {
            if (!machine.monitor().epcm().isEpc(Hpa(hv_page))) {
                std::ostringstream msg;
                msg << what << " at va " << std::hex << va
                    << ": spec resolves into the EPC, hv to " << hv_page;
                return msg.str();
            }
            if (!removesHappened && hv_page != spec_page) {
                std::ostringstream msg;
                msg << what << " at va " << std::hex << va
                    << ": EPC page skew (hv " << hv_page << " vs spec "
                    << spec_page << ")";
                return msg.str();
            }
        } else if (hv_page != spec_page) {
            std::ostringstream msg;
            msg << what << " at va " << std::hex << va
                << ": hv resolves to " << hv_page << ", spec to "
                << spec_page;
            return msg.str();
        }
        return std::nullopt;
    }

    /** Run the MIR model in lockstep and require exact agreement. */
    Fail
    mirAgree(const char *what, LayerHarness &harness,
             const std::string &fn, std::vector<mir::Value> args,
             const mir::Value &expect)
    {
        if (!opts.mirLockstep)
            return std::nullopt;
        auto out = harness.run(fn, std::move(args));
        if (!out.ok())
            return std::string(what) +
                   ": MIR model trapped: " + out.trap().message;
        if (!(*out == expect))
            return std::string(what) +
                   ": MIR result differs from the spec";
        if (!(mirFlat == specState))
            return std::string(what) + ": MIR state diverged: " +
                   diffStates(mirFlat, specState);
        return std::nullopt;
    }

    /** Sec. 5.2 invariants on both the concrete and abstract states. */
    Fail
    invariantsAgree(const char *where)
    {
        const auto hv_viol =
            hv::checkMonitorInvariants(machine.monitor());
        if (!hv_viol.empty())
            return std::string(where) + ": monitor invariant broken: " +
                   hv_viol.front();
        const auto spec_viol = sec::checkInvariants(specState);
        if (!spec_viol.empty())
            return std::string(where) + ": abstract invariant broken: " +
                   spec_viol.front().detail;
        return std::nullopt;
    }

    /** Index-aligned EPCM agreement (exact until the first remove). */
    Fail
    epcmAgree(const char *where)
    {
        if (removesHappened)
            return std::nullopt;
        const hv::Epcm &hv_epcm = machine.monitor().epcm();
        const u64 epc_base = hv_epcm.range().start.value;
        const u64 count =
            std::min(hv_epcm.totalPages(), u64(specState.epcm.size()));
        for (u64 i = 0; i < count; ++i) {
            const hv::EpcmEntry &he =
                hv_epcm.entryFor(Hpa(epc_base + i * pageSize));
            const AbsEpcmEntry &se = specState.epcm[i];
            const i64 hv_state =
                he.state == hv::EpcPageState::Free ? epcStateFree
                : he.state == hv::EpcPageState::Reg ? epcStateReg
                                                    : epcStateTcs;
            std::ostringstream msg;
            msg << where << ": EPCM entry " << i << " differs: ";
            if (hv_state != se.state) {
                msg << "state hv=" << hv_state << " spec=" << se.state;
                return msg.str();
            }
            if (hv_state == epcStateFree)
                continue;
            const auto owner_it = idMap.find(he.owner);
            const i64 hv_owner =
                owner_it == idMap.end() ? -1 : owner_it->second;
            if (hv_owner != se.owner) {
                msg << "owner hv=" << hv_owner << " spec=" << se.owner;
                return msg.str();
            }
            if (he.linAddr.value != se.linAddr) {
                msg << "linear address hv=" << std::hex
                    << he.linAddr.value << " spec=" << se.linAddr;
                return msg.str();
            }
        }
        return std::nullopt;
    }

    /** Refinement relation R between a tree mirror and the flat table. */
    Fail
    treeAgree(const char *what, const TreeState &tree, i64 handle)
    {
        const auto viol = sec::checkTreeRefinement(
            tree, specState, specState.rootOf(handle));
        if (viol.empty())
            return std::nullopt;
        return std::string(what) +
               ": refinement R broken: " + viol.front().detail;
    }

    /// @}
    /// @name Decoding helpers
    /// @{

    void
    pickEnclave(u64 sel, EnclaveId &hv_id, i64 &spec_id)
    {
        if (created.empty()) {
            // No enclave ever created: probe unknown ids (both sides
            // number identically from 1).
            hv_id = EnclaveId(1 + sel % 3);
            spec_id = i64(hv_id);
            return;
        }
        hv_id = created[sel % created.size()];
        spec_id = idMap.at(hv_id);
    }

    u64
    decodeMemVa(const Op &op) const
    {
        const u64 off = 8 * (op.c % 512);
        if (inEnclave) {
            const AbsEnclave &abs =
                specState.enclaves.at(idMap.at(curEnclave));
            const u64 el_pages = (abs.elEnd - abs.elStart) / pageSize;
            switch (op.a % 4) {
              case 0:
              case 1:
                return abs.elStart +
                       (op.b % (el_pages + 2)) * pageSize + off;
              case 2:
                return abs.mbufGva +
                       (op.b % abs.mbufPages) * pageSize + off;
              default:
                return abs.elEnd + pageSize + off;
            }
        }
        return topRegionPage(op.a) + off;
    }

    /**
     * Normal-mode accesses stay in the top quarter of normal memory:
     * the OS pool is first-fit from the bottom, so page-table frames,
     * staging and mbuf backings never live up here and a random store
     * cannot legitimately invalidate a cached translation.
     */
    u64
    topRegionPage(u64 sel) const
    {
        const u64 normal_pages =
            opts.monitor.layout.secureBase() / pageSize;
        const u64 top_base = normal_pages * 3 / 4;
        const u64 top_count = normal_pages - top_base;
        return (top_base + sel % top_count) * pageSize;
    }

    /**
     * Resource guard: near the allocator frontier hv and spec diverge
     * legitimately (the monitor's normal EPT costs a few frames the
     * abstract machine does not model), so allocating ops back off
     * while any side has fewer than 16 free frames.
     */
    bool
    lowOnFrames()
    {
        const auto &fa = machine.monitor().ptAlloc();
        if (fa.totalFrames() - fa.usedFrames() < 16)
            return true;
        u64 free_spec = 0;
        for (const bool used : specState.allocated)
            free_spec += used ? 0 : 1;
        return free_spec < 16;
    }

    Fail
    ensureScratch()
    {
        if (scratchHandle || scratchFailed)
            return std::nullopt;
        const IntResult res = specAsCreate(specState);
        if (auto f = mirAgree("as_create", harness11(), "as_create", {},
                              encodeHandleResult(res)))
            return f;
        if (!res.isOk) {
            scratchFailed = true;
            return std::nullopt;
        }
        scratchHandle = i64(res.value);
        scratchTree = TreeState{};
        return std::nullopt;
    }

    /// @}

    LayerHarness &
    harness11()
    {
        if (!h11)
            h11 = std::make_unique<LayerHarness>(11, mirFlat);
        return *h11;
    }

    LayerHarness &
    harness14()
    {
        if (!h14)
            h14 = std::make_unique<LayerHarness>(14, mirFlat);
        return *h14;
    }

    LayerHarness &
    harness15()
    {
        if (!h15)
            h15 = std::make_unique<LayerHarness>(15, mirFlat);
        return *h15;
    }

    void
    addFeature(u32 feature)
    {
        featureSet.insert(feature & 0xFFFF);
    }

    static u32
    pairFeature(u32 prev, u32 cur)
    {
        u32 x = prev * 211 + cur * 7 + 0x9e37;
        x ^= x >> 7;
        return 0x8000 | (x & 0x7FFF);
    }

    /** One sealed blob in (modeled) OS custody: hv + spec images. */
    struct SealedPair
    {
        hv::SealedBlob hvBlob;
        i64 specOwner = 0;
        u64 gva = 0;
        u64 version = 0;
    };

    /** One enclave image in (modeled) OS custody, append-only like the
     *  blob history: stale images stay presentable, which is what the
     *  anti-rollback ledger has to reject. */
    struct ImagePair
    {
        hv::EnclaveImage hvImage;
        AbsImage absImage;
    };

    const ExecOptions &opts;
    Machine machine;
    FlatState specState;
    FlatState mirFlat;
    std::unique_ptr<LayerHarness> h11, h14, h15;
    std::map<EnclaveId, i64> idMap;
    std::map<EnclaveId, TreeState> gptTrees;
    std::vector<EnclaveId> created;
    std::vector<SealedPair> sealedBlobs;
    std::vector<ImagePair> images;
    /** The restore/migration target host (lazy) and its spec shadow. */
    std::unique_ptr<Machine> twin;
    FlatState twinState;
    bool removesHappened = false;
    bool inEnclave = false;
    EnclaveId curEnclave = invalidEnclave;
    std::optional<i64> scratchHandle;
    bool scratchFailed = false;
    TreeState scratchTree;
    Gpa stagePage{};
    Rc lastRc = Rc::Skipped;
    u32 prevSig = 0;
    std::set<u32> featureSet;
};

} // namespace

ExecOptions
ExecOptions::standard()
{
    ExecOptions opts;
    opts.monitor.layout.totalBytes = 4 * 1024 * 1024;
    opts.monitor.layout.ptAreaBytes = 1 * 1024 * 1024;
    opts.monitor.layout.epcBytes = 1 * 1024 * 1024;
    return opts;
}

std::vector<std::string>
plantedBugNames()
{
    return {"elrange-off-by-one", "epcm-owner-skip",   "stale-tlb",
            "wrong-perm-mask",    "frame-double-free", "tree-skew",
            "skip-shootdown-ack", "seal-rollback-accept",
            "batch-skip-middle-invalidate",
            "skip-dirty-page-on-final-round"};
}

bool
applyPlantedBug(ExecOptions &opts, const std::string &name)
{
    if (name == "elrange-off-by-one")
        opts.monitor.planted.elrangeOffByOne = true;
    else if (name == "epcm-owner-skip")
        opts.monitor.planted.skipEpcmOwnerCheck = true;
    else if (name == "stale-tlb")
        opts.monitor.planted.staleTlbOnUnmap = true;
    else if (name == "wrong-perm-mask")
        opts.monitor.planted.wrongPermMask = true;
    else if (name == "frame-double-free")
        opts.monitor.planted.frameDoubleFree = true;
    else if (name == "tree-skew")
        opts.treeSkewBug = true;
    else if (name == "skip-shootdown-ack") {
        opts.smpFuzz = true;
        opts.skipShootdownAckBug = true;
    } else if (name == "seal-rollback-accept")
        opts.monitor.planted.acceptSealRollback = true;
    else if (name == "batch-skip-middle-invalidate") {
        // Enter/exit flush the whole domain in the single-vCPU TLB
        // model, so the skipped middle invalidation is only observable
        // through a *sibling* vCPU's cache: fuzz it on the SMP machine,
        // where the coherence oracle sees the surviving entry.
        opts.smpFuzz = true;
        opts.monitor.planted.batchSkipMiddleInvalidate = true;
    } else if (name == "skip-dirty-page-on-final-round") {
        // Silent at the protocol level: the stale staged pages ship
        // under freshly recomputed, valid MACs, so only the
        // migrate_live content oracle on the restored twin catches it.
        opts.monitor.planted.skipDirtyOnFinalRound = true;
    } else
        return false;
    return true;
}

ExecResult
executeTrace(const ExecOptions &opts, const Trace &trace)
{
    if (needsSmpExecutor(opts, trace))
        return executeSmpTrace(opts, trace);
    Executor executor(opts);
    return executor.run(trace);
}

std::string
renderExecResult(const ExecResult &result)
{
    std::ostringstream out;
    out << "result: " << (result.divergence ? "divergence" : "clean")
        << "\n";
    out << "ops: " << result.opsExecuted << "\n";
    out << "signature: 0x" << std::hex << result.signature << std::dec
        << "\n";
    out << "features: " << result.features.size() << "\n";
    if (result.divergence) {
        out << "failed_op: " << result.failedOp << "\n";
        out << "detail: " << result.detail << "\n";
    }
    return out.str();
}

} // namespace hev::fuzz
