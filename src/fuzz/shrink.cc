#include "fuzz/shrink.hh"

#include <algorithm>
#include <sstream>

namespace hev::fuzz
{

namespace
{

/** Budgeted "does it still diverge?" predicate. */
class Reducer
{
  public:
    Reducer(const ExecOptions &options, u64 budget)
        : opts(options), maxExecs(budget)
    {}

    bool
    stillFails(const Trace &trace, ExecResult *out = nullptr)
    {
        if (execs >= maxExecs)
            return false; // budget drained: treat as "don't take it"
        ++execs;
        const ExecResult result = executeTrace(opts, trace);
        if (result.divergence && out)
            *out = result;
        return result.divergence;
    }

    bool exhausted() const { return execs >= maxExecs; }
    u64 spent() const { return execs; }

  private:
    const ExecOptions &opts;
    u64 maxExecs;
    u64 execs = 0;
};

/** Remove ops [at, at+len) from a trace. */
Trace
without(const Trace &trace, u64 at, u64 len)
{
    Trace out;
    out.ops.reserve(trace.ops.size() - len);
    for (u64 i = 0; i < trace.ops.size(); ++i)
        if (i < at || i >= at + len)
            out.ops.push_back(trace.ops[i]);
    return out;
}

} // namespace

ShrinkResult
shrinkTrace(const ExecOptions &opts, const Trace &failing, u64 maxExecs)
{
    Reducer reducer(opts, maxExecs);
    ShrinkResult shrunk;
    shrunk.trace = failing;
    // Re-establish the failure so result always matches trace.
    if (!reducer.stillFails(shrunk.trace, &shrunk.result)) {
        shrunk.execsUsed = reducer.spent();
        return shrunk; // not a failing trace (or zero budget): identity
    }

    // Stage 1: ddmin chunk removal with halving granularity.
    u64 chunk = shrunk.trace.ops.size() / 2;
    while (chunk >= 1) {
        bool removedAny = false;
        u64 at = 0;
        while (at < shrunk.trace.ops.size()) {
            const u64 len =
                std::min<u64>(chunk, shrunk.trace.ops.size() - at);
            if (len == shrunk.trace.ops.size()) {
                ++at;
                continue; // never try the empty trace
            }
            Trace candidate = without(shrunk.trace, at, len);
            ExecResult result;
            if (reducer.stillFails(candidate, &result)) {
                shrunk.trace = std::move(candidate);
                shrunk.result = result;
                removedAny = true;
                // Same position now holds the next chunk.
            } else {
                at += len;
            }
        }
        if (chunk == 1 && !removedAny)
            break;
        chunk = chunk > 1 ? chunk / 2 : 1;
        if (reducer.exhausted())
            break;
    }

    // Stage 2: single-op removal to a true fixpoint (1-minimality).
    bool fixpoint = false;
    while (!fixpoint && !reducer.exhausted()) {
        fixpoint = true;
        for (u64 at = 0;
             at < shrunk.trace.ops.size() && shrunk.trace.ops.size() > 1;
             ) {
            Trace candidate = without(shrunk.trace, at, 1);
            ExecResult result;
            if (reducer.stillFails(candidate, &result)) {
                shrunk.trace = std::move(candidate);
                shrunk.result = result;
                fixpoint = false;
            } else {
                ++at;
            }
        }
    }
    shrunk.oneMinimal = fixpoint && !reducer.exhausted();

    // Stage 3: canonicalize arguments toward zero (reader-friendlier
    // repros; cannot break 1-minimality, which is about op count).
    for (u64 at = 0; at < shrunk.trace.ops.size(); ++at) {
        for (int arg = 0; arg < 4; ++arg) {
            Trace candidate = shrunk.trace;
            Op &op = candidate.ops[at];
            u64 *slots[4] = {&op.a, &op.b, &op.c, &op.d};
            if (*slots[arg] == 0)
                continue;
            *slots[arg] = 0;
            ExecResult result;
            if (reducer.stillFails(candidate, &result)) {
                shrunk.trace = std::move(candidate);
                shrunk.result = result;
            }
        }
    }

    shrunk.execsUsed = reducer.spent();
    return shrunk;
}

std::string
renderReproFile(const ShrinkResult &shrunk,
                const std::vector<std::string> &bugNames)
{
    std::ostringstream out;
    out << "# hev_fuzz shrunk repro\n";
    out << "# divergence: " << shrunk.result.detail << "\n";
    out << "# signature: 0x" << std::hex << shrunk.result.signature
        << std::dec << "\n";
    if (!bugNames.empty()) {
        out << "# planted bugs:";
        for (const std::string &name : bugNames)
            out << " " << name;
        out << "\n";
    }
    out << "# replay: hev_fuzz replay";
    for (const std::string &name : bugNames)
        out << " --bug " << name;
    out << " <this-file>\n";
    out << serializeTrace(shrunk.trace);
    return out.str();
}

std::string
renderRegressionTestBody(const ShrinkResult &shrunk,
                         const std::vector<std::string> &bugNames)
{
    std::ostringstream out;
    out << "// Shrunk fuzzer counterexample (" << shrunk.trace.ops.size()
        << " ops).\n";
    out << "// Divergence: " << shrunk.result.detail << "\n";
    out << "fuzz::ExecOptions opts = fuzz::ExecOptions::standard();\n";
    for (const std::string &name : bugNames)
        out << "ASSERT_TRUE(fuzz::applyPlantedBug(opts, \"" << name
            << "\"));\n";
    out << "fuzz::Trace trace;\n";
    for (const Op &op : shrunk.trace.ops) {
        out << "trace.ops.push_back({fuzz::OpKind::";
        // The enum names mirror the serialized names in UpperCamel.
        const std::string snake = opKindName(op.kind);
        bool upper = true;
        for (const char c : snake) {
            if (c == '_') {
                upper = true;
                continue;
            }
            out << char(upper ? c - 'a' + 'A' : c);
            upper = false;
        }
        out << ", " << op.a << ", " << op.b << ", " << op.c << ", "
            << op.d << "});\n";
    }
    out << "const fuzz::ExecResult result = "
           "fuzz::executeTrace(opts, trace);\n";
    out << "EXPECT_TRUE(result.divergence);\n";
    return out.str();
}

} // namespace hev::fuzz
