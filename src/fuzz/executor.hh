/**
 * @file
 * Lockstep differential execution of one fuzz trace.
 *
 * One trace runs against every artifact of the development at once:
 * the concrete monitor (hv::Machine), the flat functional specs, the
 * MIR models (checked in lockstep via LayerHarness, exactly like the
 * conformance campaigns), and the tree-shaped high spec through the
 * refinement relation R.  After every op the executor cross-checks
 * verdict classes, translation results, EPCM contents, the Sec. 5.2
 * invariant families on both the concrete and abstract states, and R
 * itself.  Any disagreement is a divergence — the fuzzer's only
 * failure signal (planted bugs surface as divergences, never crashes).
 *
 * Execution is bit-deterministic: the result of a trace depends only
 * on (options, trace), never on wall clock, addresses, or thread
 * interleaving, so corpus replay and shrinking are exact.
 */

#ifndef HEV_FUZZ_EXECUTOR_HH
#define HEV_FUZZ_EXECUTOR_HH

#include <string>
#include <vector>

#include "fuzz/trace.hh"
#include "hv/monitor.hh"

namespace hev::fuzz
{

/** Options fixing the machine and oracle set for a run. */
struct ExecOptions
{
    /**
     * Monitor configuration; the layout doubles as the abstract
     * geometry (the fuzzer keeps both worlds on the same addresses, as
     * tests/integration/test_differential.cc does).
     */
    hv::MonitorConfig monitor;
    /**
     * Executor-side planted bug: maintain the tree-view mirrors with a
     * dropped writable bit, skewing the refinement relation R.
     */
    bool treeSkewBug = false;
    /**
     * Run the MIR models of L11/L14/L15 in lockstep with the specs.
     * On by default; benches can turn it off to measure the concrete
     * diff path alone.
     */
    bool mirLockstep = true;
    /** Hard cap on ops executed per trace. */
    u32 maxOps = 64;
    /**
     * Route every trace through the SMP executor (src/smp/) with this
     * many vCPUs.  Traces that carry SMP data themselves (a nonzero
     * vcpu field or schedule seed) take that route even when this is
     * off; see fuzz/smp_executor.hh.
     */
    bool smpFuzz = false;
    u32 smpVcpus = 2;
    /**
     * Planted SMP bug: the shootdown initiator skips the ack wait, so
     * remote vCPUs keep stale TLB entries past unmap/downgrade.
     */
    bool skipShootdownAckBug = false;
    /**
     * Where to write a forensics bundle when an oracle fails ("" =
     * fall back to $HEV_FORENSICS, then stay silent).  Emission is a
     * write-only side effect: ExecResult stays bit-deterministic.
     */
    std::string forensicsPath;

    /** The standard small fuzzing machine (4 MiB, 256+256 frames). */
    static ExecOptions standard();
};

/** Kill-suite bug names accepted by applyPlantedBug. */
std::vector<std::string> plantedBugNames();

/**
 * Enable one planted bug by name ("elrange-off-by-one",
 * "epcm-owner-skip", "stale-tlb", "wrong-perm-mask",
 * "frame-double-free", "tree-skew", "skip-shootdown-ack"); false if
 * the name is unknown.  "skip-shootdown-ack" also turns on smpFuzz
 * (the bug lives in the SMP shootdown protocol).
 */
bool applyPlantedBug(ExecOptions &opts, const std::string &name);

/** Outcome of executing one trace. */
struct ExecResult
{
    /** True iff some oracle disagreed (the trace is a counterexample). */
    bool divergence = false;
    /** Index of the op the divergence surfaced at (iff divergence). */
    u64 failedOp = 0;
    /** Deterministic description of the divergence (iff divergence). */
    std::string detail;
    /** Ops actually executed (maxOps-capped). */
    u64 opsExecuted = 0;
    /** FNV over the per-op outcome sequence; replay identity check. */
    u64 signature = 0;
    /** Sorted, deduplicated 16-bit coverage features the run touched. */
    std::vector<u32> features;
};

/** Execute a trace against all oracles; deterministic. */
ExecResult executeTrace(const ExecOptions &opts, const Trace &trace);

/** Render an ExecResult as stable text (for replay comparison). */
std::string renderExecResult(const ExecResult &result);

} // namespace hev::fuzz

#endif // HEV_FUZZ_EXECUTOR_HH
