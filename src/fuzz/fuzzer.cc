#include "fuzz/fuzzer.hh"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "fuzz/mutate.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace hev::fuzz
{

namespace
{

const obs::Counter statExecs("fuzz.execs");
const obs::Counter statCorpusAdds("fuzz.corpus_adds");
const obs::Counter statDivergences("fuzz.divergences");

} // namespace

Fuzzer::Fuzzer(FuzzConfig config) : cfg(std::move(config)) {}

std::optional<FuzzFailure>
Fuzzer::executeOne(const Trace &trace)
{
    const ExecResult result = executeTrace(cfg.exec, trace);
    const u64 index = statCounters.execs++;
    statExecs.inc();
    obs::traceEvent(obs::EventType::FuzzExec, "fuzz_exec", index,
                    result.opsExecuted);

    if (result.divergence) {
        ++statCounters.divergences;
        statDivergences.inc();
        obs::traceEvent(obs::EventType::FuzzDivergence, "fuzz_divergence",
                        index, result.failedOp);
        FuzzFailure failure;
        failure.trace = trace;
        failure.result = result;
        failure.execIndex = index;
        return failure;
    }

    if (features.observe(result.features)) {
        CorpusEntry entry;
        entry.trace = trace;
        entry.signature = result.signature;
        entry.newFeatures = result.features.size();
        corpusStore.add(std::move(entry));
        statCorpusAdds.inc();
        obs::traceEvent(obs::EventType::FuzzCorpusAdd, "fuzz_corpus_add",
                        corpusStore.size(), features.covered());
    }
    statCounters.corpusEntries = corpusStore.size();
    statCounters.featuresCovered = features.covered();
    return std::nullopt;
}

std::optional<FuzzFailure>
Fuzzer::run()
{
    const auto start = std::chrono::steady_clock::now();
    const auto outOfBudget = [&] {
        if (cfg.maxExecs && statCounters.execs >= cfg.maxExecs)
            return true;
        if (cfg.maxSeconds > 0.0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (elapsed.count() >= cfg.maxSeconds)
                return true;
        }
        return false;
    };

    // Phase 1: the deterministic starting set — built-in skeletons,
    // then any on-disk corpus (sorted order).
    const u32 vcpus = cfg.exec.smpFuzz ? cfg.exec.smpVcpus : 1;
    std::vector<Trace> starters;
    if (cfg.useSeedTraces)
        starters = cfg.exec.smpFuzz ? smpSeedTraces(vcpus) : seedTraces();
    Corpus loaded;
    if (!cfg.corpusDir.empty()) {
        loaded.loadFrom(cfg.corpusDir);
        for (u64 i = 0; i < loaded.size(); ++i)
            starters.push_back(loaded[i].trace);
        corpusStore.mirrorTo(cfg.corpusDir);
    }
    for (const Trace &trace : starters) {
        if (outOfBudget())
            return std::nullopt;
        if (auto failure = executeOne(trace))
            return failure;
    }

    // Phase 2: the mutation loop.
    Rng rng(cfg.seed);
    while (!outOfBudget()) {
        Trace candidate;
        if (corpusStore.empty()) {
            candidate.ops.push_back(randomOp(rng, vcpus));
            candidate = mutateTrace(candidate, rng, cfg.maxOps, vcpus);
        } else if (corpusStore.size() >= 2 && rng.chance(1, 8)) {
            const CorpusEntry &a = corpusStore[rng.below(corpusStore.size())];
            const CorpusEntry &b = corpusStore[rng.below(corpusStore.size())];
            candidate = spliceTraces(a.trace, b.trace, rng, cfg.maxOps);
        } else {
            const CorpusEntry &base =
                corpusStore[rng.below(corpusStore.size())];
            candidate = mutateTrace(base.trace, rng, cfg.maxOps, vcpus);
        }
        if (auto failure = executeOne(candidate))
            return failure;
    }
    return std::nullopt;
}

std::vector<check::Scenario>
fuzzScenarios(const FuzzCampaignOptions &opts)
{
    std::vector<check::Scenario> scenarios;
    for (int shard = 0; shard < opts.shards; ++shard) {
        check::Scenario scenario;
        std::ostringstream name;
        name << "fuzz/differential-run-" << shard;
        scenario.name = name.str();
        scenario.kind = "fuzz";
        scenario.layer = 0;
        const std::string artifact_dir = opts.artifactDir;
        const u64 execs = opts.execsPerShard;
        const u32 max_ops = opts.maxOps;
        scenario.body =
            [artifact_dir, execs,
             max_ops](check::ShardContext &ctx) -> std::optional<std::string> {
            FuzzConfig cfg;
            cfg.seed = ctx.rng().next();
            cfg.maxExecs = execs;
            cfg.maxOps = max_ops;
            Fuzzer fuzzer(cfg);
            const auto failure = fuzzer.run();
            ctx.tick(fuzzer.stats().execs);
            if (!failure)
                return std::nullopt;
            std::ostringstream path;
            path << artifact_dir << "/fuzz-shard-" << ctx.shard()
                 << ".trace";
            if (writeTraceFile(failure->trace, path.str()))
                ctx.attachArtifact(path.str());
            return "fuzz divergence at exec " +
                   std::to_string(failure->execIndex) + ": " +
                   failure->result.detail;
        };
        scenarios.push_back(std::move(scenario));
    }
    return scenarios;
}

std::vector<ReplayOutcome>
replayFiles(const std::vector<std::string> &files, const ExecOptions &opts,
            unsigned threads)
{
    std::vector<ReplayOutcome> outcomes(files.size());
    if (threads == 0)
        threads = 1;
    std::atomic<u64> nextIndex{0};
    const auto worker = [&] {
        while (true) {
            const u64 i = nextIndex.fetch_add(1);
            if (i >= files.size())
                return;
            ReplayOutcome &out = outcomes[i];
            out.path = files[i];
            std::string error;
            const auto trace = readTraceFile(files[i], &error);
            if (!trace) {
                out.parsed = false;
                out.parseError = error;
                continue;
            }
            out.parsed = true;
            out.result = executeTrace(opts, *trace);
        }
    };
    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return outcomes;
}

std::string
renderReplayReport(const std::vector<ReplayOutcome> &outcomes)
{
    std::ostringstream out;
    u64 divergences = 0;
    for (const ReplayOutcome &outcome : outcomes) {
        out << "=== " << outcome.path << "\n";
        if (!outcome.parsed) {
            out << "parse error: " << outcome.parseError << "\n";
            continue;
        }
        out << renderExecResult(outcome.result);
        if (outcome.result.divergence)
            ++divergences;
    }
    out << "=== total " << outcomes.size() << " trace(s), " << divergences
        << " divergence(s)\n";
    return out.str();
}

} // namespace hev::fuzz
