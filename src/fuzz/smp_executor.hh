/**
 * @file
 * Differential execution of one fuzz trace on the SMP monitor.
 *
 * Multi-vCPU traces (any op carrying a nonzero vcpu, a nonzero
 * schedule seed, or ExecOptions::smpFuzz) run here instead of the
 * single-vCPU lockstep executor: ops execute on an smp::SmpMonitor,
 * attributed to their vcpu, with IPI servicing interleaved between
 * ops from a stream derived from the trace's schedule seed.  The
 * oracles are the SMP ones — per-op TLB coherence over all vCPUs
 * (cached-vs-authoritative), structural vCPU-table invariants, loaded
 * values cross-checked against TLB-less walks, and the concrete
 * monitor invariant families periodically — so the planted
 * skip-shootdown-ack bug surfaces as a divergence, never a crash.
 *
 * Execution is bit-deterministic in (options, trace), like the
 * single-vCPU path: replay and shrinking work unchanged.
 */

#ifndef HEV_FUZZ_SMP_EXECUTOR_HH
#define HEV_FUZZ_SMP_EXECUTOR_HH

#include "fuzz/executor.hh"

namespace hev::fuzz
{

/** True iff the trace needs the SMP executor under these options. */
bool needsSmpExecutor(const ExecOptions &opts, const Trace &trace);

/** Execute one trace on the SMP monitor; deterministic. */
ExecResult executeSmpTrace(const ExecOptions &opts, const Trace &trace);

} // namespace hev::fuzz

#endif // HEV_FUZZ_SMP_EXECUTOR_HH
