/**
 * @file
 * The coverage-guided differential fuzzing loop.
 *
 * A run is a pure function of (config.seed, corpus directory
 * contents): seeds and loaded corpus entries execute first in a fixed
 * order, then the mutation loop picks parents, mutates and splices
 * using only the run's private Rng stream.  Interesting traces (new
 * coverage bucket, see feedback.hh) join the corpus; the first
 * divergence stops the run and is returned for shrinking.
 *
 * fuzzScenarios() packages runs as campaign shards — each shard its
 * own Fuzzer with a seed split from the campaign stream — so fuzzing
 * rides the same parallel runner, JSON report and determinism
 * guarantees as the conformance sweeps.  replayFiles() re-executes
 * saved traces across a thread pool and proves bit-identical results
 * at any thread count.
 */

#ifndef HEV_FUZZ_FUZZER_HH
#define HEV_FUZZ_FUZZER_HH

#include <optional>

#include "check/campaign.hh"
#include "fuzz/executor.hh"
#include "fuzz/feedback.hh"

namespace hev::fuzz
{

/** Sizing and wiring of one fuzzing run. */
struct FuzzConfig
{
    /** Root of the run's deterministic randomness. */
    u64 seed = 1;
    /** Stop after this many trace executions (0 = no exec bound). */
    u64 maxExecs = 2000;
    /**
     * Wall-clock cutoff in seconds, checked between executions; 0
     * disables it.  Using it trades determinism of the *stop point*
     * (never of any individual result) for bounded runtime.
     */
    double maxSeconds = 0.0;
    /** Cap on generated trace length (executor may cap lower). */
    u32 maxOps = 24;
    /** Machine and oracle options for every execution. */
    ExecOptions exec = ExecOptions::standard();
    /** Optional corpus directory: loaded first, new finds mirrored. */
    std::string corpusDir;
    /** Start from the built-in seed skeletons (mutate.hh). */
    bool useSeedTraces = true;
};

/** A divergence the loop found. */
struct FuzzFailure
{
    Trace trace;
    ExecResult result;
    u64 execIndex = 0; //!< which execution of the run found it
};

/** Aggregate counters of one run. */
struct FuzzStats
{
    u64 execs = 0;
    u64 corpusEntries = 0;
    u64 featuresCovered = 0;
    u64 divergences = 0;
};

/** One fuzzing run. */
class Fuzzer
{
  public:
    explicit Fuzzer(FuzzConfig config);

    /**
     * Execute the run; returns the first divergence, nullopt if the
     * budget drained clean.
     */
    std::optional<FuzzFailure> run();

    const FuzzStats &stats() const { return statCounters; }
    const Corpus &corpus() const { return corpusStore; }

  private:
    std::optional<FuzzFailure> executeOne(const Trace &trace);

    FuzzConfig cfg;
    FuzzStats statCounters;
    FeatureMap features;
    Corpus corpusStore;
};

/** Sizing of the fuzz campaign workload. */
struct FuzzCampaignOptions
{
    int shards = 4;             //!< independent fuzzing runs
    u64 execsPerShard = 400;    //!< executions per shard
    u32 maxOps = 24;            //!< generated trace length cap
    /** Directory for failure artifacts (repro trace files). */
    std::string artifactDir = ".";
};

/**
 * Fuzzing runs as campaign shards (kind "fuzz").  Each shard seeds
 * its Fuzzer from the shard's RNG stream, ticks once per execution,
 * and on divergence writes the failing trace to artifactDir and
 * attaches it to the counterexample.
 */
std::vector<check::Scenario>
fuzzScenarios(const FuzzCampaignOptions &opts = {});

/** Result of replaying one saved trace file. */
struct ReplayOutcome
{
    std::string path;
    bool parsed = false;
    std::string parseError;
    ExecResult result;
};

/**
 * Re-execute saved traces across `threads` workers.  Outcomes are
 * returned in input order and depend only on (opts, file contents) —
 * never on the thread count; the replay CLI and the determinism tests
 * compare renderings across thread counts byte-for-byte.
 */
std::vector<ReplayOutcome>
replayFiles(const std::vector<std::string> &files, const ExecOptions &opts,
            unsigned threads);

/** Stable text rendering of a replay batch (for byte comparison). */
std::string renderReplayReport(const std::vector<ReplayOutcome> &outcomes);

} // namespace hev::fuzz

#endif // HEV_FUZZ_FUZZER_HH
