/**
 * @file
 * The fuzzer's test-case representation: a serializable trace of ops.
 *
 * A trace is a flat list of (kind, a, b, c, d) tuples.  The arguments
 * are raw 64-bit words; the executor decodes them modulo small,
 * state-dependent domains (enclave selectors, VA slots, twist codes),
 * so every u64 assignment names a valid op and mutation can havoc
 * arguments freely without a validity oracle.  The text format is
 * line-oriented and diff-friendly — one op per line — because shrunk
 * repro files get checked into tests/fuzz/corpus/ and pasted into bug
 * reports.
 */

#ifndef HEV_FUZZ_TRACE_HH
#define HEV_FUZZ_TRACE_HH

#include <optional>
#include <string>
#include <vector>

#include "support/types.hh"

namespace hev::fuzz
{

/** The op vocabulary (paper Sec. 5.1 steps plus layer ops). */
enum class OpKind : u8
{
    HcInit,        //!< hypercall init; a=ELRANGE sel, b=pages, c=mbuf, d=twist
    HcAddPage,     //!< hypercall add_page; a=enclave sel, b=gva sel, c=twist/kind
    HcInitFinish,  //!< hypercall init_finish; a=enclave sel
    HcRemove,      //!< hypercall remove; a=enclave sel
    Enter,         //!< hypercall enter; a=enclave sel
    Exit,          //!< hypercall exit
    MemLoad,       //!< mem_load by the running principal; a/b=va sel, c=offset
    MemStore,      //!< mem_store; a/b=va sel, c=offset, d=value
    OsUnmap,       //!< guest unmaps a kernel GPT page + CR3 reload; a=page sel
    OsMap,         //!< guest restores an identity mapping + CR3 reload; a=page sel
    QueryVa,       //!< uncached differential translation probe; a/b/c=va sel
    LayerMap,      //!< as_map on the scratch AS (spec/MIR/tree); a=va, b=pa, c=flags
    LayerUnmap,    //!< as_unmap on the scratch AS; a=va
    LayerQuery,    //!< as_query on the scratch AS; a=va
    EvictPage,     //!< hypercall evict (EWB); a=enclave sel, b=gva sel
    ReloadPage,    //!< hypercall reload (ELD); a=enclave sel, b=gva sel, c=blob sel
    AddPagesBatch,   //!< batched add_page; a=enclave sel, b=gva sel, c=twist/kind, d=count
    EvictPagesBatch, //!< batched evict; a=enclave sel, b=gva sel, d=count
    Snapshot,        //!< whole-enclave snapshot; a=enclave sel, b=mode (odd=Move)
    RestoreImage,    //!< restore on the twin host; a=image sel, c=corruption sel
    MigrateLive,     //!< live pre-copy migration to the twin; a=enclave sel, b=rounds, c=mode
};

constexpr u32 opKindCount = 21;

/** Stable lower-snake name ("hc_init", "mem_load", ...). */
const char *opKindName(OpKind kind);

/** Inverse of opKindName. */
std::optional<OpKind> opKindFromName(const std::string &name);

/** One op of a trace. */
struct Op
{
    OpKind kind = OpKind::MemLoad;
    u64 a = 0;
    u64 b = 0;
    u64 c = 0;
    u64 d = 0;
    /**
     * Issuing vCPU (SMP fuzzing, src/smp/).  0 is also what the
     * single-vCPU executor runs as, so the serializer omits the field
     * when it is 0 and the whole pre-SMP corpus remains byte-identical.
     */
    u32 vcpu = 0;

    bool operator==(const Op &) const = default;
};

/** One test case. */
struct Trace
{
    std::vector<Op> ops;
    /**
     * Seed of the SMP interleaving schedule (0 = none): with a nonzero
     * seed the SMP executor threads IPI servicing between ops from a
     * stream derived from it.  Serialized as a `schedule-seed` line
     * only when nonzero, keeping pre-SMP corpus files unchanged.
     */
    u64 scheduleSeed = 0;

    bool operator==(const Trace &) const = default;
};

/**
 * Text serialization:
 *
 *     hev-trace v1
 *     # optional comments
 *     schedule-seed 7
 *     op hc_init 1 2 0 0
 *     op mem_load 0 3 8 0 vcpu=2
 *
 * Blank lines and `#` comments are ignored by the parser; numbers may
 * be decimal or 0x-hex.  The `schedule-seed` line and the `vcpu=`
 * field are optional (both default to 0 and are omitted when 0, so
 * single-vCPU traces serialize exactly as before SMP existed).
 * serialize/parse round-trip exactly.
 */
std::string serializeTrace(const Trace &trace);

/** Parse the text format; on failure returns nullopt and sets *error. */
std::optional<Trace> parseTrace(const std::string &text,
                                std::string *error = nullptr);

/** Write serializeTrace(trace) to a file. */
bool writeTraceFile(const Trace &trace, const std::string &path);

/** Read + parse a trace file. */
std::optional<Trace> readTraceFile(const std::string &path,
                                   std::string *error = nullptr);

} // namespace hev::fuzz

#endif // HEV_FUZZ_TRACE_HH
