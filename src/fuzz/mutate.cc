#include "fuzz/mutate.hh"

#include <algorithm>

namespace hev::fuzz
{

namespace
{

/** Arguments are mostly small (dense decode domains), sometimes wild. */
u64
randomArg(Rng &rng)
{
    switch (rng.below(4)) {
      case 0: return rng.below(4);
      case 1: return rng.below(16);
      case 2: return rng.below(512);
      default: return rng.next();
    }
}

void
havocArg(Op &op, Rng &rng)
{
    u64 *args[4] = {&op.a, &op.b, &op.c, &op.d};
    u64 &arg = *args[rng.below(4)];
    switch (rng.below(4)) {
      case 0: arg = randomArg(rng); break;
      case 1: arg += 1; break;
      case 2: arg -= 1; break;
      default: arg = 0; break;
    }
}

} // namespace

Op
randomOp(Rng &rng, u32 vcpus)
{
    Op op;
    op.kind = OpKind(rng.below(opKindCount));
    op.a = randomArg(rng);
    op.b = randomArg(rng);
    op.c = randomArg(rng);
    op.d = randomArg(rng);
    if (vcpus > 1)
        op.vcpu = u32(rng.below(vcpus));
    return op;
}

Trace
mutateTrace(const Trace &base, Rng &rng, u32 maxOps, u32 vcpus)
{
    Trace out = base;
    const u64 rounds = 1 + rng.below(4);
    for (u64 round = 0; round < rounds; ++round) {
        // SMP runs get two extra operators; single-vCPU streams keep
        // the original draw sequence exactly.
        const u64 choice = rng.below(vcpus > 1 ? 8 : 6);
        switch (choice) {
          case 0: { // insert
            if (out.ops.size() >= maxOps)
                break;
            const u64 at = rng.below(out.ops.size() + 1);
            out.ops.insert(out.ops.begin() + i64(at),
                           randomOp(rng, vcpus));
            break;
          }
          case 1: { // delete
            if (out.ops.empty())
                break;
            const u64 at = rng.below(out.ops.size());
            out.ops.erase(out.ops.begin() + i64(at));
            break;
          }
          case 2: { // swap
            if (out.ops.size() < 2)
                break;
            const u64 i = rng.below(out.ops.size());
            const u64 j = rng.below(out.ops.size());
            std::swap(out.ops[i], out.ops[j]);
            break;
          }
          case 3: { // duplicate
            if (out.ops.empty() || out.ops.size() >= maxOps)
                break;
            const u64 at = rng.below(out.ops.size());
            out.ops.insert(out.ops.begin() + i64(at), out.ops[at]);
            break;
          }
          case 4: { // replace the kind, keep the arguments
            if (out.ops.empty())
                break;
            out.ops[rng.below(out.ops.size())].kind =
                OpKind(rng.below(opKindCount));
            break;
          }
          case 5: { // argument havoc
            if (out.ops.empty())
                break;
            havocArg(out.ops[rng.below(out.ops.size())], rng);
            break;
          }
          case 6: { // reassign an op to another vCPU (SMP only)
            if (out.ops.empty())
                break;
            out.ops[rng.below(out.ops.size())].vcpu =
                u32(rng.below(vcpus));
            break;
          }
          default: { // schedule-seed havoc (SMP only)
            out.scheduleSeed = rng.chance(1, 4) ? 0 : rng.next();
            break;
          }
        }
    }
    if (out.ops.empty())
        out.ops.push_back(randomOp(rng, vcpus));
    if (out.ops.size() > maxOps)
        out.ops.resize(maxOps);
    return out;
}

Trace
spliceTraces(const Trace &a, const Trace &b, Rng &rng, u32 maxOps)
{
    Trace out;
    const u64 cutA = a.ops.empty() ? 0 : rng.below(a.ops.size() + 1);
    const u64 cutB = b.ops.empty() ? 0 : rng.below(b.ops.size() + 1);
    out.ops.assign(a.ops.begin(), a.ops.begin() + i64(cutA));
    out.ops.insert(out.ops.end(), b.ops.begin() + i64(cutB), b.ops.end());
    if (out.ops.empty())
        out.ops.push_back(randomOp(rng));
    if (out.ops.size() > maxOps)
        out.ops.resize(maxOps);
    return out;
}

std::vector<Trace>
seedTraces()
{
    const auto trace = [](std::vector<Op> ops) {
        Trace t;
        t.ops = std::move(ops);
        return t;
    };
    using K = OpKind;
    std::vector<Trace> seeds;

    // The happy-path enclave life cycle.
    seeds.push_back(trace({
        {K::HcInit, 0, 0, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::HcAddPage, 0, 1, 8, 0}, // TCS page
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::Enter, 0, 0, 0, 0},
        {K::MemLoad, 0, 0, 0, 0},
        {K::MemStore, 2, 0, 1, 42}, // marshalling buffer
        {K::Exit, 0, 0, 0, 0},
        {K::HcRemove, 0, 0, 0, 0},
    }));

    // ELRANGE boundary probe: with one enclave page, gva selector 1
    // lands exactly on ELRANGE.end.
    seeds.push_back(trace({
        {K::HcInit, 0, 0, 0, 0},
        {K::HcAddPage, 0, 1, 0, 0},
    }));

    // Load / unmap / load over the same normal page (TLB churn).
    seeds.push_back(trace({
        {K::MemLoad, 5, 0, 0, 0},
        {K::OsUnmap, 5, 0, 0, 0},
        {K::MemLoad, 5, 0, 0, 0},
        {K::OsMap, 5, 0, 0, 0},
        {K::MemLoad, 5, 0, 0, 0},
    }));

    // Translation probes straight after an add (both walk directions).
    seeds.push_back(trace({
        {K::HcInit, 1, 1, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::QueryVa, 0, 0, 0, 0},
        {K::QueryVa, 0, 1, 2, 0},
    }));

    // A scratch address-space workout (L11 spec vs MIR vs tree).
    seeds.push_back(trace({
        {K::LayerMap, 1, 2, 1, 0},
        {K::LayerQuery, 1, 0, 0, 0},
        {K::LayerMap, 1, 3, 1, 0},
        {K::LayerMap, 2, 4, 0, 0},
        {K::LayerUnmap, 1, 0, 0, 0},
        {K::LayerQuery, 1, 0, 0, 0},
        {K::LayerQuery, 2, 0, 0, 0},
    }));

    // Lifecycle churn: create, populate, remove, create again.
    seeds.push_back(trace({
        {K::HcInit, 0, 0, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::HcRemove, 0, 0, 0, 0},
        {K::HcInit, 2, 1, 0, 0},
        {K::HcAddPage, 1, 0, 0, 0},
        {K::Enter, 1, 0, 0, 0},
        {K::Exit, 0, 0, 0, 0},
    }));

    // Rejection paths: every init/add twist the decoder exposes.
    seeds.push_back(trace({
        {K::HcInit, 0, 0, 0, 5},  // misaligned ELRANGE
        {K::HcInit, 0, 0, 0, 6},  // mbuf overlaps ELRANGE
        {K::HcInit, 0, 0, 0, 7},  // secure-region backing
        {K::HcInit, 0, 0, 0, 0},
        {K::HcAddPage, 0, 0, 6, 0}, // misaligned gva
        {K::HcAddPage, 0, 0, 7, 0}, // secure-region source
        {K::HcRemove, 3, 0, 0, 0},  // unknown enclave
    }));

    // Paging round-trip plus a stale-blob presentation: the last
    // reload offers the superseded v1 blob and must draw the
    // anti-rollback verdict.
    seeds.push_back(trace({
        {K::HcInit, 0, 1, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::HcAddPage, 0, 1, 8, 0}, // TCS page, or init_finish fails
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::EvictPage, 0, 0, 0, 0},
        {K::ReloadPage, 0, 0, 0, 0},
        {K::EvictPage, 0, 0, 0, 0},
        {K::ReloadPage, 0, 0, 0, 0},
    }));

    // Batched lifecycle: a mid-batch misaligned element must roll the
    // whole batch back, then one clean batch builds the enclave
    // (TCS-last), a two-page batched evict seals both pages in one
    // call, and single reloads bring them back.
    seeds.push_back(trace({
        {K::HcInit, 0, 2, 0, 0},
        {K::AddPagesBatch, 0, 0, 6, 2},   // misaligned middle: rollback
        {K::AddPagesBatch, 0, 0, 8, 2},   // Reg, Reg, TCS-last
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::EvictPagesBatch, 0, 0, 0, 1}, // pages 0 and 1 in one batch
        {K::ReloadPage, 0, 0, 0, 0},
        {K::ReloadPage, 0, 0, 1, 0},
    }));

    // Migration skeleton: build an enclave, fork-snapshot it (d=0 also
    // runs the quiesced-fold checker), restore the image on the twin
    // host, replay it (ImageRollback both sides), then a fork live
    // migration whose injected workload keeps pages hot — the shape
    // that corners skip-dirty-page-on-final-round.
    seeds.push_back(trace({
        {K::HcInit, 0, 1, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::HcAddPage, 0, 1, 8, 0}, // TCS page, or init_finish fails
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::Snapshot, 0, 0, 0, 0},     // fork
        {K::RestoreImage, 0, 0, 0, 0}, // clean restore on the twin
        {K::RestoreImage, 0, 0, 0, 0}, // replay: rollback both sides
        {K::MigrateLive, 0, 1, 0, 0},  // fork, two pre-copy rounds
    }));

    // Image tampering and retirement: every corrupted presentation
    // draws its typed rejection, then a move snapshot retires the
    // source and its image restores once.
    seeds.push_back(trace({
        {K::HcInit, 0, 0, 0, 0},
        {K::HcAddPage, 0, 0, 8, 0}, // single TCS page
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::Snapshot, 0, 0, 0, 0},     // fork first (source survives)
        {K::RestoreImage, 0, 0, 1, 0}, // header MAC flip
        {K::RestoreImage, 0, 0, 2, 0}, // truncated page vector
        {K::RestoreImage, 0, 0, 3, 0}, // content forgery
        {K::Snapshot, 0, 1, 0, 0},     // move: source retired
        {K::RestoreImage, 1, 0, 0, 0}, // the moved image lands
    }));

    // In-enclave memory probing across all decode regions.
    seeds.push_back(trace({
        {K::HcInit, 0, 1, 0, 0},
        {K::HcAddPage, 0, 0, 0, 0},
        {K::HcAddPage, 0, 1, 8, 0}, // TCS page, or init_finish fails
        {K::HcInitFinish, 0, 0, 0, 0},
        {K::Enter, 0, 0, 0, 0},
        {K::MemLoad, 0, 0, 3, 0},
        {K::MemLoad, 3, 0, 0, 0}, // beyond ELRANGE.end
        {K::MemStore, 2, 0, 0, 7}, // marshalling buffer
        {K::QueryVa, 0, 0, 0, 0},
        {K::Exit, 0, 0, 0, 0},
    }));

    return seeds;
}

std::vector<Trace>
smpSeedTraces(u32 vcpus)
{
    const auto trace = [](u64 schedule_seed, std::vector<Op> ops) {
        Trace t;
        t.scheduleSeed = schedule_seed;
        t.ops = std::move(ops);
        return t;
    };
    const auto on = [vcpus](u32 v, Op op) {
        op.vcpu = vcpus > 1 ? v % vcpus : 0;
        return op;
    };
    using K = OpKind;
    std::vector<Trace> seeds;

    // The shootdown skeleton: vCPU 1 caches a translation, vCPU 0
    // unmaps the page.  With the protocol intact the second load on
    // vCPU 1 faults; with skip-shootdown-ack it reads through the
    // stale entry and the coherence oracle fires.
    seeds.push_back(trace(1, {
        on(1, {K::MemLoad, 0, 0, 0, 0}),
        on(0, {K::OsUnmap, 0, 0, 0, 0}),
        on(1, {K::MemLoad, 0, 0, 0, 0}),
    }));

    // Two vCPUs through one enclave: second enter is bounced by the
    // single-TCS occupancy bound, contexts stay per vCPU.
    seeds.push_back(trace(2, {
        on(0, {K::Enter, 0, 0, 0, 0}),
        on(1, {K::Enter, 0, 0, 0, 0}),
        on(0, {K::MemStore, 0, 0, 1, 77}),
        on(0, {K::MemLoad, 0, 0, 1, 0}),
        on(0, {K::Exit, 0, 0, 0, 0}),
        on(1, {K::Enter, 0, 0, 0, 0}),
        on(1, {K::Exit, 0, 0, 0, 0}),
    }));

    // Permission downgrade: vCPU 1 holds a writable entry while vCPU 0
    // remaps the slot read-only (LayerMap decodes to protect-ro).
    seeds.push_back(trace(3, {
        on(1, {K::MemStore, 2, 0, 0, 5}),
        on(0, {K::LayerMap, 2, 0, 0, 0}),
        on(1, {K::MemStore, 2, 0, 0, 6}),
        on(1, {K::MemLoad, 2, 0, 0, 0}),
    }));

    // Destroy under residency: the destroy must bounce until the
    // resident vCPU exits, then retire the domain everywhere.
    seeds.push_back(trace(4, {
        on(1, {K::Enter, 0, 0, 0, 0}),
        on(1, {K::MemLoad, 0, 0, 2, 0}),
        on(0, {K::HcRemove, 0, 0, 0, 0}),
        on(1, {K::Exit, 0, 0, 0, 0}),
        on(0, {K::HcRemove, 0, 0, 0, 0}),
        on(0, {K::HcInit, 0, 0, 0, 0}),
    }));

    // Batched evict with a resident reader: vCPU 1 caches the middle
    // page of a three-page run, vCPU 0 evicts all three in one batch.
    // The vectored shootdown must name every page; the planted
    // skip-middle bug leaves vCPU 1's page-1 entry alive and the
    // coherence oracle fires right after the batch.
    seeds.push_back(trace(5, {
        on(1, {K::Enter, 0, 0, 0, 0}),
        on(1, {K::MemLoad, 0, 1, 0, 0}),        // cache ELRANGE page 1
        on(0, {K::EvictPagesBatch, 0, 0, 0, 2}), // evict pages 0..2
        on(1, {K::MemLoad, 0, 1, 0, 0}),
    }));

    return seeds;
}

} // namespace hev::fuzz
