/**
 * @file
 * Coverage feedback and corpus management.
 *
 * The executor reports each run's touched 16-bit features (op/outcome
 * signatures, op 2-grams, TLB hit/miss shapes, state-shape buckets).
 * The FeatureMap keeps a hit counter per feature, bucketed libFuzzer
 * style (1, 2, 3, 4..7, 8+ hits): a trace is *interesting* — worth
 * keeping in the corpus — iff it moves at least one feature into a
 * bucket never reached before.  The corpus is an append-only in-memory
 * list with an optional on-disk mirror; on-disk entries load in sorted
 * filename order so a (seed, corpus directory) pair replays
 * bit-identically.
 */

#ifndef HEV_FUZZ_FEEDBACK_HH
#define HEV_FUZZ_FEEDBACK_HH

#include <array>
#include <string>
#include <vector>

#include "fuzz/trace.hh"

namespace hev::fuzz
{

/** Number of distinct coverage features (16-bit feature ids). */
constexpr u32 featureSpace = 1u << 16;

/** Bucketed per-feature hit counters. */
class FeatureMap
{
  public:
    /**
     * Account one run's feature set; true iff any feature reached a
     * bucket it had never reached (the "keep this trace" signal).
     */
    bool observe(const std::vector<u32> &features);

    /** Features hit at least once. */
    u64 covered() const { return coveredCount; }

    void
    reset()
    {
        hits.fill(0);
        coveredCount = 0;
    }

  private:
    /** Bucket index of a saturating hit count. */
    static u32
    bucketOf(u32 count)
    {
        if (count <= 3)
            return count; // 0, 1, 2, 3
        return count < 8 ? 4 : 5;
    }

    std::array<u8, featureSpace> hits{};
    u64 coveredCount = 0;
};

/** One kept test case. */
struct CorpusEntry
{
    Trace trace;
    u64 signature = 0;    //!< executor outcome signature
    u64 newFeatures = 0;  //!< features that were new when it was kept
};

/**
 * The interesting-trace store.  Purely append-only; entry order is
 * part of the fuzzer's deterministic state.
 */
class Corpus
{
  public:
    /** Append a kept trace; returns its corpus index. */
    u64 add(CorpusEntry entry);

    u64 size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }
    const CorpusEntry &operator[](u64 i) const { return entries[i]; }

    /**
     * Mirror every future add() into `dir` as
     * `t<index(06)>-<signature(016x)>.trace` files; creates the
     * directory.  False if the directory cannot be created.
     */
    bool mirrorTo(const std::string &dir);

    /**
     * Load every *.trace file of `dir` in sorted filename order,
     * appending each as an entry (signature parsed from the name when
     * present).  Returns the number loaded; unparsable files are
     * skipped.  A missing directory loads zero entries.
     */
    u64 loadFrom(const std::string &dir);

  private:
    std::vector<CorpusEntry> entries;
    std::string mirrorDir;
};

} // namespace hev::fuzz

#endif // HEV_FUZZ_FEEDBACK_HH
