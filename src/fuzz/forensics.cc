#include "fuzz/forensics.hh"

#include "obs/flight.hh"

namespace hev::fuzz
{

Trace
flightTailToTrace(u16 run_tag, u64 schedule_seed)
{
    Trace trace;
    trace.scheduleSeed = schedule_seed;
    for (const obs::FlightRecord &record : obs::flightTail(run_tag)) {
        if (!(record.flags & obs::flightReplayable))
            continue;
        if (record.op >= opKindCount)
            continue;
        Op op;
        op.kind = OpKind(record.op);
        op.a = record.a;
        op.b = record.b;
        op.c = record.c;
        op.d = record.d;
        op.vcpu = record.vcpu;
        trace.ops.push_back(op);
    }
    return trace;
}

std::string
fuzzOpLabel(u16 op)
{
    if (op < opKindCount)
        return opKindName(OpKind(op));
    return "";
}

bool
emitForensics(const std::string &path, const ForensicsInput &in)
{
    obs::ForensicsBundle bundle;
    bundle.kind = in.kind;
    bundle.detail = in.detail;
    bundle.scenario = in.scenario;
    bundle.failedOp = in.failedOp;
    bundle.digests = in.digests;
    bundle.tail = obs::flightTail(in.runTag);
    bundle.opName = fuzzOpLabel;
    const Trace tail = flightTailToTrace(in.runTag, in.scheduleSeed);
    if (!tail.ops.empty())
        bundle.traceTail = serializeTrace(tail);
    return obs::writeForensicsBundle(bundle, path);
}

} // namespace hev::fuzz
