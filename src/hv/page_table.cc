#include "hv/page_table.hh"

#include "hv/phys_mem.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace hev::hv
{

namespace
{

/** Bytes covered by one terminal entry at a level. */
u64
levelPageSize(int level)
{
    return 1ull << (pageShift + 9 * (level - 1));
}

const obs::Counter statMaps("hv.pt.maps");
const obs::Counter statUnmaps("hv.pt.unmaps");
const obs::Counter statQueries("hv.pt.queries");
const obs::Counter statWalkFaults("hv.pt.walk_faults");
/** Levels visited until the walk terminated (1..pagingLevels). */
const obs::Histogram statWalkDepth("hv.pt.walk_depth");

/** Record one terminated walk: depth histogram + PtWalk event. */
void
noteWalk(int resolved_level, u64 va)
{
    const u64 depth = u64(pagingLevels - resolved_level + 1);
    statWalkDepth.record(depth);
    obs::traceEvent(obs::EventType::PtWalk, "pt_walk", depth, va);
}

} // namespace

PageTable::PageTable(PhysMem &mem, FrameSource *alloc, Hpa root)
    : physMem(mem), frameAlloc(alloc), rootFrame(root)
{
    if (!root.pageAligned())
        panic("page table root %#llx not page aligned",
              (unsigned long long)root.value);
}

Expected<PageTable>
PageTable::create(PhysMem &mem, FrameSource &alloc)
{
    auto root = alloc.allocFrame();
    if (!root)
        return root.error();
    return PageTable(mem, &alloc, *root);
}

Pte
PageTable::entryAt(Hpa table, u64 index) const
{
    if (index >= entriesPerTable)
        panic("table index %llu out of range", (unsigned long long)index);
    // A guest-crafted entry can point a walk at any frame number at all;
    // real hardware's access to a non-existent physical address aborts
    // the walk.  Model that as a non-present entry.
    const Hpa addr = table + index * sizeof(u64);
    if (!physMem.validWord(addr))
        return Pte::empty();
    return Pte(physMem.read(addr));
}

void
PageTable::setEntryAt(Hpa table, u64 index, Pte entry)
{
    if (index >= entriesPerTable)
        panic("table index %llu out of range", (unsigned long long)index);
    physMem.write(table + index * sizeof(u64), entry.raw());
}

Expected<Hpa>
PageTable::walkToLeafTable(u64 va, bool alloc_missing)
{
    Hpa table = rootFrame;
    for (int level = pagingLevels; level > 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        Pte entry = entryAt(table, index);
        if (entry.present() && entry.huge())
            return HvError::AlreadyMapped;
        if (!entry.present()) {
            if (!alloc_missing)
                return HvError::NotMapped;
            if (!frameAlloc)
                return HvError::Unsupported;
            auto frame = frameAlloc->allocFrame();
            if (!frame)
                return frame.error();
            entry = Pte::make(frame->value, PteFlags::tableLink());
            setEntryAt(table, index, entry);
        }
        table = Hpa(entry.addr());
    }
    return table;
}

Status
PageTable::map(u64 va, u64 pa, PteFlags flags)
{
    if (va % pageSize != 0 || pa % pageSize != 0)
        return HvError::NotAligned;
    if (!flags.present)
        return HvError::InvalidParam;
    flags.huge = false;
    auto leaf = walkToLeafTable(va, true);
    if (!leaf)
        return leaf.error();
    const u64 index = Gva(va).tableIndex(1);
    if (entryAt(*leaf, index).present())
        return HvError::AlreadyMapped;
    setEntryAt(*leaf, index, Pte::make(pa, flags));
    statMaps.inc();
    return okStatus();
}

Status
PageTable::map(u64 va, u64 pa, PteFlags flags, LeafCursor &cursor)
{
    if (va % pageSize != 0 || pa % pageSize != 0)
        return HvError::NotAligned;
    if (!flags.present)
        return HvError::InvalidParam;
    flags.huge = false;
    const u64 span_base = va & ~(levelPageSize(2) - 1);
    if (cursor.vaBase != span_base) {
        auto leaf = walkToLeafTable(va, true);
        if (!leaf)
            return leaf.error();
        cursor.vaBase = span_base;
        cursor.table = *leaf;
    }
    const u64 index = Gva(va).tableIndex(1);
    if (entryAt(cursor.table, index).present())
        return HvError::AlreadyMapped;
    setEntryAt(cursor.table, index, Pte::make(pa, flags));
    statMaps.inc();
    return okStatus();
}

Status
PageTable::mapHuge(u64 va, u64 pa, PteFlags flags, int level)
{
    if (level < 2 || level > 3)
        return HvError::InvalidParam;
    const u64 span = levelPageSize(level);
    if (va % span != 0 || pa % span != 0)
        return HvError::NotAligned;
    if (!flags.present)
        return HvError::InvalidParam;

    Hpa table = rootFrame;
    for (int walk_level = pagingLevels; walk_level > level; --walk_level) {
        const u64 index = Gva(va).tableIndex(walk_level);
        Pte entry = entryAt(table, index);
        if (entry.present() && entry.huge())
            return HvError::AlreadyMapped;
        if (!entry.present()) {
            if (!frameAlloc)
                return HvError::Unsupported;
            auto frame = frameAlloc->allocFrame();
            if (!frame)
                return frame.error();
            entry = Pte::make(frame->value, PteFlags::tableLink());
            setEntryAt(table, index, entry);
        }
        table = Hpa(entry.addr());
    }
    const u64 index = Gva(va).tableIndex(level);
    if (entryAt(table, index).present())
        return HvError::AlreadyMapped;
    flags.huge = true;
    setEntryAt(table, index, Pte::make(pa, flags));
    statMaps.inc();
    return okStatus();
}

Status
PageTable::unmap(u64 va)
{
    if (va % pageSize != 0)
        return HvError::NotAligned;
    auto leaf = walkToLeafTable(va, false);
    if (!leaf)
        return leaf.error();
    const u64 index = Gva(va).tableIndex(1);
    if (!entryAt(*leaf, index).present())
        return HvError::NotMapped;
    setEntryAt(*leaf, index, Pte::empty());
    statUnmaps.inc();
    return okStatus();
}

Status
PageTable::unmap(u64 va, LeafCursor &cursor)
{
    if (va % pageSize != 0)
        return HvError::NotAligned;
    const u64 span_base = va & ~(levelPageSize(2) - 1);
    if (cursor.vaBase != span_base) {
        auto leaf = walkToLeafTable(va, false);
        if (!leaf)
            return leaf.error();
        cursor.vaBase = span_base;
        cursor.table = *leaf;
    }
    const u64 index = Gva(va).tableIndex(1);
    if (!entryAt(cursor.table, index).present())
        return HvError::NotMapped;
    setEntryAt(cursor.table, index, Pte::empty());
    statUnmaps.inc();
    return okStatus();
}

Expected<Translation>
PageTable::query(u64 va) const
{
    statQueries.inc();
    Hpa table = rootFrame;
    for (int level = pagingLevels; level >= 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        const Pte entry = entryAt(table, index);
        if (!entry.present()) {
            statWalkFaults.inc();
            return HvError::NotMapped;
        }
        if (level == 1 || entry.huge()) {
            const u64 span = levelPageSize(level);
            Translation result;
            result.physAddr = entry.addr() + (va & (span - 1));
            result.flags = entry.flags();
            result.level = level;
            noteWalk(level, va);
            return result;
        }
        table = Hpa(entry.addr());
    }
    panic("unreachable: page walk fell off the root");
}

Expected<Translation>
PageTable::translate(u64 va, bool is_write, bool is_user) const
{
    statQueries.inc();
    // An MMU applies the most restrictive permissions along the walk;
    // model that by intersecting W and U at every level.
    bool path_writable = true;
    bool path_user = true;

    Hpa table = rootFrame;
    for (int level = pagingLevels; level >= 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        const Pte entry = entryAt(table, index);
        if (!entry.present()) {
            statWalkFaults.inc();
            return HvError::NotMapped;
        }
        path_writable = path_writable && entry.writable();
        path_user = path_user && entry.user();
        if (level == 1 || entry.huge()) {
            noteWalk(level, va);
            if (is_write && !path_writable)
                return HvError::PermissionDenied;
            if (is_user && !path_user)
                return HvError::PermissionDenied;
            const u64 span = levelPageSize(level);
            Translation result;
            result.physAddr = entry.addr() + (va & (span - 1));
            result.flags = entry.flags();
            result.flags.writable = path_writable;
            result.flags.user = path_user;
            result.level = level;
            return result;
        }
        table = Hpa(entry.addr());
    }
    panic("unreachable: page walk fell off the root");
}

namespace
{

void
visitTable(const PageTable &pt, Hpa table, int level, u64 va_prefix,
           const std::function<void(u64, Pte, int)> &visit)
{
    for (u64 index = 0; index < entriesPerTable; ++index) {
        const Pte entry = pt.entryAt(table, index);
        if (!entry.present())
            continue;
        const u64 va = va_prefix | (index << (pageShift + 9 * (level - 1)));
        if (level == 1 || entry.huge()) {
            visit(va, entry, level);
        } else {
            visitTable(pt, Hpa(entry.addr()), level - 1, va, visit);
        }
    }
}

void
freeTables(PageTable &pt, FrameSource &alloc, Hpa table, int level)
{
    if (level > 1) {
        for (u64 index = 0; index < entriesPerTable; ++index) {
            const Pte entry = pt.entryAt(table, index);
            if (entry.present() && !entry.huge())
                freeTables(pt, alloc, Hpa(entry.addr()), level - 1);
        }
    }
    // Frames outside the allocator's area (e.g. acquired through the
    // shallow-copy bug) are deliberately skipped; the invariant checker
    // flags them elsewhere.
    if (alloc.owns(table))
        (void)alloc.freeFrame(table);
}

u64
countTables(const PageTable &pt, Hpa table, int level)
{
    u64 count = 1;
    if (level > 1) {
        for (u64 index = 0; index < entriesPerTable; ++index) {
            const Pte entry = pt.entryAt(table, index);
            if (entry.present() && !entry.huge())
                count += countTables(pt, Hpa(entry.addr()), level - 1);
        }
    }
    return count;
}

} // namespace

namespace
{

/**
 * Walk to the terminal entry covering va and rewrite it through
 * `edit`; shared by the A/D stamping and clearing paths.  Works at
 * any terminal level (4K or huge).
 */
Status
editTerminalEntry(PageTable &pt, u64 va,
                  const std::function<Pte(Pte)> &edit)
{
    Hpa table = pt.root();
    for (int level = pagingLevels; level >= 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        const Pte entry = pt.entryAt(table, index);
        if (!entry.present())
            return HvError::NotMapped;
        if (level == 1 || entry.huge()) {
            const Pte edited = edit(entry);
            if (edited != entry)
                pt.setEntryAt(table, index, edited);
            return okStatus();
        }
        table = Hpa(entry.addr());
    }
    panic("unreachable: terminal-entry edit fell off the root");
}

} // namespace

Status
PageTable::stampAccessedDirty(u64 va, bool is_write)
{
    return editTerminalEntry(*this, va, [is_write](Pte entry) {
        entry = entry.withAccessed();
        return is_write ? entry.withDirty() : entry;
    });
}

Status
PageTable::clearDirtyBit(u64 va)
{
    return editTerminalEntry(
        *this, va, [](Pte entry) { return entry.withDirtyCleared(); });
}

void
PageTable::forEachMapping(
    const std::function<void(u64, Pte, int)> &visit) const
{
    visitTable(*this, rootFrame, pagingLevels, 0, visit);
}

Status
PageTable::destroy()
{
    if (!frameAlloc)
        return HvError::Unsupported;
    freeTables(*this, *frameAlloc, rootFrame, pagingLevels);
    return okStatus();
}

u64
PageTable::tableFrameCount() const
{
    return countTables(*this, rootFrame, pagingLevels);
}

Status
PageTable::shallowCopyL4From(const PageTable &src, u64 va_start, u64 va_end)
{
    for (u64 va = va_start; va < va_end;
         va += levelPageSize(pagingLevels)) {
        const u64 index = Gva(va).tableIndex(pagingLevels);
        const Pte entry = src.entryAt(src.root(), index);
        if (entry.present())
            setEntryAt(rootFrame, index, entry);
    }
    return okStatus();
}

} // namespace hev::hv
