/**
 * @file
 * RustMonitor: the trusted software layer of HyperEnclave.
 *
 * The monitor owns the reserved secure memory, manages every EPT (the
 * normal VM's and each enclave's) plus the enclaves' GPTs, keeps the
 * EPCM, and implements the hypercalls through which the untrusted
 * primary OS drives the enclave life cycle (paper Sec. 2.1).  Its job,
 * and the property the paper verifies, is spatial isolation: no guest
 * mapping may reach the secure region except an enclave's own EPC pages
 * and the marshalling buffers.
 *
 * The historical 2022 "shallow copy" vulnerability (paper Sec. 4.1) can
 * be re-enabled via MonitorConfig::shallowCopyBug so the verification
 * analogue in src/ccal and src/sec can demonstrate catching it.
 */

#ifndef HEV_HV_MONITOR_HH
#define HEV_HV_MONITOR_HH

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "hv/enclave.hh"
#include "hv/epcm.hh"
#include "hv/frame_alloc.hh"
#include "hv/page_table.hh"
#include "hv/phys_mem.hh"
#include "hv/tlb.hh"
#include "hv/vcpu.hh"
#include "support/result.hh"

namespace hev::hv
{

/**
 * Deliberately plantable monitor bugs, all off by default.  These are
 * the fuzzer kill-suite targets (tests/fuzz/test_fuzz_kills.cc): each
 * one is a realistic slip the differential fuzzer must detect via a
 * spec divergence or an invariant violation, never via a crash.
 */
struct PlantedBugs
{
    /** add_page accepts page_gva == ELRANGE.end (off-by-one bound). */
    bool elrangeOffByOne = false;
    /** add_page records linear address 0 in the EPCM entry. */
    bool skipEpcmOwnerCheck = false;
    /** MOV CR3 skips the TLB domain flush (stale entries survive). */
    bool staleTlbOnUnmap = false;
    /** add_page maps the EPC page read-only in the enclave's EPT. */
    bool wrongPermMask = false;
    /** add_page force-frees the leaf GPT table frame it just used. */
    bool frameDoubleFree = false;
    /** reload_page skips the version check (accepts rolled-back blobs). */
    bool acceptSealRollback = false;
    /**
     * evict_pages_batch skips the TLB invalidation of every *middle*
     * page (indices 0 < i < n-1) of the batch: the endpoints still get
     * invalidated, so single- and two-element batches behave correctly
     * and only batches of three or more leak stale translations.
     */
    bool batchSkipMiddleInvalidate = false;
    /**
     * The final stop-and-copy round of a live migration skips pages
     * dirtied since the last pre-copy round, shipping their stale
     * pre-copy contents.  Migrations with no writes between rounds
     * stay correct; any written page diverges on the target, which the
     * migration ≡ quiesced-copy oracle flags.
     */
    bool skipDirtyOnFinalRound = false;

    bool
    any() const
    {
        return elrangeOffByOne || skipEpcmOwnerCheck || staleTlbOnUnmap ||
               wrongPermMask || frameDoubleFree || acceptSealRollback ||
               batchSkipMiddleInvalidate || skipDirtyOnFinalRound;
    }
};

/** Build-time configuration of the monitor. */
struct MonitorConfig
{
    MemLayout layout;
    /**
     * Re-enable the 2022 bug: initialize enclave GPTs by shallow-copying
     * the creator's level-4 entries instead of building from scratch.
     */
    bool shallowCopyBug = false;
    /** Map the normal VM's EPT with 2 MiB pages where possible. */
    bool hugeNormalEpt = true;
    /** Injected bugs for the fuzzer kill suite (all off by default). */
    PlantedBugs planted;
};

/** Kind of page being added by the add_page hypercall. */
enum class AddPageKind : u8
{
    Reg,  //!< regular data/code page
    Tcs,  //!< thread control structure (entry-point) page
};

/**
 * An evicted EPC page sealed for untrusted custody (EWB analogue).
 *
 * The monitor hands this whole structure to the primary OS, which may
 * store it anywhere and present it back at reload time.  Everything the
 * OS could usefully tamper with — owner, linear address, page kind, the
 * guest-physical slot, the anti-rollback version and the page contents —
 * is covered by the MAC, so the only freedom the OS has is to present a
 * stale-but-genuine blob, and the per-address version counter closes
 * exactly that (see Enclave::evictedPages).  In real EWB the words would
 * be AES-GCM ciphertext; this model declassifies the sealed image as an
 * opaque blob (src/sec treats its ciphertext as OS-observable and the
 * plaintext as secret).
 */
struct SealedBlob
{
    EnclaveId owner = invalidEnclave;
    Gva gva{};                //!< enclave-linear address of the page
    AddPageKind kind = AddPageKind::Reg;
    Gpa gpaSlot{};            //!< stage-1 slot in the EPC GPA window
    u64 version = 0;          //!< anti-rollback counter
    std::array<u64, pageSize / sizeof(u64)> words{};
    u64 mac = 0;

    bool operator==(const SealedBlob &) const = default;
};

/** The sealing MAC over a blob's OS-tamperable fields (keyed FNV). */
u64 sealedBlobMac(const SealedBlob &blob);

/** What snapshot leaves of the source enclave. */
enum class SnapshotMode : u8
{
    Fork,  //!< source stays intact (backup / fork)
    Move,  //!< source is destroyed after sealing (migration)
};

/** Header + per-page digest metadata of one image page. */
struct ImagePageMeta
{
    Gva gva{};                       //!< enclave-linear address
    AddPageKind kind = AddPageKind::Reg;
    u64 version = 0;                 //!< anti-rollback version (base+i)
    u64 digest = 0;                  //!< FNV digest of the page words

    bool operator==(const ImagePageMeta &) const = default;
};

/**
 * A whole-enclave snapshot sealed for untrusted custody: the composite
 * of sealing every EPC page (EWB-equivalent), plus a MAC'd header
 * binding the measurement, geometry, per-page digests and the
 * anti-rollback version vector.  Like SealedBlob, the OS may store and
 * transport it freely; restore re-verifies everything.
 */
struct EnclaveImage
{
    EnclaveId sourceId = invalidEnclave;
    EnclaveConfig cfg;               //!< ELRANGE + mbuf geometry
    u64 measurement = 0;
    u64 addedPages = 0;
    u64 tcsPages = 0;
    u64 entryPoint = 0;
    /**
     * First version of the image's version vector: page i is sealed at
     * versionBase + i, and the whole vector is consumed from the
     * source's nextSealVersion exactly as an evict-all fold would.
     */
    u64 versionBase = 0;
    std::vector<ImagePageMeta> pageMeta; //!< header copy, MAC'd
    std::vector<SealedBlob> pages;       //!< sealed payloads, in gva order
    u64 mac = 0;

    bool operator==(const EnclaveImage &) const = default;
};

/** The image MAC over the header and the per-page blob MACs. */
u64 enclaveImageMac(const EnclaveImage &image);

/**
 * The per-page digest bound into an image's page-meta vector (an FNV
 * fold over the page's words).  Public so the live-migration engine
 * can rebuild a consistent image from pre-copied page contents.
 */
u64 enclavePageDigest(const u64 *words);

/**
 * Statistics counters exposed for the benches.  Atomic so concurrent
 * hypercalls from multiple vCPUs (src/smp/) can bump them without a
 * lock; single-vCPU readers just see plain integers.
 */
struct MonitorStats
{
    std::atomic<u64> hypercalls{0};
    std::atomic<u64> enclavesCreated{0};
    std::atomic<u64> pagesAdded{0};
    std::atomic<u64> enters{0};
    std::atomic<u64> exits{0};
    std::atomic<u64> reports{0};
    std::atomic<u64> rejectedRequests{0};
    std::atomic<u64> pagesEvicted{0};
    std::atomic<u64> pagesReloaded{0};
    std::atomic<u64> imagesSnapshotted{0};
    std::atomic<u64> imagesRestored{0};
};

/** One element of an add_pages_batch hypercall. */
struct AddPageRequest
{
    Gva gva{};                       //!< enclave-linear target address
    Gpa src{};                       //!< normal-memory source page
    AddPageKind kind = AddPageKind::Reg;

    bool operator==(const AddPageRequest &) const = default;
};

/** What the report hypercall hands back (EREPORT stub). */
struct EnclaveReport
{
    EnclaveId id = invalidEnclave;
    u64 measurement = 0;  //!< the enclave's rolling measurement
    u64 addedPages = 0;   //!< EPC pages folded into the measurement

    bool operator==(const EnclaveReport &) const = default;
};

/** The trusted monitor. */
class Monitor
{
  public:
    explicit Monitor(const MonitorConfig &config);

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    /// @name Component access (for checkers, tests and benches)
    /// @{
    PhysMem &mem() { return physMem; }
    const PhysMem &mem() const { return physMem; }
    FrameAllocator &ptAlloc() { return frameAlloc; }
    const FrameAllocator &ptAlloc() const { return frameAlloc; }
    Epcm &epcm() { return epcMap; }
    const Epcm &epcm() const { return epcMap; }
    Tlb &tlb() { return tlbModel; }
    const MonitorConfig &config() const { return cfg; }
    const MonitorStats &stats() const { return statCounters; }
    /// @}

    /** Root of the normal VM's extended page table. */
    Hpa normalEptRoot() const { return normalEpt->root(); }

    /** Look up a live (non-dead) enclave; null if unknown. */
    const Enclave *findEnclave(EnclaveId id) const;

    /**
     * Mutable enclave lookup for the SMP layer (src/smp/), which
     * manages occupancy counts and per-vCPU contexts itself.  Callers
     * must hold whatever lock discipline they impose on the enclave
     * table; the single-vCPU paths never need this.
     */
    Enclave *findEnclaveMutable(EnclaveId id);

    /** Number of live enclaves. */
    u64 liveEnclaves() const;

    /** Visit every live enclave. */
    void forEachEnclave(
        const std::function<void(const Enclave &)> &visit) const;

    /// @name Hypercalls (the primitives the paper's model transitions on)
    /// @{

    /**
     * init (ECREATE analogue): create an enclave.
     *
     * Validates the proposed geometry (ELRANGE page-aligned and
     * non-empty, marshalling buffer disjoint from ELRANGE and backed by
     * normal memory), builds the enclave's empty GPT and EPT, and maps
     * the marshalling buffer into both stages.  The mapping of the
     * marshalling buffer is fixed for the enclave's entire life cycle.
     *
     * @return the new enclave's id.
     */
    Expected<EnclaveId> hcEnclaveInit(const EnclaveConfig &config);

    /**
     * add_page (EADD analogue): allocate an EPC page, copy its initial
     * contents from normal memory, record it in the EPCM, and map it at
     * page_gva in the enclave's GPT/EPT.
     *
     * @param id target enclave (must be in Adding state).
     * @param page_gva enclave-linear address; must lie in ELRANGE.
     * @param src guest-physical source of the initial contents; must be
     *            normal memory.
     * @param kind Reg or Tcs.
     * @param frames optional frame source for the page-table frames the
     *               mapping needs (a per-CPU cache under SMP); defaults
     *               to the global allocator.
     */
    Status hcEnclaveAddPage(EnclaveId id, Gva page_gva, Gpa src,
                            AddPageKind kind, FrameSource *frames = nullptr);

    /**
     * init_finish (EINIT analogue): finalize the measurement and make
     * the enclave enterable.  Requires at least one TCS page.
     */
    Status hcEnclaveInitFinish(EnclaveId id);

    /**
     * enter (EENTER analogue): world-switch the vCPU into the enclave.
     * Saves the app context, installs the enclave's GPT/EPT roots,
     * scrubs the register file, jumps to the TCS entry point, and
     * flushes the TLB tags involved.
     */
    Status hcEnclaveEnter(EnclaveId id, VCpu &vcpu);

    /**
     * exit (EEXIT analogue): world-switch back to the normal VM,
     * saving the enclave context and restoring the app context.
     */
    Status hcEnclaveExit(VCpu &vcpu);

    /**
     * remove (EREMOVE analogue): tear the enclave down, scrub and free
     * its EPC pages and page-table frames.  Not callable while a vCPU
     * is inside the enclave.
     */
    Status hcEnclaveRemove(EnclaveId id);

    /**
     * report (EREPORT analogue): local attestation of the calling
     * enclave.  Only callable from enclave mode; reads fields that are
     * immutable once the enclave is Initialized, so concurrent callers
     * need no enclave lock.
     */
    Expected<EnclaveReport> hcEnclaveReport(const VCpu &vcpu);

    /**
     * evict_page (EWB analogue): seal a resident enclave page — its
     * contents, EPCM metadata and a fresh anti-rollback version — into
     * an OS-held blob, then unmap it from the enclave's GPT/EPT, scrub
     * the EPC frame and release it.  The caller (the untrusted OS,
     * under memory pressure) keeps the blob; the enclave must be
     * Initialized and the page resident at an ELRANGE address.
     */
    Expected<SealedBlob> hcEnclaveEvictPage(EnclaveId id, Gva page_gva);

    /**
     * reload_page (ELD analogue): verify a sealed blob's MAC, owner and
     * version, then restore the page — same EPC GPA slot, same EPCM
     * metadata, bit-identical contents.  A tampered or cross-enclave
     * blob fails with SealAuthFailed; a genuine-but-stale blob fails
     * with SealRollback.
     */
    Status hcEnclaveReloadPage(EnclaveId id, const SealedBlob &blob,
                               FrameSource *frames = nullptr);

    /**
     * add_pages_batch: the fold of hcEnclaveAddPage over @p reqs with
     * one hypercall's worth of fixed overhead and all-or-nothing
     * semantics.  Elements are validated and applied one at a time in
     * order; on the first failure every already-applied element is
     * rolled back (pages unmapped, EPC frames scrubbed and freed, the
     * measurement and page counters restored) and the error returned is
     * exactly the error the failing single call would have produced, so
     * batch(ops) ≡ fold(single, ops) including the error channel.
     */
    Status hcEnclaveAddPagesBatch(EnclaveId id,
                                  const std::vector<AddPageRequest> &reqs,
                                  FrameSource *frames = nullptr);

    /**
     * evict_pages_batch: the fold of hcEnclaveEvictPage over @p gvas
     * with one hypercall's worth of overhead and all-or-nothing
     * semantics.  Per-page TLB invalidation replaces the per-call
     * domain flush (the SMP layer turns this into one vectored
     * shootdown); on the first failure every already-sealed page is
     * restored — contents, EPCM slot (same index), stage-1/2 mappings
     * and the anti-rollback ledger — leaving the state bit-identical to
     * the pre-batch state.
     */
    Expected<std::vector<SealedBlob>>
    hcEnclaveEvictPagesBatch(EnclaveId id, const std::vector<Gva> &gvas);

    /**
     * snapshot: quiesce the enclave and fold every EPC page through
     * evict-equivalent sealing into a single MAC'd image.  Rejected
     * while any vCPU is resident (the enclave must be quiesced), while
     * the enclave is not Initialized, or while pages are evicted (the
     * OS holds part of the state).  Versions are consumed from
     * nextSealVersion exactly like an evict-all fold; Fork leaves the
     * source intact, Move destroys it (remove-equivalent teardown).
     * Single-vCPU path flushes the TLB domain; the SMP wrapper runs
     * one vectored shootdown instead.
     */
    Expected<EnclaveImage> hcEnclaveSnapshot(EnclaveId id,
                                             SnapshotMode mode);

    /**
     * restore_image: rebuild an enclave from a snapshot on this host
     * (typically a twin machine).  Verifies the image MAC, the page
     * vector against the header (ImageTruncated), every per-page blob
     * MAC and digest (ImageAuthFailed), and the anti-rollback ledger
     * (ImageRollback: a measurement's images must restore in
     * non-decreasing versionBase order).  Construction reuses the
     * batched add/reload path with all-or-nothing rollback: any
     * mid-build failure unwinds to a state with no trace of the
     * attempt and returns the first error.
     *
     * @return the restored enclave's (fresh) id.
     */
    Expected<EnclaveId> hcEnclaveRestoreImage(const EnclaveImage &image);

    /// @}

    /// @name Dirty-page tracking (live-migration support)
    /// @{

    /**
     * Enclave pages whose GPT terminal entry carries the dirty bit,
     * in ascending gva order.  Write-fault-driven: the walker stamps
     * the bit on write translations (see PageTable::stampAccessedDirty).
     */
    Expected<std::vector<Gva>> enclaveDirtyPages(EnclaveId id) const;

    /**
     * Clear the dirty bits of every enclave page and flush the TLB
     * domain so the next write re-walks (and re-stamps).  The SMP
     * layer pairs the clear with a shootdown instead.
     *
     * @param flush_tlb false when the caller runs its own shootdown.
     */
    Status clearEnclaveDirty(EnclaveId id, bool flush_tlb = true);

    /**
     * Store into a resident enclave page through the dirty-stamping
     * translation path, as a resident vCPU's store would.  The
     * migration engine's workload model and the benches use this to
     * dirty pages without a full enter/exit round.
     */
    Status enclaveStore(EnclaveId id, Gva va, u64 value);

    /** Read from a resident enclave page (no dirty stamping). */
    Expected<u64> enclaveLoad(EnclaveId id, Gva va) const;

    /**
     * Every resident ELRANGE page of the enclave, in ascending gva
     * order (the pre-copy engine's round-0 work list).
     */
    Expected<std::vector<Gva>> enclaveResidentPages(EnclaveId id) const;

    /**
     * Copy one resident enclave page's words out (pre-copy transfer
     * read; no dirty stamping).  @p out must hold pageSize bytes.
     */
    Status enclaveReadPage(EnclaveId id, Gva page_va, u64 *out) const;

    /// @}

    /**
     * Two-stage translation for a running vCPU: GVA --GPT--> GPA
     * --EPT--> HPA, consulting and filling the TLB.
     *
     * @param vcpu the executing vCPU (mode selects the table roots).
     * @param va guest-virtual address.
     * @param is_write demand write permission on both stages.
     */
    Expected<Hpa> translate(VCpu &vcpu, Gva va, bool is_write);

    /**
     * TLB-less two-stage translation from explicit roots, for the
     * normal VM: the guest page table is addressed in guest-physical
     * space, so every stage-1 table access is itself EPT-translated.
     * Used by the checkers so they see the tables, not the cache.
     */
    Expected<Hpa> translateUncached(Hpa gpt_root, Hpa ept_root, Gva va,
                                    bool is_write) const;

    /**
     * TLB-less two-stage translation for an enclave: the GPT is
     * monitor-managed in secure memory and walked directly from its
     * host-physical root; only the resulting GPA goes through the EPT.
     */
    Expected<Hpa> translateEnclaveUncached(Hpa gpt_root, Hpa ept_root,
                                           Gva va, bool is_write) const;

    /** A guest writes a new GPT root (MOV CR3 in the normal VM). */
    Status guestSetGptRoot(VCpu &vcpu, Hpa new_root);

    /**
     * The image anti-rollback ledger: highest versionBase restored so
     * far, per source measurement.  Read-only view for the checkers.
     */
    const std::map<u64, u64> &restoredImageLedger() const
    {
        return imageLedger;
    }

  private:
    /** Shared init validation; returns the id to use. */
    Expected<EnclaveId> validateInitConfig(const EnclaveConfig &config);

    /** Map the marshalling buffer into an enclave's GPT and EPT. */
    Status mapMarshallingBuffer(Enclave &enclave);

    /** Scrub an EPC page before releasing it. */
    void scrubPage(Hpa page);

    MonitorConfig cfg;
    PhysMem physMem;
    FrameAllocator frameAlloc;
    Epcm epcMap;
    Tlb tlbModel;
    std::unique_ptr<PageTable> normalEpt;
    std::map<EnclaveId, Enclave> enclaves;
    EnclaveId nextEnclaveId = 1;
    MonitorStats statCounters;
    /** measurement -> highest restored versionBase (anti-rollback). */
    std::map<u64, u64> imageLedger;
};

} // namespace hev::hv

#endif // HEV_HV_MONITOR_HH
