/**
 * @file
 * Enclave control structure (the SECS analogue).
 *
 * One Enclave record per live enclave: its lifecycle state, the
 * enclave-linear range (ELRANGE) its protected pages live at, the
 * marshalling-buffer geometry fixed at creation, the roots of its
 * monitor-managed GPT and EPT, and the saved application context used by
 * enter/exit transitions.
 */

#ifndef HEV_HV_ENCLAVE_HH
#define HEV_HV_ENCLAVE_HH

#include <map>

#include "hv/vcpu.hh"
#include "support/types.hh"

namespace hev::hv
{

/** Lifecycle of an enclave, mirroring ECREATE/EADD/EINIT/remove. */
enum class EnclaveState : u8
{
    Adding,       //!< created; EADD (add_page) permitted
    Initialized,  //!< EINIT done; enterable, no further adds
    Dead,         //!< removed; id retired
};

/** Name of an EnclaveState, for diagnostics. */
const char *enclaveStateName(EnclaveState state);

/** Geometry the untrusted OS proposes at enclave creation. */
struct EnclaveConfig
{
    /** Enclave-linear range holding protected pages. */
    GvaRange elrange;
    /** Where the marshalling buffer appears in the enclave's VA space. */
    Gva mbufGva{};
    /** Marshalling buffer length in pages. */
    u64 mbufPages = 0;
    /**
     * Backing of the marshalling buffer in normal memory, as a
     * guest-physical address of the normal VM (identity-mapped, so this
     * is also the host-physical backing).
     */
    Gpa mbufBacking{};
    /**
     * Guest page-table root the primary OS ran with at creation time.
     * Only consumed by the historical shallow-copy bug reproduction
     * (see MonitorConfig::shallowCopyBug); ignored by the fixed monitor.
     */
    Hpa creatorGptRoot{};
};

/** Guest-physical window where an enclave's EPC pages are mapped. */
constexpr u64 enclaveEpcGpaBase = 0x4000'0000;
/** Guest-physical window where the marshalling buffer is mapped. */
constexpr u64 enclaveMbufGpaBase = 0x8000'0000;

/** Live state of one enclave. */
struct Enclave
{
    EnclaveId id = invalidEnclave;
    EnclaveState state = EnclaveState::Adding;
    EnclaveConfig cfg;

    /** Root of the monitor-managed guest page table. */
    Hpa gptRoot{};
    /** Root of the monitor-managed extended page table. */
    Hpa eptRoot{};

    /** Pages added so far (allocation cursor in the EPC GPA window). */
    u64 addedPages = 0;
    /** Number of TCS pages added (enter requires at least one). */
    u64 tcsPages = 0;
    /** Entry point recorded from the first TCS page. */
    u64 entryPoint = 0;
    /** Rolling measurement over added pages (attestation stub). */
    u64 measurement = 0;

    /** App context saved by enter, restored by exit. */
    RegFile savedAppRegs;
    Hpa savedAppGptRoot{};
    /** Enclave context saved by exit, restored by re-enter. */
    RegFile savedEnclaveRegs;
    bool hasSavedEnclaveRegs = false;
    /**
     * Number of vCPUs currently executing inside the enclave.  Each
     * resident vCPU occupies one TCS, so occupancy is bounded by
     * tcsPages; the single-vCPU Monitor additionally keeps it at most
     * one (its saved contexts live in this struct), while the SMP
     * monitor saves contexts per vCPU and allows up to tcsPages.
     * Removal while any vCPU is inside is rejected.
     */
    u32 activeVcpus = 0;

    /**
     * Pages evicted (EWB analogue) and not yet reloaded, keyed by their
     * enclave-linear address.  The value is the version counter sealed
     * into the blob; reload accepts exactly this version, which is what
     * makes replaying an older blob for the same address fail
     * (anti-rollback).
     */
    std::map<u64, u64> evictedPages;
    /** Next version counter to seal into an evicted page's blob. */
    u64 nextSealVersion = 1;

    /** The marshalling buffer range in the enclave's VA space. */
    GvaRange
    mbufGvaRange() const
    {
        return {cfg.mbufGva, cfg.mbufGva + cfg.mbufPages * pageSize};
    }

    /** The marshalling buffer backing range in host-physical memory. */
    HpaRange
    mbufHpaRange() const
    {
        return {Hpa(cfg.mbufBacking.value),
                Hpa(cfg.mbufBacking.value + cfg.mbufPages * pageSize)};
    }
};

} // namespace hev::hv

#endif // HEV_HV_ENCLAVE_HH
