#include "hv/frame_alloc.hh"

#include "hv/phys_mem.hh"
#include "support/logging.hh"

namespace hev::hv
{

FrameAllocator::FrameAllocator(PhysMem &mem, HpaRange area)
    : physMem(mem), managedArea(area)
{
    if (!area.start.pageAligned() || !area.end.pageAligned())
        fatal("frame area must be page aligned");
    bitmap.assign(area.size() / pageSize, false);
    totalCount = bitmap.size();
}

u64
FrameAllocator::indexOf(Hpa frame) const
{
    return (frame - managedArea.start) / pageSize;
}

Expected<Hpa>
FrameAllocator::allocLocked()
{
    const u64 n = bitmap.size();
    for (u64 probe = 0; probe < n; ++probe) {
        const u64 idx = (searchHint + probe) % n;
        if (!bitmap[idx]) {
            bitmap[idx] = true;
            ++used;
            searchHint = (idx + 1) % n;
            const Hpa frame = managedArea.start + idx * pageSize;
            physMem.zeroPage(frame);
            return frame;
        }
    }
    return HvError::OutOfMemory;
}

Expected<Hpa>
FrameAllocator::alloc()
{
    MutexGuard guard(lock);
    return allocLocked();
}

u64
FrameAllocator::allocBatch(u64 count, std::vector<Hpa> &out)
{
    MutexGuard guard(lock);
    u64 got = 0;
    while (got < count) {
        auto frame = allocLocked();
        if (!frame)
            break;
        out.push_back(*frame);
        ++got;
    }
    return got;
}

Status
FrameAllocator::free(Hpa frame)
{
    if (!inArea(frame) || !frame.pageAligned())
        return HvError::InvalidParam;
    MutexGuard guard(lock);
    const u64 idx = indexOf(frame);
    if (!bitmap[idx])
        return HvError::InvalidParam;
    bitmap[idx] = false;
    --used;
    return okStatus();
}

void
FrameAllocator::freeBatch(const std::vector<Hpa> &frames)
{
    MutexGuard guard(lock);
    for (Hpa frame : frames) {
        if (!inArea(frame) || !frame.pageAligned())
            continue;
        const u64 idx = indexOf(frame);
        if (bitmap[idx]) {
            bitmap[idx] = false;
            --used;
        }
    }
}

void
FrameAllocator::debugForceFree(Hpa frame)
{
    if (!inArea(frame) || !frame.pageAligned())
        return;
    MutexGuard guard(lock);
    const u64 idx = indexOf(frame);
    if (bitmap[idx])
        --used;
    bitmap[idx] = false;
    searchHint = idx;
}

bool
FrameAllocator::allocated(Hpa frame) const
{
    if (!inArea(frame) || !frame.pageAligned())
        return false;
    MutexGuard guard(lock);
    return bitmap[indexOf(frame)];
}

u64
FrameAllocator::usedFrames() const
{
    MutexGuard guard(lock);
    return used;
}

} // namespace hev::hv
