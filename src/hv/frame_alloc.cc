#include "hv/frame_alloc.hh"

#include "hv/phys_mem.hh"
#include "support/logging.hh"

namespace hev::hv
{

FrameAllocator::FrameAllocator(PhysMem &mem, HpaRange area)
    : physMem(mem), managedArea(area)
{
    if (!area.start.pageAligned() || !area.end.pageAligned())
        fatal("frame area must be page aligned");
    bitmap.assign(area.size() / pageSize, false);
}

u64
FrameAllocator::indexOf(Hpa frame) const
{
    return (frame - managedArea.start) / pageSize;
}

Expected<Hpa>
FrameAllocator::alloc()
{
    const u64 n = bitmap.size();
    for (u64 probe = 0; probe < n; ++probe) {
        const u64 idx = (searchHint + probe) % n;
        if (!bitmap[idx]) {
            bitmap[idx] = true;
            ++used;
            searchHint = (idx + 1) % n;
            const Hpa frame = managedArea.start + idx * pageSize;
            physMem.zeroPage(frame);
            return frame;
        }
    }
    return HvError::OutOfMemory;
}

Status
FrameAllocator::free(Hpa frame)
{
    if (!inArea(frame) || !frame.pageAligned())
        return HvError::InvalidParam;
    const u64 idx = indexOf(frame);
    if (!bitmap[idx])
        return HvError::InvalidParam;
    bitmap[idx] = false;
    --used;
    return okStatus();
}

void
FrameAllocator::debugForceFree(Hpa frame)
{
    if (!inArea(frame) || !frame.pageAligned())
        return;
    const u64 idx = indexOf(frame);
    if (bitmap[idx])
        --used;
    bitmap[idx] = false;
    searchHint = idx;
}

bool
FrameAllocator::allocated(Hpa frame) const
{
    if (!inArea(frame) || !frame.pageAligned())
        return false;
    return bitmap[indexOf(frame)];
}

} // namespace hev::hv
