/**
 * @file
 * Physical memory layout of the simulated machine.
 *
 * During boot HyperEnclave reserves a contiguous slice of physical memory
 * for itself (paper Sec. 2.1): the RustMonitor image and data, the frames
 * used for monitor-managed page tables, and the Enclave Page Cache (EPC)
 * that backs enclave memory.  Everything below the reservation is normal
 * memory owned by the untrusted primary OS.
 *
 *   0                  secureBase       ptArea.end        totalBytes
 *   |  normal memory   |  PT frame area  |  EPC pages      |
 *   |  (primary OS)    |<------- secure (reserved) ------->|
 */

#ifndef HEV_HV_MEM_LAYOUT_HH
#define HEV_HV_MEM_LAYOUT_HH

#include "support/types.hh"

namespace hev::hv
{

/** Static description of the machine's physical memory map. */
struct MemLayout
{
    /** Total bytes of physical memory. */
    u64 totalBytes = 32 * 1024 * 1024;
    /** Bytes reserved for monitor-managed page-table frames. */
    u64 ptAreaBytes = 4 * 1024 * 1024;
    /** Bytes reserved for the Enclave Page Cache. */
    u64 epcBytes = 8 * 1024 * 1024;

    /** First byte of the secure (reserved) region. */
    u64
    secureBase() const
    {
        return totalBytes - ptAreaBytes - epcBytes;
    }

    /** Normal memory: [0, secureBase), owned by the primary OS. */
    HpaRange
    normalRange() const
    {
        return {Hpa(0), Hpa(secureBase())};
    }

    /** The whole reserved region: PT frames plus EPC. */
    HpaRange
    secureRange() const
    {
        return {Hpa(secureBase()), Hpa(totalBytes)};
    }

    /** Frames the monitor hands out for page tables. */
    HpaRange
    ptAreaRange() const
    {
        return {Hpa(secureBase()), Hpa(secureBase() + ptAreaBytes)};
    }

    /** EPC pages backing enclave memory. */
    HpaRange
    epcRange() const
    {
        return {Hpa(secureBase() + ptAreaBytes), Hpa(totalBytes)};
    }

    /** Number of EPC pages. */
    u64 epcPages() const { return epcBytes / pageSize; }

    /** Number of page-table frames in the PT area. */
    u64 ptFrames() const { return ptAreaBytes / pageSize; }

    /** True iff the layout is internally consistent. */
    bool
    valid() const
    {
        return totalBytes % pageSize == 0 && ptAreaBytes % pageSize == 0 &&
               epcBytes % pageSize == 0 &&
               ptAreaBytes + epcBytes < totalBytes && ptAreaBytes > 0 &&
               epcBytes > 0;
    }
};

} // namespace hev::hv

#endif // HEV_HV_MEM_LAYOUT_HH
