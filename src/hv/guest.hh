/**
 * @file
 * Model of the untrusted primary OS (the adversary of the threat model).
 *
 * The primary OS owns normal memory and manages its own and its apps'
 * guest page tables (paper Sec. 2.1) — the monitor never validates
 * those.  Per the threat model (Sec. 2.2) it may issue arbitrary memory
 * accesses through whatever its EPT permits, program malicious DMA, and
 * fire any hypercall sequence.  Everything here goes through the same
 * mediation real hardware would apply, so attack attempts exercise
 * exactly the isolation machinery under verification.
 */

#ifndef HEV_HV_GUEST_HH
#define HEV_HV_GUEST_HH

#include <vector>

#include "hv/monitor.hh"
#include "support/result.hh"
#include "support/types.hh"

namespace hev::hv
{

/** The untrusted primary OS. */
class PrimaryOs
{
  public:
    explicit PrimaryOs(Monitor &mon);

    PrimaryOs(const PrimaryOs &) = delete;
    PrimaryOs &operator=(const PrimaryOs &) = delete;

    /// @name Guest-side physical page management (normal memory)
    /// @{

    /** Allocate a free page of normal memory from the guest's pool. */
    Expected<Gpa> allocPage();

    /** Return a page to the guest's pool. */
    Status freePage(Gpa page);

    /// @}

    /// @name Guest-physical memory access, mediated by the normal EPT
    /// @{

    /** 64-bit load at a guest-physical address. */
    Expected<u64> physRead(Gpa addr) const;

    /** 64-bit store at a guest-physical address. */
    Status physWrite(Gpa addr, u64 value);

    /** Zero one guest-physical page. */
    Status zeroPage(Gpa page);

    /// @}

    /// @name Guest page-table management (untrusted, guest-built)
    /// @{

    /**
     * Build a fresh, empty page-table root in normal memory.
     * @return the guest-physical address of the level-4 table.
     */
    Expected<Gpa> createPageTable();

    /**
     * Install a 4 KiB mapping va -> target in a guest-built table,
     * allocating intermediate tables from the guest pool.
     */
    Status gptMap(Gpa root, u64 va, Gpa target, PteFlags flags);

    /** Remove a 4 KiB mapping from a guest-built table. */
    Status gptUnmap(Gpa root, u64 va);

    /**
     * Attack helper: write a raw 64-bit entry at (table, index) with no
     * validation whatsoever — the OS can always do this to its own
     * tables, and a malicious OS will.
     */
    Status writePtEntryRaw(Gpa table, u64 index, u64 raw);

    /// @}

    /** Pages currently allocated from the guest pool. */
    u64 usedPages() const { return usedCount; }

  private:
    Monitor &monitor;
    /** One bit per page of normal memory; true = allocated. */
    std::vector<bool> pageBitmap;
    u64 usedCount = 0;
    u64 searchHint = 0;
};

} // namespace hev::hv

#endif // HEV_HV_GUEST_HH
