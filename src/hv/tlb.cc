#include "hv/tlb.hh"

#include <vector>

#include "obs/stats.hh"
#include "obs/trace.hh"

namespace hev::hv
{

namespace
{

const obs::Counter statHits("hv.tlb.hits");
const obs::Counter statMisses("hv.tlb.misses");
const obs::Counter statInserts("hv.tlb.inserts");
const obs::Counter statFlushes("hv.tlb.flushes");
const obs::Gauge statEntries("hv.tlb.entries");

} // namespace

std::optional<TlbEntry>
Tlb::lookup(DomainId domain, u64 va) const
{
    auto it = entries.find(keyOf(domain, va));
    if (it == entries.end()) {
        ++missCount;
        statMisses.inc();
        obs::traceEvent(obs::EventType::TlbMiss, "tlb", domain, va);
        return std::nullopt;
    }
    ++hitCount;
    statHits.inc();
    obs::traceEvent(obs::EventType::TlbHit, "tlb", domain, va);
    return it->second;
}

void
Tlb::insert(DomainId domain, u64 va, TlbEntry entry)
{
    entries[keyOf(domain, va)] = entry;
    statInserts.inc();
    statEntries.set(i64(entries.size()));
}

void
Tlb::flushDomain(DomainId domain)
{
    ++flushCount;
    statFlushes.inc();
    std::vector<u64> doomed;
    for (const auto &[key, entry] : entries) {
        if ((key >> 52) == domain)
            doomed.push_back(key);
    }
    for (u64 key : doomed)
        entries.erase(key);
    statEntries.set(i64(entries.size()));
}

void
Tlb::invalidatePage(DomainId domain, u64 va)
{
    if (entries.erase(keyOf(domain, va)) > 0) {
        ++flushCount;
        statFlushes.inc();
        statEntries.set(i64(entries.size()));
    }
}

u64
Tlb::countDomain(DomainId domain) const
{
    u64 count = 0;
    for (const auto &[key, entry] : entries) {
        if ((key >> 52) == domain)
            ++count;
    }
    return count;
}

void
Tlb::forEach(
    const std::function<void(DomainId, u64, const TlbEntry &)> &visit) const
{
    for (const auto &[key, entry] : entries)
        visit(DomainId(key >> 52), (key & ((1ull << 52) - 1)) << pageShift,
              entry);
}

void
Tlb::flushAll()
{
    ++flushCount;
    statFlushes.inc();
    entries.clear();
    statEntries.set(0);
}

} // namespace hev::hv
