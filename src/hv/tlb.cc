#include "hv/tlb.hh"

#include <vector>

namespace hev::hv
{

std::optional<TlbEntry>
Tlb::lookup(DomainId domain, u64 va) const
{
    auto it = entries.find(keyOf(domain, va));
    if (it == entries.end()) {
        ++missCount;
        return std::nullopt;
    }
    ++hitCount;
    return it->second;
}

void
Tlb::insert(DomainId domain, u64 va, TlbEntry entry)
{
    entries[keyOf(domain, va)] = entry;
}

void
Tlb::flushDomain(DomainId domain)
{
    ++flushCount;
    std::vector<u64> doomed;
    for (const auto &[key, entry] : entries) {
        if ((key >> 52) == domain)
            doomed.push_back(key);
    }
    for (u64 key : doomed)
        entries.erase(key);
}

void
Tlb::flushAll()
{
    ++flushCount;
    entries.clear();
}

} // namespace hev::hv
