/**
 * @file
 * The Enclave Page Cache Map (EPCM).
 *
 * RustMonitor "maintains a data structure (i.e., Enclave Page Cache Map,
 * EPCM) to store the EPC page states, and checks the correctness for
 * memory allocation" (paper Sec. 2.1).  Every page of the EPC has one
 * entry recording whether it is free, which enclave owns it, what kind of
 * page it is, and the enclave-linear (guest-virtual) address it was added
 * at.  The paper's *EPCM invariant* (Sec. 5.2) requires every enclave
 * page-table mapping to have a matching entry here — ruling out covert
 * mappings.
 */

#ifndef HEV_HV_EPCM_HH
#define HEV_HV_EPCM_HH

#include <functional>
#include <vector>

#include "support/result.hh"
#include "support/thread_annotations.hh"
#include "support/types.hh"

namespace hev::hv
{

/** Lifecycle state / kind of one EPC page, after SGX's page types. */
enum class EpcPageState : u8
{
    Free = 0,  //!< unowned
    Reg,       //!< regular enclave data/code page
    Tcs,       //!< thread control structure page (entry point metadata)
};

/** Name of an EpcPageState, for diagnostics. */
const char *epcPageStateName(EpcPageState state);

/** Metadata for one EPC page. */
struct EpcmEntry
{
    EpcPageState state = EpcPageState::Free;
    EnclaveId owner = invalidEnclave;
    Gva linAddr{};          //!< enclave-linear address the page backs

    bool operator==(const EpcmEntry &) const = default;
};

/** Map from EPC page to its metadata, plus the allocation policy. */
class Epcm
{
  public:
    explicit Epcm(HpaRange epc_range);

    /** True iff hpa lies inside the EPC. */
    bool isEpc(Hpa hpa) const { return epcRange.contains(hpa); }

    /**
     * Allocate a free EPC page for an enclave.
     *
     * @param owner owning enclave; must not be invalidEnclave.
     * @param lin_addr enclave-linear address the page will back.
     * @param state Reg or Tcs.
     * @return page base, or OutOfEpc.
     */
    Expected<Hpa> allocPage(EnclaveId owner, Gva lin_addr,
                            EpcPageState state);

    /**
     * allocPage with a caller-held scan cursor: scanning resumes at
     * @p scan_hint (a table index) instead of 0, and the hint advances
     * past each grant.  Equivalent to first-fit-from-0 *only while no
     * page is freed between grants* — exactly the situation inside one
     * all-or-nothing add batch, where it turns k grants over an n-page
     * EPC from O(n*k) scans into O(n+k).
     */
    Expected<Hpa> allocPage(EnclaveId owner, Gva lin_addr,
                            EpcPageState state, u64 &scan_hint);

    /**
     * Re-occupy a specific page with the given metadata (rollback of a
     * mid-batch eviction).  Unlike allocPage this does not pick a slot:
     * the page must currently be Free, and it gets exactly the entry it
     * held before, keeping the EPCM index-aligned with the spec's.
     */
    Status restorePage(Hpa page, EnclaveId owner, Gva lin_addr,
                       EpcPageState state);

    /** Release a page back to Free; must be allocated. */
    Status freePage(Hpa page);

    /** Metadata of the page containing hpa (must be in EPC). */
    const EpcmEntry &entryFor(Hpa hpa) const;

    /** Visit every non-free page: f(page_base, entry). */
    void forEachUsed(
        const std::function<void(Hpa, const EpcmEntry &)> &visit) const;

    /** Pages currently free. */
    u64 freePages() const;

    /** Total EPC pages. */
    u64 totalPages() const { return table.size(); }

    /** The managed physical range. */
    HpaRange range() const { return epcRange; }

  private:
    u64 indexOf(Hpa hpa) const;

    HpaRange epcRange;
    /**
     * Serializes alloc/free from concurrent vCPUs.  Reads via
     * entryFor/forEachUsed are quiescent-only (invariant checkers and
     * exclusive-locked teardown) and stay lock free — their bodies
     * carry HEV_NO_THREAD_SAFETY_ANALYSIS to record exactly that
     * exemption instead of silently widening the guard.
     */
    mutable Mutex lock;
    std::vector<EpcmEntry> table HEV_GUARDED_BY(lock);
    u64 freeCount HEV_GUARDED_BY(lock) = 0;
};

} // namespace hev::hv

#endif // HEV_HV_EPCM_HH
