/**
 * @file
 * Virtual CPU state: register file, execution mode, and current
 * translation roots.
 *
 * Upon an enclave state transition RustMonitor "switches the virtual CPU
 * (vCPU) mode by restoring the vCPU state, switching the guest page
 * table (GPT) and the extended page table (EPT), and also flushing the
 * corresponding TLB entries" (paper Sec. 2.1).  The VCpu here carries
 * exactly the state that switch manipulates; the registers are also part
 * of the observation function in the noninterference proof (Sec. 5.3).
 */

#ifndef HEV_HV_VCPU_HH
#define HEV_HV_VCPU_HH

#include <array>

#include "hv/tlb.hh"
#include "support/types.hh"

namespace hev::hv
{

/** General-purpose register count in the model. */
constexpr int gprCount = 16;

/** Architectural register file visible to the running principal. */
struct RegFile
{
    std::array<u64, gprCount> gpr{};
    u64 rip = 0;
    u64 rsp = 0;
    u64 rflags = 0;

    bool operator==(const RegFile &) const = default;
};

/** Which world the vCPU is executing in. */
enum class CpuMode : u8
{
    GuestNormal,   //!< primary OS / untrusted app
    GuestEnclave,  //!< inside an enclave
};

/** One virtual CPU. */
struct VCpu
{
    RegFile regs;
    CpuMode mode = CpuMode::GuestNormal;
    /** Enclave being executed; valid iff mode == GuestEnclave. */
    EnclaveId currentEnclave = invalidEnclave;
    /** Current first-stage (guest page table) root. */
    Hpa gptRoot{};
    /** Current second-stage (extended page table) root. */
    Hpa eptRoot{};
    /** Domain tag used for TLB lookups. */
    DomainId domain = normalVmDomain;

    bool operator==(const VCpu &) const = default;
};

} // namespace hev::hv

#endif // HEV_HV_VCPU_HH
