#include "hv/pte.hh"

#include <cstdio>

#include "support/logging.hh"

namespace hev::hv
{

Pte
Pte::make(u64 phys_addr, const PteFlags &flags)
{
    if (phys_addr & ~bitMask(51, 12))
        panic("Pte::make: address %#llx not a canonical aligned frame",
              (unsigned long long)phys_addr);
    u64 raw = phys_addr;
    raw = setBit(raw, 0, flags.present);
    raw = setBit(raw, 1, flags.writable);
    raw = setBit(raw, 2, flags.user);
    raw = setBit(raw, 5, flags.accessed);
    raw = setBit(raw, 6, flags.dirty);
    raw = setBit(raw, 7, flags.huge);
    raw = setBit(raw, 63, flags.noExec);
    return Pte(raw);
}

PteFlags
Pte::flags() const
{
    PteFlags f;
    f.present = present();
    f.writable = writable();
    f.user = user();
    f.accessed = accessed();
    f.dirty = dirty();
    f.huge = huge();
    f.noExec = noExec();
    return f;
}

std::string
Pte::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "PTE[%#llx %c%c%c%c%c%c%c]",
                  (unsigned long long)addr(), present() ? 'P' : '-',
                  writable() ? 'W' : '-', user() ? 'U' : '-',
                  accessed() ? 'A' : '-', dirty() ? 'D' : '-',
                  huge() ? 'H' : '-', noExec() ? 'X' : '-');
    return buf;
}

} // namespace hev::hv
