/**
 * @file
 * The whole simulated machine: monitor + primary OS + vCPU.
 *
 * Machine wires the pieces of Fig. 1 together and provides the
 * mem_load / mem_store access path of the paper's abstract model
 * (Sec. 5.1): an access by the currently running principal, resolved
 * through the currently installed page tables.  It also offers the
 * scripted setup helpers the examples, tests and benches share.
 */

#ifndef HEV_HV_MACHINE_HH
#define HEV_HV_MACHINE_HH

#include <vector>

#include "hv/guest.hh"
#include "hv/monitor.hh"
#include "hv/vcpu.hh"
#include "support/result.hh"

namespace hev::hv
{

/** An untrusted application inside the normal VM. */
struct App
{
    Gpa gptRoot{};               //!< the app's guest page table root
    GvaRange range;              //!< VA range the app has mapped
    std::vector<Gpa> backing;    //!< backing pages, one per VA page
};

/** A created enclave together with the host-side handles to drive it. */
struct EnclaveHandle
{
    EnclaveId id = invalidEnclave;
    GvaRange elrange;
    Gva mbufGva{};      //!< marshalling buffer VA inside the enclave
    Gpa mbufBacking{};  //!< marshalling buffer backing in normal memory
    u64 mbufPages = 0;
};

/** The composed machine. */
class Machine
{
  public:
    explicit Machine(const MonitorConfig &config);

    Monitor &monitor() { return mon; }
    const Monitor &monitor() const { return mon; }
    PrimaryOs &os() { return primaryOs; }
    VCpu &vcpu() { return cpu; }
    const VCpu &vcpu() const { return cpu; }

    /** The kernel's identity guest page table root. */
    Gpa kernelGptRoot() const { return kernelGpt; }

    /**
     * Create an app: fresh GPT mapping `pages` pages of newly allocated
     * normal memory at va_base.
     */
    Expected<App> createApp(u64 va_base, u64 pages);

    /** Context-switch the vCPU onto an app's address space. */
    Status switchToApp(const App &app);

    /** Context-switch the vCPU back onto the kernel's address space. */
    Status switchToKernel();

    /**
     * Create, populate and initialize an enclave in one scripted
     * sequence: init, add `pages` Reg pages plus one TCS page, finish.
     *
     * @param elrange_base ELRANGE start (page aligned).
     * @param pages number of Reg pages to add.
     * @param mbuf_pages marshalling buffer length.
     * @param fill seed value written into the source pages before add
     *             (page i, word w gets fill + i * 1000 + w).
     */
    Expected<EnclaveHandle> setupEnclave(u64 elrange_base, u64 pages,
                                         u64 mbuf_pages, u64 fill);

    /// @name The paper's mem_load / mem_store steps
    /// @{

    /** Load by the running principal at an 8-byte-aligned GVA. */
    Expected<u64> memLoad(Gva va);

    /** Store by the running principal at an 8-byte-aligned GVA. */
    Status memStore(Gva va, u64 value);

    /// @}

    /// @name Marshalling-buffer access from the host side
    /// @{

    /** Host-side (app) write into a marshalling buffer word. */
    Status mbufWrite(const EnclaveHandle &enclave, u64 word_index,
                     u64 value);

    /** Host-side (app) read from a marshalling buffer word. */
    Expected<u64> mbufRead(const EnclaveHandle &enclave,
                           u64 word_index) const;

    /// @}

  private:
    MonitorConfig monCfg;
    Monitor mon;
    PrimaryOs primaryOs;
    VCpu cpu;
    Gpa kernelGpt{};
};

} // namespace hev::hv

#endif // HEV_HV_MACHINE_HH
