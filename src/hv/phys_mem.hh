/**
 * @file
 * Flat physical memory with a hardware-enforced secure region.
 *
 * This is the machine's RAM from Fig. 1.  CPU-originated accesses are
 * mediated by page tables (hv/page_table.hh); the raw load/store here is
 * what a successful translation ultimately performs.  Device-originated
 * (DMA) accesses bypass the EPT but are filtered by the platform's
 * DMA-remapping hardware, which HyperEnclave programs to reject any
 * transaction targeting the reserved secure region; dmaRead/dmaWrite
 * model exactly that filter (trusted hardware in the paper's threat
 * model, Sec. 2.2).
 */

#ifndef HEV_HV_PHYS_MEM_HH
#define HEV_HV_PHYS_MEM_HH

#include <vector>

#include "hv/mem_layout.hh"
#include "support/result.hh"
#include "support/types.hh"

namespace hev::hv
{

/** Word-addressable physical memory (64-bit words, like the EPT frames). */
class PhysMem
{
  public:
    explicit PhysMem(const MemLayout &layout);

    const MemLayout &layout() const { return memLayout; }

    /** Total size in bytes. */
    u64 sizeBytes() const { return memLayout.totalBytes; }

    /** True iff hpa names a valid, 8-byte-aligned word. */
    bool validWord(Hpa hpa) const;

    /** Raw 64-bit load; hpa must be valid and aligned. */
    u64 read(Hpa hpa) const;

    /** Raw 64-bit store; hpa must be valid and aligned. */
    void write(Hpa hpa, u64 value);

    /**
     * DMA load on behalf of an untrusted device.
     *
     * @return the word, or PermissionDenied if the DMA-remap filter
     *         blocks it (target inside the secure region).
     */
    Expected<u64> dmaRead(Hpa hpa) const;

    /** DMA store; blocked for secure-region targets. */
    Status dmaWrite(Hpa hpa, u64 value);

    /**
     * Raw word view of one whole page, for bulk paths (batched page
     * copies and measurement folds) that would otherwise pay an
     * out-of-line read/write per word.  The pointer stays valid until
     * the PhysMem is destroyed; page_base must be page aligned and in
     * range.
     */
    const u64 *pageWords(Hpa page_base) const;

    /** Mutable variant of pageWords(). */
    u64 *pageWordsMut(Hpa page_base);

    /** Zero an entire page. */
    void zeroPage(Hpa page_base);

    /** Copy one page of memory; both addresses must be page aligned. */
    void copyPage(Hpa dst_base, Hpa src_base);

    /** True iff hpa lies within the reserved secure region. */
    bool
    inSecure(Hpa hpa) const
    {
        return memLayout.secureRange().contains(hpa);
    }

  private:
    MemLayout memLayout;
    std::vector<u64> words;
};

} // namespace hev::hv

#endif // HEV_HV_PHYS_MEM_HH
