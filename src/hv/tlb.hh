/**
 * @file
 * Combined-stage TLB model with per-domain tags.
 *
 * RustMonitor flushes the corresponding TLB entries on every enclave
 * entry/exit (paper Sec. 2.1); a stale combined GVA->HPA translation
 * surviving a world switch would be an isolation hole all by itself, so
 * the model keeps the TLB explicit and the tests exercise the flush
 * discipline.
 */

#ifndef HEV_HV_TLB_HH
#define HEV_HV_TLB_HH

#include <functional>
#include <optional>
#include <unordered_map>

#include "hv/pte.hh"
#include "support/types.hh"

namespace hev::hv
{

/**
 * Identifier of a translation domain: the normal VM is domain 0 and each
 * enclave uses its EnclaveId (>= 1).  Equivalent to a VPID/ASID tag.
 */
using DomainId = u32;

/** The normal VM's domain tag. */
constexpr DomainId normalVmDomain = 0;

/** One cached combined translation. */
struct TlbEntry
{
    u64 hpaPage = 0;        //!< translated host-physical page base
    bool writable = false;  //!< combined write permission
    bool operator==(const TlbEntry &) const = default;
};

/** Software model of a tagged, unbounded TLB. */
class Tlb
{
  public:
    /** Look up the cached translation of (domain, va's page). */
    std::optional<TlbEntry> lookup(DomainId domain, u64 va) const;

    /** Insert a combined translation for (domain, va's page). */
    void insert(DomainId domain, u64 va, TlbEntry entry);

    /** Drop all entries tagged with the domain. */
    void flushDomain(DomainId domain);

    /** Drop the single entry for (domain, va's page) — INVLPG. */
    void invalidatePage(DomainId domain, u64 va);

    /** Drop everything. */
    void flushAll();

    /** Number of live entries. */
    u64 size() const { return entries.size(); }

    /** Number of live entries tagged with the domain. */
    u64 countDomain(DomainId domain) const;

    /** Visit every live entry: f(domain, va_page_base, entry). */
    void forEach(const std::function<void(DomainId, u64, const TlbEntry &)>
                     &visit) const;

    u64 hits() const { return hitCount; }
    u64 misses() const { return missCount; }
    u64 flushes() const { return flushCount; }

  private:
    /** Key: domain in the high 32 bits, VPN in the low bits. */
    static u64
    keyOf(DomainId domain, u64 va)
    {
        return (u64(domain) << 52) | (va >> pageShift);
    }

    std::unordered_map<u64, TlbEntry> entries;
    mutable u64 hitCount = 0;
    mutable u64 missCount = 0;
    u64 flushCount = 0;
};

} // namespace hev::hv

#endif // HEV_HV_TLB_HH
