#include "hv/hv_invariants.hh"

#include <map>
#include <sstream>

namespace hev::hv
{

namespace
{

/**
 * Containment-checked recursive walk: visit terminal mappings, refuse
 * to follow intermediate entries that leave the monitor's frame area.
 *
 * @return false iff the walk hit an escaped table frame.
 */
bool
walkContained(const Monitor &mon, const PageTable &pt, Hpa table,
              int level, u64 va_prefix,
              const std::function<void(u64, Pte, int)> &visit)
{
    if (!mon.ptAlloc().inArea(table))
        return false;
    bool contained = true;
    for (u64 index = 0; index < entriesPerTable; ++index) {
        const Pte entry = pt.entryAt(table, index);
        if (!entry.present())
            continue;
        const u64 va =
            va_prefix | (index << (pageShift + 9 * (level - 1)));
        if (level == 1 || entry.huge()) {
            visit(va, entry, level);
        } else {
            contained = walkContained(mon, pt, Hpa(entry.addr()),
                                      level - 1, va, visit) &&
                        contained;
        }
    }
    return contained;
}

void
report(std::vector<std::string> &violations, const std::string &what)
{
    violations.push_back(what);
}

/**
 * Visit every table frame reachable from a root (the root itself and
 * all intermediate tables).  Out-of-area frames are not followed —
 * escapes are walkContained's family to report.
 */
void
forEachTableFrame(const Monitor &mon, const PageTable &pt, Hpa table,
                  int level, const std::function<void(Hpa)> &visit)
{
    if (!mon.ptAlloc().inArea(table))
        return;
    visit(table);
    if (level == 1)
        return;
    for (u64 index = 0; index < entriesPerTable; ++index) {
        const Pte entry = pt.entryAt(table, index);
        if (!entry.present() || entry.huge())
            continue;
        forEachTableFrame(mon, pt, Hpa(entry.addr()), level - 1, visit);
    }
}

} // namespace

std::vector<std::string>
checkMonitorInvariants(const Monitor &mon)
{
    std::vector<std::string> violations;
    PhysMem &mem = const_cast<Monitor &>(mon).mem();
    const MemLayout &layout = mon.config().layout;

    // --- Normal-VM containment: the OS's EPT stays out of the
    // secure region entirely.
    {
        const PageTable ept(mem, nullptr, mon.normalEptRoot());
        const bool contained = walkContained(
            mon, ept, mon.normalEptRoot(), pagingLevels, 0,
            [&](u64 gpa, Pte entry, int level) {
                const u64 span = 1ull << (pageShift + 9 * (level - 1));
                const HpaRange target{Hpa(entry.addr()),
                                      Hpa(entry.addr() + span)};
                if (target.overlaps(layout.secureRange())) {
                    std::ostringstream msg;
                    msg << "normal EPT maps gpa " << std::hex << gpa
                        << " into the secure region";
                    report(violations, msg.str());
                }
            });
        if (!contained)
            report(violations,
                   "normal EPT has table frames outside the frame area");
    }

    // --- Per-enclave families.
    std::map<u64, EnclaveId> epc_claims;
    mon.forEachEnclave([&](const Enclave &enclave) {
        const PageTable gpt(mem, nullptr, enclave.gptRoot);
        const PageTable ept(mem, nullptr, enclave.eptRoot);
        const GvaRange mbuf_range = enclave.mbufGvaRange();
        const HpaRange mbuf_backing = enclave.mbufHpaRange();

        if (mbuf_range.overlaps(enclave.cfg.elrange)) {
            std::ostringstream msg;
            msg << "enclave " << enclave.id
                << ": ELRANGE overlaps its marshalling buffer range";
            report(violations, msg.str());
        }

        // EPT shape: no huge pages, targets restricted.
        const bool ept_contained = walkContained(
            mon, ept, enclave.eptRoot, pagingLevels, 0,
            [&](u64 gpa, Pte entry, int level) {
                if (level != 1 || entry.huge()) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id
                        << ": huge EPT mapping at gpa " << std::hex
                        << gpa;
                    report(violations, msg.str());
                }
            });
        if (!ept_contained) {
            std::ostringstream msg;
            msg << "enclave " << enclave.id
                << ": EPT table frames escape the frame area";
            report(violations, msg.str());
        }

        // GPT shape + composed translation facts.
        const bool gpt_contained = walkContained(
            mon, gpt, enclave.gptRoot, pagingLevels, 0,
            [&](u64 gva, Pte entry, int level) {
                if (level != 1 || entry.huge()) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id
                        << ": huge GPT mapping at gva " << std::hex
                        << gva;
                    report(violations, msg.str());
                }
                const bool in_elrange =
                    enclave.cfg.elrange.contains(Gva(gva));
                const bool in_mbuf =
                    mbuf_range.contains(Gva(gva));
                if (!in_elrange && !in_mbuf) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id << ": gva "
                        << std::hex << gva
                        << " mapped outside ELRANGE and mbuf";
                    report(violations, msg.str());
                    return;
                }

                auto stage2 = ept.query(entry.addr());
                if (!stage2) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id << ": gva "
                        << std::hex << gva
                        << " has no second-stage mapping";
                    report(violations, msg.str());
                    return;
                }
                const Hpa hpa(stage2->physAddr);
                const bool to_epc = layout.epcRange().contains(hpa);

                if (in_elrange != to_epc) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id << ": gva "
                        << std::hex << gva
                        << (in_elrange
                                ? " is ELRANGE but not EPC-backed"
                                : " is EPC-backed outside ELRANGE");
                    report(violations, msg.str());
                }
                if (to_epc) {
                    // EPCM soundness + cross-enclave disjointness.
                    const EpcmEntry &record = mon.epcm().entryFor(hpa);
                    if (record.state == EpcPageState::Free ||
                        record.owner != enclave.id ||
                        record.linAddr != Gva(gva)) {
                        std::ostringstream msg;
                        msg << "enclave " << enclave.id
                            << ": covert EPC mapping at gva "
                            << std::hex << gva;
                        report(violations, msg.str());
                    }
                    auto [it, fresh] = epc_claims.emplace(
                        hpa.pageBase().value, enclave.id);
                    if (!fresh && it->second != enclave.id) {
                        std::ostringstream msg;
                        msg << "enclaves " << it->second << " and "
                            << enclave.id << " share EPC page "
                            << std::hex << hpa.pageBase().value;
                        report(violations, msg.str());
                    }
                } else if (layout.secureRange().contains(hpa)) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id << ": gva "
                        << std::hex << gva
                        << " maps monitor-private memory";
                    report(violations, msg.str());
                } else {
                    // Normal memory: only the own marshalling buffer.
                    const bool backing_ok =
                        mbuf_backing.contains(hpa) && in_mbuf;
                    if (!backing_ok) {
                        std::ostringstream msg;
                        msg << "enclave " << enclave.id << ": gva "
                            << std::hex << gva
                            << " shares normal memory outside its "
                               "marshalling buffer";
                        report(violations, msg.str());
                    }
                }
            });
        if (!gpt_contained) {
            std::ostringstream msg;
            msg << "enclave " << enclave.id
                << ": GPT table frames escape the frame area "
                   "(shallow-copy-style state)";
            report(violations, msg.str());
        }

        // Sealed pages (EPCM invariant family extended to non-resident
        // pages): an evicted record must name an ELRANGE page that is
        // genuinely non-resident — no stage-1 mapping and no EPCM entry
        // — and carry a version the counter has actually issued.
        for (const auto &[gva, version] : enclave.evictedPages) {
            if (!enclave.cfg.elrange.contains(Gva(gva))) {
                std::ostringstream msg;
                msg << "enclave " << enclave.id << ": evicted gva "
                    << std::hex << gva << " outside ELRANGE";
                report(violations, msg.str());
            }
            if (gpt.query(gva)) {
                std::ostringstream msg;
                msg << "enclave " << enclave.id << ": evicted gva "
                    << std::hex << gva << " is still GPT-mapped";
                report(violations, msg.str());
            }
            if (version == 0 || version >= enclave.nextSealVersion) {
                std::ostringstream msg;
                msg << "enclave " << enclave.id << ": evicted gva "
                    << std::hex << gva << " has version " << std::dec
                    << version << " outside [1, "
                    << enclave.nextSealVersion << ")";
                report(violations, msg.str());
            }
            const HpaRange epc = layout.epcRange();
            for (u64 page = epc.start.value; page < epc.end.value;
                 page += pageSize) {
                const EpcmEntry &record = mon.epcm().entryFor(Hpa(page));
                if (record.state != EpcPageState::Free &&
                    record.owner == enclave.id &&
                    record.linAddr == Gva(gva)) {
                    std::ostringstream msg;
                    msg << "enclave " << enclave.id << ": evicted gva "
                        << std::hex << gva
                        << " still has a live EPCM entry";
                    report(violations, msg.str());
                }
            }
        }
    });

    // --- Allocator consistency: every table frame reachable from a
    // live root must still be marked allocated.  A reachable-but-free
    // frame means the next alloc() will zero a table under a live
    // mapping (the use-after-free the frameDoubleFree planted bug
    // manufactures).
    {
        const auto audit = [&](const std::string &what, Hpa root) {
            const PageTable pt(mem, nullptr, root);
            forEachTableFrame(
                mon, pt, root, pagingLevels, [&](Hpa frame) {
                    if (!mon.ptAlloc().allocated(frame)) {
                        std::ostringstream msg;
                        msg << what << ": table frame " << std::hex
                            << frame.value
                            << " is reachable but not allocated";
                        report(violations, msg.str());
                    }
                });
        };
        audit("normal EPT", mon.normalEptRoot());
        mon.forEachEnclave([&](const Enclave &enclave) {
            std::ostringstream who;
            who << "enclave " << enclave.id;
            audit(who.str() + " GPT", enclave.gptRoot);
            audit(who.str() + " EPT", enclave.eptRoot);
        });
    }

    return violations;
}

namespace
{

/** FNV-1a over a few words, one hash per digested entry. */
u64
fnvWords(std::initializer_list<u64> words)
{
    constexpr u64 fnvOffset = 0xcbf29ce484222325ull;
    constexpr u64 fnvPrime = 0x100000001b3ull;
    u64 hash = fnvOffset;
    for (u64 word : words) {
        for (u32 byte = 0; byte < 8; ++byte) {
            hash ^= (word >> (byte * 8)) & 0xff;
            hash *= fnvPrime;
        }
    }
    return hash;
}

} // namespace

u64
epcmDigest(const Epcm &epcm)
{
    // Summing per-entry hashes keeps the digest independent of the
    // visit order, so it is comparable across container reshuffles.
    u64 digest = 0;
    epcm.forEachUsed([&](Hpa page, const EpcmEntry &entry) {
        digest += fnvWords({page.value, u64(entry.state),
                            u64(entry.owner), entry.linAddr.value});
    });
    return digest;
}

u64
tlbDigest(const Tlb &tlb)
{
    u64 digest = 0;
    tlb.forEach([&](DomainId domain, u64 va_page, const TlbEntry &entry) {
        digest += fnvWords({u64(domain), va_page, entry.hpaPage,
                            u64(entry.writable)});
    });
    return digest;
}

std::string
describeMonitorViolations(const std::vector<std::string> &violations)
{
    std::ostringstream out;
    for (const std::string &violation : violations)
        out << "  " << violation << "\n";
    return out.str();
}

} // namespace hev::hv
