/**
 * @file
 * The Sec. 5.2 invariant families, checked over the CONCRETE monitor.
 *
 * src/sec/invariants.hh states the invariants over the abstract proof
 * state; this checker walks the real page-table bits in simulated RAM
 * instead — runtime verification of the monitor the proofs are about.
 * Families:
 *  - normal-VM containment: the primary OS's EPT never maps into the
 *    reserved secure region;
 *  - page-table containment: every table frame of a monitor-managed
 *    tree lies in the monitor's frame area;
 *  - ELRANGE isolation: EPC pages are never shared between enclaves;
 *  - EPCM soundness: every enclave mapping into the EPC is recorded
 *    with the right owner and linear address;
 *  - marshalling-buffer exclusivity: the only normal-memory pages an
 *    enclave can reach are its own marshalling buffer;
 *  - enclave shape: EPC ⇔ ELRANGE, no huge pages, mbuf disjoint from
 *    ELRANGE.
 */

#ifndef HEV_HV_HV_INVARIANTS_HH
#define HEV_HV_HV_INVARIANTS_HH

#include <string>
#include <vector>

#include "hv/monitor.hh"

namespace hev::hv
{

/** Check every family; empty result = all hold. */
std::vector<std::string> checkMonitorInvariants(const Monitor &mon);

/**
 * Order-independent digest of the EPCM contents (per-entry FNV-1a
 * hashes combined commutatively), for forensics bundles: two states
 * digest equal iff their used pages carry the same metadata.
 */
u64 epcmDigest(const Epcm &epcm);

/** Order-independent digest of a TLB's live entries (same scheme). */
u64 tlbDigest(const Tlb &tlb);

/** Render violations for diagnostics. */
std::string describeMonitorViolations(
    const std::vector<std::string> &violations);

} // namespace hev::hv

#endif // HEV_HV_HV_INVARIANTS_HH
