#include "hv/machine.hh"

#include "support/logging.hh"

namespace hev::hv
{

Machine::Machine(const MonitorConfig &config)
    : monCfg(config), mon(config), primaryOs(mon)
{
    // Build the kernel's identity GPT over all of normal memory so the
    // primary OS can run immediately.
    auto root = primaryOs.createPageTable();
    if (!root)
        fatal("cannot allocate the kernel GPT root");
    kernelGpt = *root;
    const u64 normal_bytes = config.layout.normalRange().size();
    for (u64 addr = 0; addr < normal_bytes; addr += pageSize) {
        if (auto st = primaryOs.gptMap(kernelGpt, addr, Gpa(addr),
                                       PteFlags::userRw()); !st)
            fatal("kernel GPT identity map failed: %s",
                  hvErrorName(st.error()));
    }

    cpu.mode = CpuMode::GuestNormal;
    cpu.domain = normalVmDomain;
    cpu.gptRoot = Hpa(kernelGpt.value);
    cpu.eptRoot = mon.normalEptRoot();
}

Expected<App>
Machine::createApp(u64 va_base, u64 pages)
{
    if (va_base % pageSize != 0)
        return HvError::NotAligned;
    auto root = primaryOs.createPageTable();
    if (!root)
        return root.error();

    App app;
    app.gptRoot = *root;
    app.range = {Gva(va_base), Gva(va_base + pages * pageSize)};
    for (u64 i = 0; i < pages; ++i) {
        auto page = primaryOs.allocPage();
        if (!page)
            return page.error();
        if (auto st = primaryOs.gptMap(*root, va_base + i * pageSize,
                                       *page, PteFlags::userRw()); !st)
            return st.error();
        app.backing.push_back(*page);
    }
    return app;
}

Status
Machine::switchToApp(const App &app)
{
    return mon.guestSetGptRoot(cpu, Hpa(app.gptRoot.value));
}

Status
Machine::switchToKernel()
{
    return mon.guestSetGptRoot(cpu, Hpa(kernelGpt.value));
}

Expected<EnclaveHandle>
Machine::setupEnclave(u64 elrange_base, u64 pages, u64 mbuf_pages,
                      u64 fill)
{
    // Carve the marshalling buffer backing out of normal memory.
    std::vector<Gpa> mbuf_backing;
    for (u64 i = 0; i < mbuf_pages; ++i) {
        auto page = primaryOs.allocPage();
        if (!page)
            return page.error();
        mbuf_backing.push_back(*page);
    }
    if (mbuf_backing.empty())
        return HvError::InvalidParam;
    // The monitor requires a contiguous backing; the guest pool is
    // first-fit so consecutive allocations are contiguous on a fresh
    // machine, but verify rather than assume.
    for (u64 i = 1; i < mbuf_backing.size(); ++i) {
        if (mbuf_backing[i].value != mbuf_backing[0].value + i * pageSize)
            return HvError::InvalidParam;
    }

    EnclaveConfig config;
    config.elrange = {Gva(elrange_base),
                      Gva(elrange_base + (pages + 1) * pageSize)};
    config.mbufGva = Gva(elrange_base + (pages + 64) * pageSize);
    config.mbufPages = mbuf_pages;
    config.mbufBacking = mbuf_backing[0];
    config.creatorGptRoot = cpu.gptRoot;

    auto id = mon.hcEnclaveInit(config);
    if (!id)
        return id.error();

    // Stage initial contents in normal memory, then add pages.
    auto stage = primaryOs.allocPage();
    if (!stage)
        return stage.error();
    for (u64 i = 0; i < pages; ++i) {
        for (u64 w = 0; w < pageSize / sizeof(u64); ++w) {
            if (auto st = primaryOs.physWrite(
                    *stage + w * sizeof(u64), fill + i * 1000 + w); !st)
                return st.error();
        }
        if (auto st = mon.hcEnclaveAddPage(*id,
                                           Gva(elrange_base + i * pageSize),
                                           *stage, AddPageKind::Reg); !st)
            return st.error();
    }
    // One TCS page; its first word is the entry point.
    (void)primaryOs.zeroPage(*stage);
    if (auto st = primaryOs.physWrite(*stage, elrange_base); !st)
        return st.error();
    if (auto st = mon.hcEnclaveAddPage(
            *id, Gva(elrange_base + pages * pageSize), *stage,
            AddPageKind::Tcs); !st)
        return st.error();
    (void)primaryOs.freePage(*stage);

    if (auto st = mon.hcEnclaveInitFinish(*id); !st)
        return st.error();

    EnclaveHandle handle;
    handle.id = *id;
    handle.elrange = config.elrange;
    handle.mbufGva = config.mbufGva;
    handle.mbufBacking = config.mbufBacking;
    handle.mbufPages = mbuf_pages;
    return handle;
}

Expected<u64>
Machine::memLoad(Gva va)
{
    if (va.value % sizeof(u64) != 0)
        return HvError::NotAligned;
    auto hpa = mon.translate(cpu, va, false);
    if (!hpa)
        return hpa.error();
    return mon.mem().read(*hpa);
}

Status
Machine::memStore(Gva va, u64 value)
{
    if (va.value % sizeof(u64) != 0)
        return HvError::NotAligned;
    auto hpa = mon.translate(cpu, va, true);
    if (!hpa)
        return hpa.error();
    mon.mem().write(*hpa, value);
    return okStatus();
}

Status
Machine::mbufWrite(const EnclaveHandle &enclave, u64 word_index, u64 value)
{
    if (word_index >= enclave.mbufPages * pageSize / sizeof(u64))
        return HvError::InvalidParam;
    return primaryOs.physWrite(
        enclave.mbufBacking + word_index * sizeof(u64), value);
}

Expected<u64>
Machine::mbufRead(const EnclaveHandle &enclave, u64 word_index) const
{
    if (word_index >= enclave.mbufPages * pageSize / sizeof(u64))
        return HvError::InvalidParam;
    return primaryOs.physRead(enclave.mbufBacking +
                              word_index * sizeof(u64));
}

} // namespace hev::hv
