#include "hv/monitor.hh"

#include <algorithm>
#include <cstring>

#include "obs/timer.hh"
#include "support/logging.hh"

namespace hev::hv
{

namespace
{

/** FNV-1a step used by the measurement stub. */
u64
measureStep(u64 acc, u64 word)
{
    acc ^= word;
    return acc * 0x100000001b3ull;
}

/**
 * Fold one page's address and initial contents into the measurement.
 *
 * Four interleaved FNV lanes instead of one serial chain: the 512
 * dependent multiplies, not memory bandwidth, bound enclave launch
 * throughput, and splitting the words across independent lanes that
 * re-join the chain in fixed order keeps every word feeding exactly
 * one multiply chain (any bit flip still changes the result) while
 * letting the CPU overlap the multiplies.  Both the single add_page
 * call and the batched path share this helper, so batch ≡ fold holds
 * over the measurement by construction.
 */
u64
measurePage(u64 acc, u64 page_gva, const u64 *words)
{
    acc = measureStep(acc, page_gva);
    u64 lanes[4] = {measureStep(acc, 0), measureStep(acc, 1),
                    measureStep(acc, 2), measureStep(acc, 3)};
    static_assert(pageSize / sizeof(u64) % 4 == 0);
    for (u64 w = 0; w < pageSize / sizeof(u64); w += 4) {
        lanes[0] = measureStep(lanes[0], words[w]);
        lanes[1] = measureStep(lanes[1], words[w + 1]);
        lanes[2] = measureStep(lanes[2], words[w + 2]);
        lanes[3] = measureStep(lanes[3], words[w + 3]);
    }
    for (const u64 lane : lanes)
        acc = measureStep(acc, lane);
    return acc;
}

const obs::Counter statHypercalls("hv.hypercalls");
const obs::Counter statRejected("hv.hypercalls_rejected");
const obs::Counter statEnclavesCreated("hv.enclaves_created");
const obs::Counter statPagesAdded("hv.pages_added");
const obs::Counter statEnters("hv.enclave_enters");
const obs::Counter statExits("hv.enclave_exits");
const obs::Counter statPagesEvicted("hv.pages_evicted");
const obs::Counter statPagesReloaded("hv.pages_reloaded");
const obs::Counter statTranslations("hv.translations");
const obs::Counter statImagesSnapshotted("hv.images_snapshotted");
const obs::Counter statImagesRestored("hv.images_restored");
const obs::Histogram statHypercallNs("hv.hypercall_ns");
const obs::Gauge statLiveEnclaves("hv.live_enclaves");

/**
 * Accounting scope of one hypercall: counts it, emits the
 * HypercallEnter/Exit event pair (principal + result code), times it
 * into hv.hypercall_ns, and prefixes every log line emitted inside
 * with the hypercall name and acting principal.  Failure returns at
 * the call sites route through fail() so the result code and the
 * rejected counters stay in sync by construction.
 */
class HypercallScope
{
  public:
    HypercallScope(MonitorStats &stat_counters, const char *hc_name,
                   u64 hc_principal)
        : stats(stat_counters), name(hc_name), principal(hc_principal),
          logCtx("hc=%s principal=%llu", hc_name,
                 (unsigned long long)hc_principal),
          timer(statHypercallNs, hc_name)
    {
        ++stats.hypercalls;
        statHypercalls.inc();
        obs::traceEvent(obs::EventType::HypercallEnter, name, principal);
    }

    ~HypercallScope()
    {
        obs::traceEvent(obs::EventType::HypercallExit, name, principal,
                        rc);
    }

    /** Record a rejected request and pass the error through. */
    HvError
    fail(HvError error)
    {
        ++stats.rejectedRequests;
        statRejected.inc();
        rc = u64(error);
        return error;
    }

  private:
    MonitorStats &stats;
    const char *name;
    u64 principal;
    u64 rc = 0;
    ScopedLogContext logCtx;
    obs::ScopedTimer timer;
};

/**
 * Sealing MAC over everything the OS could usefully tamper with.  A
 * keyed FNV-1a stands in for AES-GCM: the model needs unforgeability
 * relative to the checkers (which never try to forge), not
 * cryptographic strength.
 */
constexpr u64 sealKeyConst = 0x5ea1'ab1e'0ff1'ce42ull;

u64
sealMac(const SealedBlob &blob)
{
    u64 acc = sealKeyConst;
    acc = measureStep(acc, u64(blob.owner));
    acc = measureStep(acc, blob.gva.value);
    acc = measureStep(acc, u64(blob.kind));
    acc = measureStep(acc, blob.gpaSlot.value);
    acc = measureStep(acc, blob.version);
    for (const u64 word : blob.words)
        acc = measureStep(acc, word);
    return acc;
}

/** FNV digest over one page's words (image per-page digests). */
u64
pageWordsDigest(const u64 *words)
{
    u64 acc = 0xcbf29ce484222325ull;
    for (u64 w = 0; w < pageSize / sizeof(u64); ++w)
        acc = measureStep(acc, words[w]);
    return acc;
}

/**
 * Stamp the accessed+dirty bits a hardware walker would leave behind
 * after a successful enclave write: the GPT terminal entry (what the
 * migration engine's dirty scan reads) and the EPT entry of the slot.
 */
void
stampEnclaveDirty(PhysMem &mem, Hpa gpt_root, Hpa ept_root, Gva va)
{
    PageTable gpt(mem, nullptr, gpt_root);
    (void)gpt.stampAccessedDirty(va.value, true);
    if (auto stage1 = gpt.query(va.value)) {
        PageTable ept(mem, nullptr, ept_root);
        (void)ept.stampAccessedDirty(stage1->physAddr, true);
    }
}

} // namespace

u64
sealedBlobMac(const SealedBlob &blob)
{
    return sealMac(blob);
}

u64
enclavePageDigest(const u64 *words)
{
    return pageWordsDigest(words);
}

u64
enclaveImageMac(const EnclaveImage &image)
{
    u64 acc = sealKeyConst ^ 0x1'0a6e'0000ull;
    acc = measureStep(acc, u64(image.sourceId));
    acc = measureStep(acc, image.cfg.elrange.start.value);
    acc = measureStep(acc, image.cfg.elrange.end.value);
    acc = measureStep(acc, image.cfg.mbufGva.value);
    acc = measureStep(acc, image.cfg.mbufPages);
    acc = measureStep(acc, image.cfg.mbufBacking.value);
    acc = measureStep(acc, image.measurement);
    acc = measureStep(acc, image.addedPages);
    acc = measureStep(acc, image.tcsPages);
    acc = measureStep(acc, image.entryPoint);
    acc = measureStep(acc, image.versionBase);
    for (const ImagePageMeta &meta : image.pageMeta) {
        acc = measureStep(acc, meta.gva.value);
        acc = measureStep(acc, u64(meta.kind));
        acc = measureStep(acc, meta.version);
        acc = measureStep(acc, meta.digest);
    }
    for (const SealedBlob &blob : image.pages)
        acc = measureStep(acc, blob.mac);
    return acc;
}

const char *
enclaveStateName(EnclaveState state)
{
    switch (state) {
      case EnclaveState::Adding: return "Adding";
      case EnclaveState::Initialized: return "Initialized";
      case EnclaveState::Dead: return "Dead";
    }
    return "Unknown";
}

Monitor::Monitor(const MonitorConfig &config)
    : cfg(config), physMem(config.layout),
      frameAlloc(physMem, config.layout.ptAreaRange()),
      epcMap(config.layout.epcRange())
{
    auto ept = PageTable::create(physMem, frameAlloc);
    if (!ept)
        fatal("cannot allocate the normal VM's EPT root");
    normalEpt = std::make_unique<PageTable>(*ept);

    // Identity-map normal memory (and only normal memory) for the
    // primary OS.  The secure region is deliberately absent: this is
    // the spatial-isolation linchpin.
    const HpaRange normal = cfg.layout.normalRange();
    const u64 hugeSpan = 2 * 1024 * 1024;
    u64 addr = 0;
    while (addr < normal.size()) {
        const u64 remaining = normal.size() - addr;
        if (cfg.hugeNormalEpt && addr % hugeSpan == 0 &&
            remaining >= hugeSpan) {
            if (auto st = normalEpt->mapHuge(addr, addr, PteFlags::userRw(),
                                             2); !st)
                fatal("normal EPT huge map failed: %s",
                      hvErrorName(st.error()));
            addr += hugeSpan;
        } else {
            if (auto st = normalEpt->map(addr, addr, PteFlags::userRw());
                !st)
                fatal("normal EPT map failed: %s", hvErrorName(st.error()));
            addr += pageSize;
        }
    }
}

const Enclave *
Monitor::findEnclave(EnclaveId id) const
{
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return nullptr;
    return &it->second;
}

Enclave *
Monitor::findEnclaveMutable(EnclaveId id)
{
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return nullptr;
    return &it->second;
}

u64
Monitor::liveEnclaves() const
{
    u64 count = 0;
    for (const auto &[id, enc] : enclaves) {
        if (enc.state != EnclaveState::Dead)
            ++count;
    }
    return count;
}

void
Monitor::forEachEnclave(
    const std::function<void(const Enclave &)> &visit) const
{
    for (const auto &[id, enc] : enclaves) {
        if (enc.state != EnclaveState::Dead)
            visit(enc);
    }
}

Expected<EnclaveId>
Monitor::validateInitConfig(const EnclaveConfig &config)
{
    const GvaRange elrange = config.elrange;
    if (elrange.empty() || !elrange.start.pageAligned() ||
        !elrange.end.pageAligned())
        return HvError::InvalidParam;
    if (config.mbufPages == 0 || !config.mbufGva.pageAligned())
        return HvError::InvalidParam;
    if (config.mbufBacking.value % pageSize != 0)
        return HvError::NotAligned;

    const GvaRange mbuf_gva = {config.mbufGva,
                               config.mbufGva +
                                   config.mbufPages * pageSize};
    // Enclave invariant (paper Sec. 5.2): ELRANGE and the marshalling
    // buffer range must be disjoint.
    if (mbuf_gva.overlaps(elrange))
        return HvError::IsolationViolation;

    // The marshalling buffer is carved out of normal memory; a backing
    // inside the secure region would hand the enclave (or the monitor's
    // copy loop) a window into another enclave's pages.
    const HpaRange backing = {Hpa(config.mbufBacking.value),
                              Hpa(config.mbufBacking.value +
                                  config.mbufPages * pageSize)};
    if (!cfg.layout.normalRange().containsRange(backing))
        return HvError::IsolationViolation;

    return nextEnclaveId;
}

Status
Monitor::mapMarshallingBuffer(Enclave &enclave)
{
    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);
    for (u64 i = 0; i < enclave.cfg.mbufPages; ++i) {
        const u64 off = i * pageSize;
        const Gva gva = enclave.cfg.mbufGva + off;
        const u64 gpa = enclaveMbufGpaBase + off;
        const Hpa hpa = Hpa(enclave.cfg.mbufBacking.value + off);
        if (auto st = gpt.map(gva.value, gpa, PteFlags::userRw()); !st)
            return st.error();
        if (auto st = ept.map(gpa, hpa.value, PteFlags::userRw()); !st)
            return st.error();
    }
    return okStatus();
}

Expected<EnclaveId>
Monitor::hcEnclaveInit(const EnclaveConfig &config)
{
    HypercallScope scope(statCounters, "hc_enclave_init", nextEnclaveId);
    auto id = validateInitConfig(config);
    if (!id)
        return scope.fail(id.error());

    auto gpt = PageTable::create(physMem, frameAlloc);
    if (!gpt)
        return gpt.error();
    auto ept = PageTable::create(physMem, frameAlloc);
    if (!ept) {
        (void)frameAlloc.free(gpt->root());
        return ept.error();
    }

    Enclave enclave;
    enclave.id = *id;
    enclave.state = EnclaveState::Adding;
    enclave.cfg = config;
    enclave.gptRoot = gpt->root();
    enclave.eptRoot = ept->root();

    if (cfg.shallowCopyBug) {
        // Historical 2022 bug (paper Sec. 4.1): seed the enclave's GPT
        // by shallow-copying the creator's level-4 entries over the
        // ELRANGE.  The copied entries keep pointing at level-3 tables
        // in guest-controlled normal memory.
        PageTable creator(physMem, nullptr, config.creatorGptRoot);
        (void)gpt->shallowCopyL4From(creator, config.elrange.start.value,
                                     config.elrange.end.value);
    }

    if (auto st = mapMarshallingBuffer(enclave); !st) {
        (void)gpt->destroy();
        (void)ept->destroy();
        return scope.fail(st.error());
    }

    enclaves.emplace(*id, enclave);
    ++nextEnclaveId;
    ++statCounters.enclavesCreated;
    statEnclavesCreated.inc();
    statLiveEnclaves.set(i64(liveEnclaves()));
    inform("created (elrange [%#llx, %#llx))",
           (unsigned long long)config.elrange.start.value,
           (unsigned long long)config.elrange.end.value);
    return *id;
}

Status
Monitor::hcEnclaveAddPage(EnclaveId id, Gva page_gva, Gpa src,
                          AddPageKind kind, FrameSource *frames)
{
    HypercallScope scope(statCounters, "hc_enclave_add_page", id);
    FrameSource &tableFrames = frames ? *frames : frameAlloc;
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Adding)
        return scope.fail(HvError::BadEnclaveState);
    if (!page_gva.pageAligned() || src.value % pageSize != 0)
        return scope.fail(HvError::NotAligned);
    // Enclave invariant: EPC pages appear exactly at ELRANGE addresses.
    const bool gva_in_elrange =
        cfg.planted.elrangeOffByOne
            ? page_gva.value >= enclave.cfg.elrange.start.value &&
                  page_gva.value <= enclave.cfg.elrange.end.value
            : enclave.cfg.elrange.contains(page_gva);
    if (!gva_in_elrange)
        return scope.fail(HvError::IsolationViolation);
    const HpaRange src_range = {Hpa(src.value),
                                Hpa(src.value + pageSize)};
    if (!cfg.layout.normalRange().containsRange(src_range))
        return scope.fail(HvError::IsolationViolation);

    PageTable gpt(physMem, &tableFrames, enclave.gptRoot);
    PageTable ept(physMem, &tableFrames, enclave.eptRoot);

    const u64 gpa = enclaveEpcGpaBase + enclave.addedPages * pageSize;
    if (auto st = gpt.map(page_gva.value, gpa, PteFlags::userRw()); !st)
        return scope.fail(st.error());

    auto epc_page = epcMap.allocPage(
        id, cfg.planted.skipEpcmOwnerCheck ? Gva(0) : page_gva,
        kind == AddPageKind::Tcs ? EpcPageState::Tcs : EpcPageState::Reg);
    if (!epc_page) {
        (void)gpt.unmap(page_gva.value);
        return scope.fail(epc_page.error());
    }

    const PteFlags epc_flags = cfg.planted.wrongPermMask
                                   ? PteFlags::userRo()
                                   : PteFlags::userRw();
    if (auto st = ept.map(gpa, epc_page->value, epc_flags); !st) {
        (void)gpt.unmap(page_gva.value);
        (void)epcMap.freePage(*epc_page);
        return scope.fail(st.error());
    }

    // Copy the initial contents out of normal memory and fold them into
    // the measurement.
    physMem.copyPage(*epc_page, Hpa(src.value));
    enclave.measurement = measurePage(enclave.measurement,
                                      page_gva.value,
                                      physMem.pageWords(*epc_page));

    if (kind == AddPageKind::Tcs) {
        if (enclave.tcsPages == 0)
            enclave.entryPoint = physMem.read(*epc_page);
        ++enclave.tcsPages;
    }
    if (cfg.planted.frameDoubleFree) {
        // Planted bug: hand the leaf GPT table frame back to the
        // allocator while the tree still points at it.  The next table
        // allocation zeroes it in place under the live mapping.
        Hpa table = enclave.gptRoot;
        for (int level = pagingLevels; level >= 2; --level) {
            const Pte entry = gpt.entryAt(table, page_gva.tableIndex(level));
            if (!entry.present() || entry.huge())
                break;
            table = Hpa(entry.addr());
            if (level == 2)
                frameAlloc.debugForceFree(table);
        }
    }

    ++enclave.addedPages;
    ++statCounters.pagesAdded;
    statPagesAdded.inc();
    return okStatus();
}

Status
Monitor::hcEnclaveAddPagesBatch(EnclaveId id,
                                const std::vector<AddPageRequest> &reqs,
                                FrameSource *frames)
{
    HypercallScope scope(statCounters, "hc_enclave_add_pages_batch", id);
    if (reqs.empty())
        return okStatus(); // fold over nothing is the identity
    FrameSource &tableFrames = frames ? *frames : frameAlloc;
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    // add_page never changes the lifecycle state, so checking it once
    // is the same check the fold would repeat per element.
    if (enclave.state != EnclaveState::Adding)
        return scope.fail(HvError::BadEnclaveState);

    PageTable gpt(physMem, &tableFrames, enclave.gptRoot);
    PageTable ept(physMem, &tableFrames, enclave.eptRoot);

    // Snapshot of everything an element mutates besides the tables,
    // EPCM and page contents, for the all-or-nothing rollback.
    const u64 saved_measurement = enclave.measurement;
    const u64 saved_added = enclave.addedPages;
    const u64 saved_tcs = enclave.tcsPages;
    const u64 saved_entry = enclave.entryPoint;

    struct Applied
    {
        u64 gva;
        u64 gpa;
        Hpa epcPage;
    };
    std::vector<Applied> applied;
    applied.reserve(reqs.size());

    // One walk per 2 MiB run and one EPCM scan front amortized over the
    // whole batch; both are observationally identical to the per-call
    // walk/scan because nothing is freed between elements.
    PageTable::LeafCursor gpt_cursor, ept_cursor;
    u64 epc_hint = 0;

    const PteFlags epc_flags = cfg.planted.wrongPermMask
                                   ? PteFlags::userRo()
                                   : PteFlags::userRw();

    HvError batch_error = HvError::None;
    for (const AddPageRequest &req : reqs) {
        // Per-element validation in fold order, so the error reported
        // is exactly the one the failing single call would raise.
        if (!req.gva.pageAligned() || req.src.value % pageSize != 0) {
            batch_error = HvError::NotAligned;
            break;
        }
        const bool gva_in_elrange =
            cfg.planted.elrangeOffByOne
                ? req.gva.value >= enclave.cfg.elrange.start.value &&
                      req.gva.value <= enclave.cfg.elrange.end.value
                : enclave.cfg.elrange.contains(req.gva);
        if (!gva_in_elrange) {
            batch_error = HvError::IsolationViolation;
            break;
        }
        const HpaRange src_range = {Hpa(req.src.value),
                                    Hpa(req.src.value + pageSize)};
        if (!cfg.layout.normalRange().containsRange(src_range)) {
            batch_error = HvError::IsolationViolation;
            break;
        }

        const u64 gpa = enclaveEpcGpaBase + enclave.addedPages * pageSize;
        if (auto st = gpt.map(req.gva.value, gpa, PteFlags::userRw(),
                              gpt_cursor); !st) {
            batch_error = st.error();
            break;
        }
        auto epc_page = epcMap.allocPage(
            id, cfg.planted.skipEpcmOwnerCheck ? Gva(0) : req.gva,
            req.kind == AddPageKind::Tcs ? EpcPageState::Tcs
                                         : EpcPageState::Reg,
            epc_hint);
        if (!epc_page) {
            (void)gpt.unmap(req.gva.value);
            batch_error = epc_page.error();
            break;
        }
        if (auto st = ept.map(gpa, epc_page->value, epc_flags,
                              ept_cursor); !st) {
            (void)gpt.unmap(req.gva.value);
            (void)epcMap.freePage(*epc_page);
            batch_error = st.error();
            break;
        }

        // Bulk copy + the shared measurement fold over raw page words:
        // bit-identical to the single call's measurePage by sharing it.
        const u64 *src_words = physMem.pageWords(Hpa(req.src.value));
        u64 *dst_words = physMem.pageWordsMut(*epc_page);
        std::memcpy(dst_words, src_words, pageSize);
        enclave.measurement = measurePage(enclave.measurement,
                                          req.gva.value, dst_words);

        if (req.kind == AddPageKind::Tcs) {
            if (enclave.tcsPages == 0)
                enclave.entryPoint = dst_words[0];
            ++enclave.tcsPages;
        }
        if (cfg.planted.frameDoubleFree) {
            Hpa table = enclave.gptRoot;
            for (int level = pagingLevels; level >= 2; --level) {
                const Pte entry =
                    gpt.entryAt(table, req.gva.tableIndex(level));
                if (!entry.present() || entry.huge())
                    break;
                table = Hpa(entry.addr());
                if (level == 2)
                    frameAlloc.debugForceFree(table);
            }
        }
        ++enclave.addedPages;
        applied.push_back({req.gva.value, gpa, *epc_page});
    }

    if (batch_error == HvError::None) {
        statCounters.pagesAdded += applied.size();
        for (u64 i = 0; i < applied.size(); ++i)
            statPagesAdded.inc();
        return okStatus();
    }

    // All-or-nothing: unwind every applied element in reverse, putting
    // the state back exactly where the batch found it (intermediate
    // table frames stay linked into the trees, as after a failed
    // single call).
    for (auto rit = applied.rbegin(); rit != applied.rend(); ++rit) {
        (void)gpt.unmap(rit->gva);
        (void)ept.unmap(rit->gpa);
        scrubPage(rit->epcPage);
        (void)epcMap.freePage(rit->epcPage);
    }
    enclave.measurement = saved_measurement;
    enclave.addedPages = saved_added;
    enclave.tcsPages = saved_tcs;
    enclave.entryPoint = saved_entry;
    return scope.fail(batch_error);
}

Status
Monitor::hcEnclaveInitFinish(EnclaveId id)
{
    HypercallScope scope(statCounters, "hc_enclave_init_finish", id);
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Adding)
        return scope.fail(HvError::BadEnclaveState);
    if (enclave.tcsPages == 0)
        return scope.fail(HvError::InvalidParam);
    enclave.measurement = measureStep(enclave.measurement, 0xE1417ull);
    enclave.state = EnclaveState::Initialized;
    inform("initialized (%llu pages, %llu tcs)",
           (unsigned long long)enclave.addedPages,
           (unsigned long long)enclave.tcsPages);
    return okStatus();
}

Status
Monitor::hcEnclaveEnter(EnclaveId id, VCpu &vcpu)
{
    HypercallScope scope(statCounters, "hc_enclave_enter", id);
    if (vcpu.mode != CpuMode::GuestNormal)
        return scope.fail(HvError::BadEnclaveState);
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Initialized)
        return scope.fail(HvError::BadEnclaveState);
    // The saved contexts live in the Enclave record, so the single-vCPU
    // monitor admits one resident vCPU at a time; a second entry would
    // clobber them.  (The SMP monitor saves contexts per vCPU and
    // admits up to tcsPages — see src/smp/smp_monitor.cc.)
    if (enclave.activeVcpus > 0)
        return scope.fail(HvError::BadEnclaveState);
    ++enclave.activeVcpus;

    enclave.savedAppRegs = vcpu.regs;
    enclave.savedAppGptRoot = vcpu.gptRoot;

    if (enclave.hasSavedEnclaveRegs) {
        vcpu.regs = enclave.savedEnclaveRegs;
    } else {
        // First entry: scrub the register file so nothing leaks in, and
        // start at the TCS entry point.
        vcpu.regs = RegFile{};
        vcpu.regs.rip = enclave.entryPoint;
    }
    vcpu.mode = CpuMode::GuestEnclave;
    vcpu.currentEnclave = id;
    vcpu.domain = id;
    vcpu.gptRoot = enclave.gptRoot;
    vcpu.eptRoot = enclave.eptRoot;
    tlbModel.flushDomain(id);
    ++statCounters.enters;
    statEnters.inc();
    return okStatus();
}

Status
Monitor::hcEnclaveExit(VCpu &vcpu)
{
    HypercallScope scope(statCounters, "hc_enclave_exit",
                         vcpu.currentEnclave);
    if (vcpu.mode != CpuMode::GuestEnclave)
        return scope.fail(HvError::BadEnclaveState);
    auto it = enclaves.find(vcpu.currentEnclave);
    if (it == enclaves.end())
        panic("vCPU inside unknown enclave %u", vcpu.currentEnclave);
    Enclave &enclave = it->second;

    enclave.savedEnclaveRegs = vcpu.regs;
    enclave.hasSavedEnclaveRegs = true;
    if (enclave.activeVcpus > 0)
        --enclave.activeVcpus;

    // Restore the application context; scrub what the enclave left in
    // the register file by overwriting all of it.
    vcpu.regs = enclave.savedAppRegs;
    vcpu.mode = CpuMode::GuestNormal;
    vcpu.currentEnclave = invalidEnclave;
    vcpu.domain = normalVmDomain;
    vcpu.gptRoot = enclave.savedAppGptRoot;
    vcpu.eptRoot = normalEpt->root();
    tlbModel.flushDomain(enclave.id);
    ++statCounters.exits;
    statExits.inc();
    return okStatus();
}

Status
Monitor::hcEnclaveRemove(EnclaveId id)
{
    HypercallScope scope(statCounters, "hc_enclave_remove", id);
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    // Tearing down an enclave a vCPU is executing in would scrub the
    // pages under its feet: reject until every resident vCPU exits.
    if (enclave.activeVcpus > 0)
        return scope.fail(HvError::BadEnclaveState);

    // Scrub and free every EPC page the enclave owns.
    std::vector<Hpa> owned;
    epcMap.forEachUsed([&](Hpa page, const EpcmEntry &entry) {
        if (entry.owner == id)
            owned.push_back(page);
    });
    for (Hpa page : owned) {
        scrubPage(page);
        (void)epcMap.freePage(page);
    }

    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);
    (void)gpt.destroy();
    (void)ept.destroy();

    tlbModel.flushDomain(id);
    enclave.state = EnclaveState::Dead;
    statLiveEnclaves.set(i64(liveEnclaves()));
    inform("removed (%zu epc pages scrubbed)", owned.size());
    return okStatus();
}

Expected<EnclaveReport>
Monitor::hcEnclaveReport(const VCpu &vcpu)
{
    HypercallScope scope(statCounters, "hc_enclave_report",
                         vcpu.currentEnclave);
    if (vcpu.mode != CpuMode::GuestEnclave)
        return scope.fail(HvError::BadEnclaveState);
    const Enclave *enclave = findEnclave(vcpu.currentEnclave);
    if (!enclave)
        return scope.fail(HvError::NoSuchEnclave);
    EnclaveReport report;
    report.id = enclave->id;
    report.measurement = enclave->measurement;
    report.addedPages = enclave->addedPages;
    ++statCounters.reports;
    return report;
}

Expected<SealedBlob>
Monitor::hcEnclaveEvictPage(EnclaveId id, Gva page_gva)
{
    HypercallScope scope(statCounters, "hc_enclave_evict_page", id);
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    // Paging is a post-launch activity: while the enclave is still
    // Adding, the OS controls residency through add_page itself.
    if (enclave.state != EnclaveState::Initialized)
        return scope.fail(HvError::BadEnclaveState);
    if (!page_gva.pageAligned())
        return scope.fail(HvError::NotAligned);
    // Only ELRANGE pages are pageable; the marshalling buffer mapping
    // is fixed for the enclave's entire life cycle.
    if (!enclave.cfg.elrange.contains(page_gva))
        return scope.fail(HvError::IsolationViolation);

    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);
    auto stage1 = gpt.query(page_gva.value);
    if (!stage1)
        return scope.fail(HvError::NotMapped);
    const u64 gpa_slot = stage1->physAddr & ~(pageSize - 1);
    auto stage2 = ept.query(gpa_slot);
    if (!stage2)
        return scope.fail(HvError::NotMapped);
    const Hpa epc_page = Hpa(stage2->physAddr & ~(pageSize - 1));
    const EpcmEntry &entry = epcMap.entryFor(epc_page);
    if (entry.state == EpcPageState::Free || entry.owner != id)
        return scope.fail(HvError::IsolationViolation);

    SealedBlob blob;
    blob.owner = id;
    blob.gva = page_gva;
    blob.kind = entry.state == EpcPageState::Tcs ? AddPageKind::Tcs
                                                 : AddPageKind::Reg;
    blob.gpaSlot = Gpa(gpa_slot);
    blob.version = enclave.nextSealVersion++;
    for (u64 off = 0; off < pageSize; off += sizeof(u64))
        blob.words[off / sizeof(u64)] = physMem.read(epc_page + off);
    blob.mac = sealMac(blob);

    (void)gpt.unmap(page_gva.value);
    (void)ept.unmap(gpa_slot);
    scrubPage(epc_page);
    (void)epcMap.freePage(epc_page);
    // A resident vCPU may hold cached translations for the page; they
    // must die with the mapping or a stale hit reads the scrubbed (or
    // later re-allocated) frame.
    tlbModel.flushDomain(id);
    enclave.evictedPages[page_gva.value] = blob.version;
    ++statCounters.pagesEvicted;
    statPagesEvicted.inc();
    return blob;
}

Expected<std::vector<SealedBlob>>
Monitor::hcEnclaveEvictPagesBatch(EnclaveId id,
                                  const std::vector<Gva> &gvas)
{
    HypercallScope scope(statCounters, "hc_enclave_evict_pages_batch", id);
    if (gvas.empty())
        return std::vector<SealedBlob>{};
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Initialized)
        return scope.fail(HvError::BadEnclaveState);

    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);
    PageTable::LeafCursor gpt_cursor, ept_cursor;
    const u64 saved_seal_version = enclave.nextSealVersion;

    /** Everything needed to put one sealed page back on rollback. */
    struct Applied
    {
        u64 gva;
        u64 gpaSlot;
        Hpa epcPage;
        PteFlags gptFlags;
        PteFlags eptFlags;
        EpcPageState epcState;
        Gva epcLinAddr;
        u64 blobIndex;
    };
    std::vector<Applied> applied;
    applied.reserve(gvas.size());
    std::vector<SealedBlob> blobs;
    blobs.reserve(gvas.size());

    HvError batch_error = HvError::None;
    for (const Gva page_gva : gvas) {
        if (!page_gva.pageAligned()) {
            batch_error = HvError::NotAligned;
            break;
        }
        if (!enclave.cfg.elrange.contains(page_gva)) {
            batch_error = HvError::IsolationViolation;
            break;
        }
        auto stage1 = gpt.query(page_gva.value);
        if (!stage1) {
            batch_error = HvError::NotMapped;
            break;
        }
        const u64 gpa_slot = stage1->physAddr & ~(pageSize - 1);
        auto stage2 = ept.query(gpa_slot);
        if (!stage2) {
            batch_error = HvError::NotMapped;
            break;
        }
        const Hpa epc_page = Hpa(stage2->physAddr & ~(pageSize - 1));
        const EpcmEntry entry = epcMap.entryFor(epc_page);
        if (entry.state == EpcPageState::Free || entry.owner != id) {
            batch_error = HvError::IsolationViolation;
            break;
        }

        SealedBlob blob;
        blob.owner = id;
        blob.gva = page_gva;
        blob.kind = entry.state == EpcPageState::Tcs ? AddPageKind::Tcs
                                                     : AddPageKind::Reg;
        blob.gpaSlot = Gpa(gpa_slot);
        blob.version = enclave.nextSealVersion++;
        const u64 *page_words = physMem.pageWords(epc_page);
        std::memcpy(blob.words.data(), page_words, pageSize);
        blob.mac = sealMac(blob);

        (void)gpt.unmap(page_gva.value, gpt_cursor);
        (void)ept.unmap(gpa_slot, ept_cursor);
        scrubPage(epc_page);
        (void)epcMap.freePage(epc_page);
        enclave.evictedPages[page_gva.value] = blob.version;

        applied.push_back({page_gva.value, gpa_slot, epc_page,
                           stage1->flags, stage2->flags, entry.state,
                           entry.linAddr, blobs.size()});
        blobs.push_back(std::move(blob));
    }

    if (batch_error == HvError::None) {
        // One TLB maintenance pass for the whole batch: per-page
        // invalidations instead of the single call's per-call domain
        // flush (under SMP this becomes one vectored shootdown).  The
        // planted batch bug forgets every middle page, so stale
        // translations survive only in batches of three or more.
        for (u64 i = 0; i < applied.size(); ++i) {
            if (cfg.planted.batchSkipMiddleInvalidate && i > 0 &&
                i + 1 < applied.size())
                continue;
            tlbModel.invalidatePage(id, applied[i].gva);
        }
        statCounters.pagesEvicted += applied.size();
        for (u64 i = 0; i < applied.size(); ++i)
            statPagesEvicted.inc();
        return blobs;
    }

    // All-or-nothing: restore every sealed page in reverse — same EPCM
    // slot (restorePage pins the index), same mapping flags, same
    // contents — and rewind the anti-rollback ledger.  A mapped page
    // can have no pre-batch evictedPages record (reload erases it), so
    // erasing our insertions is exact.
    for (auto rit = applied.rbegin(); rit != applied.rend(); ++rit) {
        (void)epcMap.restorePage(rit->epcPage, id, rit->epcLinAddr,
                                 rit->epcState);
        (void)gpt.map(rit->gva, rit->gpaSlot, rit->gptFlags);
        (void)ept.map(rit->gpaSlot, rit->epcPage.value, rit->eptFlags);
        u64 *dst_words = physMem.pageWordsMut(rit->epcPage);
        std::memcpy(dst_words, blobs[rit->blobIndex].words.data(),
                    pageSize);
        enclave.evictedPages.erase(rit->gva);
    }
    enclave.nextSealVersion = saved_seal_version;
    return scope.fail(batch_error);
}

Status
Monitor::hcEnclaveReloadPage(EnclaveId id, const SealedBlob &blob,
                             FrameSource *frames)
{
    HypercallScope scope(statCounters, "hc_enclave_reload_page", id);
    FrameSource &tableFrames = frames ? *frames : frameAlloc;
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Initialized)
        return scope.fail(HvError::BadEnclaveState);
    // Authenticity first: a tampered blob and a genuine blob presented
    // to the wrong enclave (cross-enclave replay) are rejected
    // identically, before any state is inspected.
    if (blob.mac != sealMac(blob) || blob.owner != id)
        return scope.fail(HvError::SealAuthFailed);
    const auto rec = enclave.evictedPages.find(blob.gva.value);
    if (rec == enclave.evictedPages.end())
        return scope.fail(HvError::NotMapped);
    if (!cfg.planted.acceptSealRollback && blob.version != rec->second)
        return scope.fail(HvError::SealRollback);

    PageTable gpt(physMem, &tableFrames, enclave.gptRoot);
    PageTable ept(physMem, &tableFrames, enclave.eptRoot);

    // Mirror add_page's map/alloc/map order exactly so the abstract
    // machine's allocator state stays index-aligned with ours.
    if (auto st = gpt.map(blob.gva.value, blob.gpaSlot.value,
                          PteFlags::userRw()); !st)
        return scope.fail(st.error());
    auto epc_page = epcMap.allocPage(id, blob.gva,
                                     blob.kind == AddPageKind::Tcs
                                         ? EpcPageState::Tcs
                                         : EpcPageState::Reg);
    if (!epc_page) {
        (void)gpt.unmap(blob.gva.value);
        return scope.fail(epc_page.error());
    }
    if (auto st = ept.map(blob.gpaSlot.value, epc_page->value,
                          PteFlags::userRw()); !st) {
        (void)gpt.unmap(blob.gva.value);
        (void)epcMap.freePage(*epc_page);
        return scope.fail(st.error());
    }

    for (u64 off = 0; off < pageSize; off += sizeof(u64))
        physMem.write(*epc_page + off, blob.words[off / sizeof(u64)]);
    enclave.evictedPages.erase(rec);
    ++statCounters.pagesReloaded;
    statPagesReloaded.inc();
    return okStatus();
}

Expected<EnclaveImage>
Monitor::hcEnclaveSnapshot(EnclaveId id, SnapshotMode mode)
{
    HypercallScope scope(statCounters, "hc_enclave_snapshot", id);
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return scope.fail(HvError::NoSuchEnclave);
    Enclave &enclave = it->second;
    // Snapshotting a half-built or resident enclave would capture a
    // state no restore could reconstruct: the measurement fold is
    // incomplete while Adding, and a resident vCPU keeps register and
    // TLB state outside the image.  Quiesce first.
    if (enclave.state != EnclaveState::Initialized)
        return scope.fail(HvError::BadEnclaveState);
    if (enclave.activeVcpus > 0)
        return scope.fail(HvError::BadEnclaveState);
    // Evicted pages live in OS-held blobs the monitor cannot summon;
    // the OS must reload them (it has the blobs) before snapshotting.
    if (!enclave.evictedPages.empty())
        return scope.fail(HvError::BadEnclaveState);

    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);

    // Enumerate resident ELRANGE pages in ascending gva order (the
    // walk visits indices in order).  The marshalling buffer mapping is
    // per-host plumbing, not enclave state: restore re-creates it.
    struct Resident
    {
        u64 gva;
        u64 gpaSlot;
    };
    std::vector<Resident> resident;
    gpt.forEachMapping([&](u64 va, Pte entry, int level) {
        if (level != 1)
            return;
        if (!enclave.cfg.elrange.contains(Gva(va)))
            return;
        resident.push_back({va, entry.addr() & ~(pageSize - 1)});
    });
    if (resident.size() != enclave.addedPages)
        return scope.fail(HvError::BadEnclaveState);

    EnclaveImage image;
    image.sourceId = id;
    image.cfg = enclave.cfg;
    image.measurement = enclave.measurement;
    image.addedPages = enclave.addedPages;
    image.tcsPages = enclave.tcsPages;
    image.entryPoint = enclave.entryPoint;
    // The image consumes the version vector exactly as an evict-all
    // fold would: page i seals at versionBase + i and the counter
    // advances past the whole run.  This is what makes the executable
    // migration ≡ quiesced-fold equivalence hold on the source side.
    image.versionBase = enclave.nextSealVersion;
    image.pageMeta.reserve(resident.size());
    image.pages.reserve(resident.size());

    for (u64 i = 0; i < resident.size(); ++i) {
        auto stage2 = ept.query(resident[i].gpaSlot);
        if (!stage2)
            return scope.fail(HvError::NotMapped);
        const Hpa epc_page = Hpa(stage2->physAddr & ~(pageSize - 1));
        if (!epcMap.isEpc(epc_page))
            return scope.fail(HvError::IsolationViolation);
        const EpcmEntry entry = epcMap.entryFor(epc_page);
        if (entry.state == EpcPageState::Free || entry.owner != id)
            return scope.fail(HvError::IsolationViolation);

        SealedBlob blob;
        blob.owner = id;
        blob.gva = Gva(resident[i].gva);
        blob.kind = entry.state == EpcPageState::Tcs ? AddPageKind::Tcs
                                                     : AddPageKind::Reg;
        blob.gpaSlot = Gpa(resident[i].gpaSlot);
        blob.version = image.versionBase + i;
        std::memcpy(blob.words.data(), physMem.pageWords(epc_page),
                    pageSize);
        blob.mac = sealMac(blob);

        image.pageMeta.push_back({blob.gva, blob.kind, blob.version,
                                  pageWordsDigest(blob.words.data())});
        image.pages.push_back(std::move(blob));
    }
    enclave.nextSealVersion += resident.size();
    image.mac = enclaveImageMac(image);

    // One TLB maintenance action quiesces every cached translation of
    // the domain (the SMP wrapper turns this into a single vectored
    // shootdown across resident cores).
    tlbModel.flushDomain(id);

    if (mode == SnapshotMode::Move) {
        // Move semantics is evict-all + remove: the pages migrate into
        // the evicted set (they now live in the image the OS holds),
        // then the source is torn down like hc_enclave_remove.
        for (const ImagePageMeta &meta : image.pageMeta)
            enclave.evictedPages[meta.gva.value] = meta.version;
        std::vector<Hpa> owned;
        epcMap.forEachUsed([&](Hpa page, const EpcmEntry &entry) {
            if (entry.owner == id)
                owned.push_back(page);
        });
        for (Hpa page : owned) {
            scrubPage(page);
            (void)epcMap.freePage(page);
        }
        (void)gpt.destroy();
        (void)ept.destroy();
        enclave.state = EnclaveState::Dead;
        statLiveEnclaves.set(i64(liveEnclaves()));
    }

    ++statCounters.imagesSnapshotted;
    statImagesSnapshotted.inc();
    inform("snapshotted (%zu pages, mode=%s)", image.pages.size(),
           mode == SnapshotMode::Move ? "move" : "fork");
    return image;
}

Expected<EnclaveId>
Monitor::hcEnclaveRestoreImage(const EnclaveImage &image)
{
    HypercallScope scope(statCounters, "hc_enclave_restore_image",
                         u64(image.sourceId));
    // Structural honesty first: the page vectors must match the header
    // they claim to implement before any cryptographic check — a
    // truncated image would otherwise "verify" over the bytes present.
    if (image.pages.size() != image.pageMeta.size() ||
        image.pages.size() != image.addedPages)
        return scope.fail(HvError::ImageTruncated);
    if (image.mac != enclaveImageMac(image))
        return scope.fail(HvError::ImageAuthFailed);
    for (u64 i = 0; i < image.pages.size(); ++i) {
        const SealedBlob &blob = image.pages[i];
        const ImagePageMeta &meta = image.pageMeta[i];
        if (blob.mac != sealMac(blob) || blob.owner != image.sourceId)
            return scope.fail(HvError::ImageAuthFailed);
        if (blob.gva != meta.gva || blob.kind != meta.kind ||
            blob.version != meta.version ||
            blob.version != image.versionBase + i ||
            pageWordsDigest(blob.words.data()) != meta.digest)
            return scope.fail(HvError::ImageAuthFailed);
    }
    // Anti-rollback: an image of this measurement may only move the
    // version vector forward.  Replaying the image just restored is a
    // rollback too — the restored twin has kept running since.
    if (auto led = imageLedger.find(image.measurement);
        led != imageLedger.end() && image.versionBase <= led->second)
        return scope.fail(HvError::ImageRollback);

    // Build the twin through the init path (validates geometry against
    // this host's layout and maps the marshalling buffer), then reload
    // every page from its blob.  Everything after init lands in the
    // undo set: restore is all-or-nothing.
    auto new_id = hcEnclaveInit(image.cfg);
    if (!new_id)
        return scope.fail(new_id.error());
    Enclave &enclave = enclaves.at(*new_id);
    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    PageTable ept(physMem, &frameAlloc, enclave.eptRoot);
    PageTable::LeafCursor gpt_cursor, ept_cursor;

    /** Everything needed to unwind one restored page. */
    struct Applied
    {
        u64 gva;
        u64 gpaSlot;
        Hpa epcPage;
    };
    std::vector<Applied> applied;
    applied.reserve(image.pages.size());
    u64 epc_hint = 0;

    HvError build_error = HvError::None;
    for (const SealedBlob &blob : image.pages) {
        // Same map/alloc/map order as add_page and reload_page so the
        // abstract machine's allocator stays index-aligned with ours;
        // blob words land straight in the EPC frame, never staged
        // through normal memory the OS could observe.
        if (auto st = gpt.map(blob.gva.value, blob.gpaSlot.value,
                              PteFlags::userRw(), gpt_cursor); !st) {
            build_error = st.error();
            break;
        }
        auto epc_page = epcMap.allocPage(*new_id, blob.gva,
                                         blob.kind == AddPageKind::Tcs
                                             ? EpcPageState::Tcs
                                             : EpcPageState::Reg,
                                         epc_hint);
        if (!epc_page) {
            (void)gpt.unmap(blob.gva.value, gpt_cursor);
            build_error = epc_page.error();
            break;
        }
        if (auto st = ept.map(blob.gpaSlot.value, epc_page->value,
                              PteFlags::userRw(), ept_cursor); !st) {
            (void)gpt.unmap(blob.gva.value, gpt_cursor);
            (void)epcMap.freePage(*epc_page);
            build_error = st.error();
            break;
        }
        std::memcpy(physMem.pageWordsMut(*epc_page), blob.words.data(),
                    pageSize);
        applied.push_back({blob.gva.value, blob.gpaSlot.value, *epc_page});
        ++enclave.addedPages;
        if (blob.kind == AddPageKind::Tcs)
            ++enclave.tcsPages;
    }

    if (build_error != HvError::None) {
        // All-or-nothing: unwind the pages in reverse, then retract
        // the init itself so no trace of the attempt remains — state
        // equality with "never called" is what the spec checks.
        for (auto rit = applied.rbegin(); rit != applied.rend(); ++rit) {
            (void)ept.unmap(rit->gpaSlot);
            (void)gpt.unmap(rit->gva);
            scrubPage(rit->epcPage);
            (void)epcMap.freePage(rit->epcPage);
        }
        (void)gpt.destroy();
        (void)ept.destroy();
        enclaves.erase(*new_id);
        --nextEnclaveId;
        statLiveEnclaves.set(i64(liveEnclaves()));
        return scope.fail(build_error);
    }

    // The header was MAC-verified above; install it wholesale.  The
    // measurement is the source's fold — restore reproduces identity,
    // it does not re-measure (the per-page digests already bound the
    // contents to the header).
    enclave.measurement = image.measurement;
    enclave.entryPoint = image.entryPoint;
    enclave.state = EnclaveState::Initialized;
    // nextSealVersion continues past the image's vector so a future
    // evict (or re-snapshot) of the twin can never mint a version the
    // image already spent.
    enclave.nextSealVersion = image.versionBase + image.pages.size();
    imageLedger[image.measurement] = image.versionBase;

    ++statCounters.imagesRestored;
    statImagesRestored.inc();
    inform("restored image (%zu pages) as enclave %llu",
           image.pages.size(), (unsigned long long)*new_id);
    return *new_id;
}

Expected<std::vector<Gva>>
Monitor::enclaveDirtyPages(EnclaveId id) const
{
    const Enclave *enclave = findEnclave(id);
    if (!enclave)
        return HvError::NoSuchEnclave;
    const PageTable gpt(const_cast<PhysMem &>(physMem), nullptr,
                        enclave->gptRoot);
    std::vector<Gva> dirty;
    gpt.forEachMapping([&](u64 va, Pte entry, int level) {
        if (level == 1 && entry.dirty() &&
            enclave->cfg.elrange.contains(Gva(va)))
            dirty.push_back(Gva(va));
    });
    return dirty;
}

Status
Monitor::clearEnclaveDirty(EnclaveId id, bool flush_tlb)
{
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return HvError::NoSuchEnclave;
    Enclave &enclave = it->second;
    PageTable gpt(physMem, &frameAlloc, enclave.gptRoot);
    std::vector<u64> dirty;
    gpt.forEachMapping([&](u64 va, Pte entry, int level) {
        if (level == 1 && entry.dirty())
            dirty.push_back(va);
    });
    for (const u64 va : dirty)
        (void)gpt.clearDirtyBit(va);
    // Cached write-permitted translations let later stores skip the
    // walk that re-stamps the bit; the flush forces the next write
    // back through the walker.  Callers under SMP pass flush_tlb=false
    // and run a vectored shootdown instead.
    if (flush_tlb)
        tlbModel.flushDomain(id);
    return okStatus();
}

Status
Monitor::enclaveStore(EnclaveId id, Gva va, u64 value)
{
    auto it = enclaves.find(id);
    if (it == enclaves.end() || it->second.state == EnclaveState::Dead)
        return HvError::NoSuchEnclave;
    Enclave &enclave = it->second;
    if (enclave.state != EnclaveState::Initialized)
        return HvError::BadEnclaveState;
    auto hpa = translateEnclaveUncached(enclave.gptRoot, enclave.eptRoot,
                                        va, true);
    if (!hpa)
        return hpa.error();
    physMem.write(*hpa, value);
    stampEnclaveDirty(physMem, enclave.gptRoot, enclave.eptRoot, va);
    return okStatus();
}

Expected<u64>
Monitor::enclaveLoad(EnclaveId id, Gva va) const
{
    const Enclave *enclave = findEnclave(id);
    if (!enclave)
        return HvError::NoSuchEnclave;
    if (enclave->state != EnclaveState::Initialized)
        return HvError::BadEnclaveState;
    auto hpa = translateEnclaveUncached(enclave->gptRoot,
                                        enclave->eptRoot, va, false);
    if (!hpa)
        return hpa.error();
    return physMem.read(*hpa);
}

Expected<std::vector<Gva>>
Monitor::enclaveResidentPages(EnclaveId id) const
{
    const Enclave *enclave = findEnclave(id);
    if (!enclave)
        return HvError::NoSuchEnclave;
    if (enclave->state != EnclaveState::Initialized)
        return HvError::BadEnclaveState;
    const PageTable gpt(const_cast<PhysMem &>(physMem), nullptr,
                        enclave->gptRoot);
    std::vector<Gva> resident;
    gpt.forEachMapping([&](u64 va, Pte entry, int level) {
        (void)entry;
        if (level == 1 && enclave->cfg.elrange.contains(Gva(va)))
            resident.push_back(Gva(va));
    });
    std::sort(resident.begin(), resident.end(),
              [](Gva a, Gva b) { return a.value < b.value; });
    return resident;
}

Status
Monitor::enclaveReadPage(EnclaveId id, Gva page_va, u64 *out) const
{
    const Enclave *enclave = findEnclave(id);
    if (!enclave)
        return HvError::NoSuchEnclave;
    if (enclave->state != EnclaveState::Initialized)
        return HvError::BadEnclaveState;
    const Gva base(page_va.value & ~(pageSize - 1));
    auto hpa = translateEnclaveUncached(enclave->gptRoot,
                                        enclave->eptRoot, base, false);
    if (!hpa)
        return hpa.error();
    const u64 *words = physMem.pageWords(Hpa(hpa->value & ~(pageSize - 1)));
    std::memcpy(out, words, pageSize);
    return okStatus();
}

void
Monitor::scrubPage(Hpa page)
{
    physMem.zeroPage(page);
}

Expected<Hpa>
Monitor::translateUncached(Hpa gpt_root, Hpa ept_root, Gva va,
                           bool is_write) const
{
    const PageTable ept(const_cast<PhysMem &>(physMem), nullptr, ept_root);

    // The hardware's nested walk: the guest page table is addressed in
    // guest-physical space, so each stage-1 table access is itself
    // EPT-translated.  A GPT entry pointing into the secure region (a
    // "mapping attack") therefore faults at the EPT stage instead of
    // silently reading monitor memory.
    u64 table_gpa = gpt_root.value;
    for (int level = pagingLevels; level >= 1; --level) {
        auto table_hpa = ept.translate(table_gpa, false, false);
        if (!table_hpa)
            return HvError::NotMapped;
        const u64 index = va.tableIndex(level);
        const PageTable stage1(const_cast<PhysMem &>(physMem), nullptr,
                               Hpa(table_hpa->physAddr));
        const Pte entry = stage1.entryAt(Hpa(table_hpa->physAddr), index);
        if (!entry.present())
            return HvError::NotMapped;
        if (is_write && !entry.writable())
            return HvError::PermissionDenied;
        if (level == 1 || entry.huge()) {
            const u64 span = 1ull << (pageShift + 9 * (level - 1));
            const u64 gpa = entry.addr() + (va.value & (span - 1));
            auto data_hpa = ept.translate(gpa, is_write, false);
            if (!data_hpa)
                return data_hpa.error();
            return Hpa(data_hpa->physAddr);
        }
        table_gpa = entry.addr();
    }
    panic("unreachable: nested walk fell off the root");
}

Expected<Hpa>
Monitor::translateEnclaveUncached(Hpa gpt_root, Hpa ept_root, Gva va,
                                  bool is_write) const
{
    // The enclave's GPT is monitor-managed and lives in the secure
    // region; hardware walks it from the root the monitor installed, so
    // stage-1 table accesses read host-physical memory directly.  Only
    // the resulting guest-physical address goes through the EPT.
    const PageTable gpt(const_cast<PhysMem &>(physMem), nullptr, gpt_root);
    auto stage1 = gpt.translate(va.value, is_write, false);
    if (!stage1)
        return stage1.error();

    const PageTable ept(const_cast<PhysMem &>(physMem), nullptr, ept_root);
    auto stage2 = ept.translate(stage1->physAddr, is_write, false);
    if (!stage2)
        return stage2.error();
    return Hpa(stage2->physAddr);
}

Expected<Hpa>
Monitor::translate(VCpu &vcpu, Gva va, bool is_write)
{
    statTranslations.inc();
    if (auto hit = tlbModel.lookup(vcpu.domain, va.value)) {
        if (!is_write || hit->writable)
            return Hpa(hit->hpaPage + va.pageOffset());
        // Write to a read-only cached translation: re-walk (the tables
        // are authoritative for permission faults).
    }

    auto hpa = vcpu.mode == CpuMode::GuestEnclave
                   ? translateEnclaveUncached(vcpu.gptRoot, vcpu.eptRoot,
                                              va, is_write)
                   : translateUncached(vcpu.gptRoot, vcpu.eptRoot, va,
                                       is_write);
    if (!hpa)
        return hpa.error();
    // A successful enclave write walk leaves accessed+dirty stamped on
    // the terminal entries, as hardware does.  Only the uncached path
    // stamps: a TLB hit skips the walk, which is exactly why clearing
    // dirty bits must be paired with a flush (or shootdown).
    if (vcpu.mode == CpuMode::GuestEnclave && is_write)
        stampEnclaveDirty(physMem, vcpu.gptRoot, vcpu.eptRoot, va);
    tlbModel.insert(vcpu.domain, va.value,
                    {hpa->pageBase().value, is_write});
    return *hpa;
}

Status
Monitor::guestSetGptRoot(VCpu &vcpu, Hpa new_root)
{
    if (vcpu.mode != CpuMode::GuestNormal)
        return HvError::PermissionDenied;
    vcpu.gptRoot = new_root;
    // MOV CR3 flushes the non-global TLB entries of the domain (the
    // staleTlbOnUnmap planted bug forgets this, so cached translations
    // survive a guest unmap).
    if (!cfg.planted.staleTlbOnUnmap)
        tlbModel.flushDomain(vcpu.domain);
    return okStatus();
}

} // namespace hev::hv
