/**
 * @file
 * 64-bit page-table entries.
 *
 * Entries follow the x86-64 long-mode format the paper's page tables use:
 * a physical frame number in bits [51:12] and permission/status flags in
 * the low bits plus NX in bit 63.  Both the guest page tables (GPT) and
 * the extended page tables (EPT) in this reproduction use the same entry
 * encoding, matching the implementation the paper verifies where entries
 * are "plain 64-bit integers" (Sec. 4.1).
 */

#ifndef HEV_HV_PTE_HH
#define HEV_HV_PTE_HH

#include <string>

#include "support/bitops.hh"
#include "support/types.hh"

namespace hev::hv
{

/** Permission / status flags carried by an entry. */
struct PteFlags
{
    bool present = false;   //!< P: entry is valid
    bool writable = false;  //!< W: write permitted
    bool user = false;      //!< U: user-mode access permitted
    bool accessed = false;  //!< A: set by walker on use
    bool dirty = false;     //!< D: set by walker on write
    bool huge = false;      //!< PS: terminal large mapping at level 2/3
    bool noExec = false;    //!< NX: instruction fetch forbidden

    bool operator==(const PteFlags &) const = default;

    /** Flags for a normal writable user mapping. */
    static PteFlags
    userRw()
    {
        return {.present = true, .writable = true, .user = true};
    }

    /** Flags for a read-only user mapping. */
    static PteFlags
    userRo()
    {
        return {.present = true, .writable = false, .user = true};
    }

    /** Flags for an intermediate (non-terminal) table link. */
    static PteFlags
    tableLink()
    {
        return {.present = true, .writable = true, .user = true};
    }
};

/** One page-table entry as stored in physical memory. */
class Pte
{
  public:
    constexpr Pte() = default;
    constexpr explicit Pte(u64 raw_bits) : rawBits(raw_bits) {}

    /** Build an entry from a frame address and flags. */
    static Pte make(u64 phys_addr, const PteFlags &flags);

    /** The raw 64-bit representation. */
    constexpr u64 raw() const { return rawBits; }

    /** Physical address field, bits [51:12] (page aligned). */
    constexpr u64
    addr() const
    {
        return rawBits & bitMask(51, 12);
    }

    bool present() const { return bit(rawBits, 0); }
    bool writable() const { return bit(rawBits, 1); }
    bool user() const { return bit(rawBits, 2); }
    bool accessed() const { return bit(rawBits, 5); }
    bool dirty() const { return bit(rawBits, 6); }
    bool huge() const { return bit(rawBits, 7); }
    bool noExec() const { return bit(rawBits, 63); }

    /** Decode the flag bits into a PteFlags value. */
    PteFlags flags() const;

    /** Entry with the accessed bit set. */
    Pte withAccessed() const { return Pte(setBit(rawBits, 5, true)); }
    /** Entry with the dirty bit set. */
    Pte withDirty() const { return Pte(setBit(rawBits, 6, true)); }
    /** Entry with the dirty bit cleared (pre-copy round reset). */
    Pte withDirtyCleared() const { return Pte(setBit(rawBits, 6, false)); }

    /** The all-zero (non-present) entry. */
    static constexpr Pte empty() { return Pte(0); }

    constexpr bool operator==(const Pte &) const = default;

    /** Human-readable rendering for diagnostics. */
    std::string toString() const;

  private:
    u64 rawBits = 0;
};

} // namespace hev::hv

#endif // HEV_HV_PTE_HH
