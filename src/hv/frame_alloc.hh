/**
 * @file
 * Bitmap allocator for the monitor's page-table frame area.
 *
 * This is the bottom of the paper's 15-layer stack ("from frame
 * allocation to address space isolation", Sec. 1).  All page-table frames
 * live inside the reserved secure region, which is the load-bearing fact
 * behind the paper's observation that "the page tables themselves are
 * also protected, because they are allocated in a disjoint range of
 * physical memory which is never in the range of a guest mapping"
 * (Sec. 5.2).
 */

#ifndef HEV_HV_FRAME_ALLOC_HH
#define HEV_HV_FRAME_ALLOC_HH

#include <vector>

#include "hv/mem_layout.hh"
#include "support/result.hh"
#include "support/types.hh"

namespace hev::hv
{

class PhysMem;

/** First-fit bitmap allocator over a page-aligned physical range. */
class FrameAllocator
{
  public:
    /**
     * @param mem backing memory; freshly allocated frames are zeroed.
     * @param area the physical range this allocator hands out.
     */
    FrameAllocator(PhysMem &mem, HpaRange area);

    /**
     * Allocate one zeroed frame.
     *
     * @return frame base address, or OutOfMemory.
     */
    Expected<Hpa> alloc();

    /** Return a frame to the pool; must have been allocated. */
    Status free(Hpa frame);

    /** True iff the frame is currently allocated. */
    bool allocated(Hpa frame) const;

    /**
     * Test hook for the fuzzer's planted double-free bug: release the
     * frame unconditionally (even if it is already free) and rewind the
     * search hint so the very next alloc() hands it out again.  Never
     * called on the production paths.
     */
    void debugForceFree(Hpa frame);

    /** True iff hpa lies inside the managed area. */
    bool
    inArea(Hpa hpa) const
    {
        return managedArea.contains(hpa);
    }

    /** Frames currently handed out. */
    u64 usedFrames() const { return used; }

    /** Total frames managed. */
    u64 totalFrames() const { return bitmap.size(); }

    /** The managed physical range. */
    HpaRange area() const { return managedArea; }

  private:
    /** Bitmap index of a frame base, assuming it is in the area. */
    u64 indexOf(Hpa frame) const;

    PhysMem &physMem;
    HpaRange managedArea;
    std::vector<bool> bitmap;
    u64 used = 0;
    u64 searchHint = 0;
};

} // namespace hev::hv

#endif // HEV_HV_FRAME_ALLOC_HH
