/**
 * @file
 * Bitmap allocator for the monitor's page-table frame area.
 *
 * This is the bottom of the paper's 15-layer stack ("from frame
 * allocation to address space isolation", Sec. 1).  All page-table frames
 * live inside the reserved secure region, which is the load-bearing fact
 * behind the paper's observation that "the page tables themselves are
 * also protected, because they are allocated in a disjoint range of
 * physical memory which is never in the range of a guest mapping"
 * (Sec. 5.2).
 *
 * FrameSource abstracts "where page-table frames come from" so the SMP
 * monitor can interpose per-CPU free-list caches (src/smp/cpu_cache.hh)
 * between the page-table code and this global allocator.  The global
 * allocator itself is internally locked; the batch entry points exist so
 * a cache refill/drain pays for the lock and the bitmap scan once per
 * batch instead of once per frame.
 */

#ifndef HEV_HV_FRAME_ALLOC_HH
#define HEV_HV_FRAME_ALLOC_HH

#include <vector>

#include "hv/mem_layout.hh"
#include "support/result.hh"
#include "support/thread_annotations.hh"
#include "support/types.hh"

namespace hev::hv
{

class PhysMem;

/**
 * Supplier of zeroed page-table frames.  Implemented by the global
 * FrameAllocator and by the SMP per-CPU caches layered on top of it.
 */
class FrameSource
{
  public:
    virtual ~FrameSource() = default;

    /** Allocate one zeroed frame. */
    virtual Expected<Hpa> allocFrame() = 0;

    /** Return a previously allocated frame. */
    virtual Status freeFrame(Hpa frame) = 0;

    /**
     * True iff the frame is currently handed out by the underlying
     * allocator (used by PageTable::destroy to skip foreign frames).
     */
    virtual bool owns(Hpa frame) const = 0;
};

/**
 * First-fit bitmap allocator over a page-aligned physical range.
 *
 * Thread safe: every public entry point takes the internal mutex, so
 * concurrent vCPUs (and their caches) can hit it directly.
 */
class FrameAllocator final : public FrameSource
{
  public:
    /**
     * @param mem backing memory; freshly allocated frames are zeroed.
     * @param area the physical range this allocator hands out.
     */
    FrameAllocator(PhysMem &mem, HpaRange area);

    /**
     * Allocate one zeroed frame.
     *
     * @return frame base address, or OutOfMemory.
     */
    Expected<Hpa> alloc();

    /** Return a frame to the pool; must have been allocated. */
    Status free(Hpa frame);

    /**
     * Allocate up to `count` zeroed frames in one bitmap pass,
     * appending them to `out`.
     *
     * @return the number of frames actually allocated (may be short
     *         when the pool runs dry; never an error).
     */
    u64 allocBatch(u64 count, std::vector<Hpa> &out);

    /** Return a batch of frames; each must have been allocated. */
    void freeBatch(const std::vector<Hpa> &frames);

    /// @name FrameSource
    /// @{
    Expected<Hpa> allocFrame() override { return alloc(); }
    Status freeFrame(Hpa frame) override { return free(frame); }
    bool owns(Hpa frame) const override { return allocated(frame); }
    /// @}

    /** True iff the frame is currently allocated. */
    bool allocated(Hpa frame) const;

    /**
     * Test hook for the fuzzer's planted double-free bug: release the
     * frame unconditionally (even if it is already free) and rewind the
     * search hint so the very next alloc() hands it out again.  Never
     * called on the production paths.
     */
    void debugForceFree(Hpa frame);

    /** True iff hpa lies inside the managed area. */
    bool
    inArea(Hpa hpa) const
    {
        return managedArea.contains(hpa);
    }

    /** Frames currently handed out. */
    u64 usedFrames() const;

    /** Total frames managed. */
    u64 totalFrames() const { return totalCount; }

    /** The managed physical range. */
    HpaRange area() const { return managedArea; }

  private:
    /** Bitmap index of a frame base, assuming it is in the area. */
    u64 indexOf(Hpa frame) const;

    /** One first-fit probe under the lock; nullopt when full. */
    Expected<Hpa> allocLocked() HEV_REQUIRES(lock);

    PhysMem &physMem;
    HpaRange managedArea;
    u64 totalCount = 0;
    mutable Mutex lock;
    std::vector<bool> bitmap HEV_GUARDED_BY(lock);
    u64 used HEV_GUARDED_BY(lock) = 0;
    u64 searchHint HEV_GUARDED_BY(lock) = 0;
};

} // namespace hev::hv

#endif // HEV_HV_FRAME_ALLOC_HH
