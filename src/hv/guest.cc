#include "hv/guest.hh"

#include "support/logging.hh"

namespace hev::hv
{

PrimaryOs::PrimaryOs(Monitor &mon) : monitor(mon)
{
    const u64 pages = mon.config().layout.normalRange().size() / pageSize;
    pageBitmap.assign(pages, false);
    // Reserve page 0 so no allocation ever hands out the null page.
    pageBitmap[0] = true;
    ++usedCount;
}

Expected<Gpa>
PrimaryOs::allocPage()
{
    const u64 n = pageBitmap.size();
    for (u64 probe = 0; probe < n; ++probe) {
        const u64 idx = (searchHint + probe) % n;
        if (!pageBitmap[idx]) {
            pageBitmap[idx] = true;
            ++usedCount;
            searchHint = (idx + 1) % n;
            const Gpa page = Gpa(idx * pageSize);
            (void)zeroPage(page);
            return page;
        }
    }
    return HvError::OutOfMemory;
}

Status
PrimaryOs::freePage(Gpa page)
{
    if (page.value % pageSize != 0)
        return HvError::NotAligned;
    const u64 idx = page.value / pageSize;
    if (idx >= pageBitmap.size() || !pageBitmap[idx])
        return HvError::InvalidParam;
    pageBitmap[idx] = false;
    --usedCount;
    return okStatus();
}

Expected<u64>
PrimaryOs::physRead(Gpa addr) const
{
    // The OS kernel can touch any guest-physical address: model that as
    // a direct EPT translation (identity GPT), which is what an OS
    // running with a full linear mapping achieves.
    const PageTable ept(const_cast<PhysMem &>(monitor.mem()), nullptr,
                        monitor.normalEptRoot());
    auto tr = ept.translate(addr.value, false, false);
    if (!tr)
        return tr.error();
    return monitor.mem().read(Hpa(tr->physAddr));
}

Status
PrimaryOs::physWrite(Gpa addr, u64 value)
{
    const PageTable ept(const_cast<PhysMem &>(monitor.mem()), nullptr,
                        monitor.normalEptRoot());
    auto tr = ept.translate(addr.value, true, false);
    if (!tr)
        return tr.error();
    monitor.mem().write(Hpa(tr->physAddr), value);
    return okStatus();
}

Status
PrimaryOs::zeroPage(Gpa page)
{
    for (u64 off = 0; off < pageSize; off += sizeof(u64)) {
        if (auto st = physWrite(page + off, 0); !st)
            return st.error();
    }
    return okStatus();
}

Expected<Gpa>
PrimaryOs::createPageTable()
{
    return allocPage();
}

Status
PrimaryOs::gptMap(Gpa root, u64 va, Gpa target, PteFlags flags)
{
    if (va % pageSize != 0 || target.value % pageSize != 0)
        return HvError::NotAligned;
    Gpa table = root;
    for (int level = pagingLevels; level > 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        auto raw = physRead(table + index * sizeof(u64));
        if (!raw)
            return raw.error();
        Pte entry(*raw);
        if (!entry.present()) {
            auto frame = allocPage();
            if (!frame)
                return frame.error();
            entry = Pte::make(frame->value, PteFlags::tableLink());
            if (auto st = physWrite(table + index * sizeof(u64),
                                    entry.raw()); !st)
                return st.error();
        } else if (entry.huge()) {
            return HvError::AlreadyMapped;
        }
        table = Gpa(entry.addr());
    }
    const u64 index = Gva(va).tableIndex(1);
    auto raw = physRead(table + index * sizeof(u64));
    if (!raw)
        return raw.error();
    if (Pte(*raw).present())
        return HvError::AlreadyMapped;
    flags.huge = false;
    return physWrite(table + index * sizeof(u64),
                     Pte::make(target.value, flags).raw());
}

Status
PrimaryOs::gptUnmap(Gpa root, u64 va)
{
    if (va % pageSize != 0)
        return HvError::NotAligned;
    Gpa table = root;
    for (int level = pagingLevels; level > 1; --level) {
        const u64 index = Gva(va).tableIndex(level);
        auto raw = physRead(table + index * sizeof(u64));
        if (!raw)
            return raw.error();
        const Pte entry(*raw);
        if (!entry.present())
            return HvError::NotMapped;
        if (entry.huge())
            return HvError::Unsupported;
        table = Gpa(entry.addr());
    }
    const u64 index = Gva(va).tableIndex(1);
    auto raw = physRead(table + index * sizeof(u64));
    if (!raw)
        return raw.error();
    if (!Pte(*raw).present())
        return HvError::NotMapped;
    return physWrite(table + index * sizeof(u64), 0);
}

Status
PrimaryOs::writePtEntryRaw(Gpa table, u64 index, u64 raw)
{
    if (index >= entriesPerTable)
        return HvError::InvalidParam;
    return physWrite(table + index * sizeof(u64), raw);
}

} // namespace hev::hv
