/**
 * @file
 * Four-level page tables over physical memory.
 *
 * One PageTable instance manages one radix tree rooted at a physical
 * frame.  The same machinery backs three distinct table roles in
 * HyperEnclave (paper Fig. 1): the monitor-managed extended page tables
 * (EPT) of the normal VM and of each enclave, the monitor-managed guest
 * page tables (GPT) of each enclave, and the untrusted, guest-managed
 * GPTs of the primary OS and its apps.  The walker itself is identical;
 * what differs is who owns the frames and who is allowed to mutate the
 * tree — exactly the distinction the paper's invariants police.
 *
 * Functions here mirror the Rust memory module the paper verifies: walk
 * the tables for a virtual address, look up intermediate entries,
 * allocate new intermediate frames by need, and ultimately retrieve or
 * install a terminal entry (Sec. 4.1).
 */

#ifndef HEV_HV_PAGE_TABLE_HH
#define HEV_HV_PAGE_TABLE_HH

#include <functional>

#include "hv/frame_alloc.hh"
#include "hv/pte.hh"
#include "support/result.hh"
#include "support/types.hh"

namespace hev::hv
{

class PhysMem;

/** Result of a successful translation. */
struct Translation
{
    u64 physAddr = 0;       //!< translated physical address
    PteFlags flags;         //!< effective flags of the terminal entry
    int level = 1;          //!< level the walk terminated at (1 = 4K)

    bool operator==(const Translation &) const = default;
};

/** A radix page-table tree rooted at one physical frame. */
class PageTable
{
  public:
    /**
     * Cached result of one walk to a level-1 table, valid for every
     * 4 KiB mapping inside the same 2 MiB leaf-table span.  Batched
     * map/unmap runs hand the same cursor to consecutive calls so a
     * 512-page run costs one walk instead of 512; a cursor must not
     * outlive structural changes to the tree (destroy, huge remaps).
     */
    struct LeafCursor
    {
        u64 vaBase = ~0ull;  //!< leaf-span base the cached table covers
        Hpa table{};         //!< its level-1 table frame
    };


    /**
     * Bind to an existing root frame.
     *
     * @param mem backing physical memory.
     * @param alloc frame source for intermediate tables (the global
     *              allocator or a per-CPU cache); may be null for
     *              read-only use (e.g. walking a guest-built tree).
     * @param root physical address of the level-4 table.
     */
    PageTable(PhysMem &mem, FrameSource *alloc, Hpa root);

    /** Allocate a fresh zeroed root and bind to it. */
    static Expected<PageTable> create(PhysMem &mem, FrameSource &alloc);

    /** Physical address of the level-4 (root) table. */
    Hpa root() const { return rootFrame; }

    /**
     * Install a 4 KiB terminal mapping va -> pa.
     *
     * Intermediate tables are allocated on demand.  Fails with
     * AlreadyMapped if a terminal entry already covers va.
     */
    Status map(u64 va, u64 pa, PteFlags flags);

    /** map() reusing (and refreshing) a cached leaf-table walk. */
    Status map(u64 va, u64 pa, PteFlags flags, LeafCursor &cursor);

    /**
     * Install a huge terminal mapping at the given level
     * (2 = 2 MiB, 3 = 1 GiB).  Alignment of va and pa must match the
     * level's page size.
     */
    Status mapHuge(u64 va, u64 pa, PteFlags flags, int level);

    /** Remove the terminal mapping covering va (4 KiB only). */
    Status unmap(u64 va);

    /** unmap() reusing (and refreshing) a cached leaf-table walk. */
    Status unmap(u64 va, LeafCursor &cursor);

    /**
     * Fetch the terminal entry covering va without permission checks.
     * This is the page-walk the paper reuses in its security model
     * (Sec. 5.1).
     */
    Expected<Translation> query(u64 va) const;

    /**
     * Full translation with permission checking, as the MMU would do.
     *
     * @param va virtual address to translate.
     * @param is_write demand write permission.
     * @param is_user demand user-mode access permission on every level.
     */
    Expected<Translation> translate(u64 va, bool is_write,
                                    bool is_user) const;

    /** Visit every terminal mapping: f(va, entry, level). */
    void forEachMapping(
        const std::function<void(u64, Pte, int)> &visit) const;

    /**
     * Stamp the accessed (and, for writes, dirty) bit on the terminal
     * entry covering va — what the hardware walker does as a side
     * effect of a successful translation.  The dirty bits feed the
     * live-migration pre-copy rounds (docs/MIGRATION.md).
     */
    Status stampAccessedDirty(u64 va, bool is_write);

    /**
     * Clear the dirty bit of the terminal entry covering va.  Callers
     * owning a TLB must flush it (or run a shootdown under SMP):
     * cached write-permitted translations would otherwise let later
     * stores skip the walk that re-stamps the bit.
     */
    Status clearDirtyBit(u64 va);

    /**
     * Free all intermediate table frames (from the leaf level up),
     * leaving terminal pages untouched.  Requires an allocator.
     */
    Status destroy();

    /** Number of table frames in the tree, including the root. */
    u64 tableFrameCount() const;

    /** Read the raw entry at (table, index). */
    Pte entryAt(Hpa table, u64 index) const;

    /** Write the raw entry at (table, index). */
    void setEntryAt(Hpa table, u64 index, Pte entry);

    /**
     * Copy another tree's level-4 entries covering [va_start, va_end)
     * into this tree.  This reproduces the 2022 "shallow copy" bug the
     * paper describes (Sec. 4.1): the copied entries still point at
     * level-3 tables stored in physical memory the *source* controls.
     * Exists only so the checkers can demonstrate they reject it.
     */
    Status shallowCopyL4From(const PageTable &src, u64 va_start, u64 va_end);

  private:
    /**
     * Walk down to the level-1 table containing va's leaf entry.
     *
     * @param va address being walked.
     * @param alloc_missing allocate intermediate tables on a miss.
     * @param[out] out_table level-1 table frame.
     */
    Expected<Hpa> walkToLeafTable(u64 va, bool alloc_missing);

    PhysMem &physMem;
    FrameSource *frameAlloc;
    Hpa rootFrame;
};

} // namespace hev::hv

#endif // HEV_HV_PAGE_TABLE_HH
