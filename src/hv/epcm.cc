#include "hv/epcm.hh"

#include "support/logging.hh"

namespace hev::hv
{

const char *
epcPageStateName(EpcPageState state)
{
    switch (state) {
      case EpcPageState::Free: return "Free";
      case EpcPageState::Reg: return "Reg";
      case EpcPageState::Tcs: return "Tcs";
    }
    return "Unknown";
}

Epcm::Epcm(HpaRange epc_range) : epcRange(epc_range)
{
    if (!epc_range.start.pageAligned() || !epc_range.end.pageAligned())
        fatal("EPC range must be page aligned");
    table.assign(epc_range.size() / pageSize, EpcmEntry{});
    freeCount = table.size();
}

u64
Epcm::indexOf(Hpa hpa) const
{
    if (!isEpc(hpa))
        panic("EPCM index of non-EPC address %#llx",
              (unsigned long long)hpa.value);
    return (hpa - epcRange.start) / pageSize;
}

Expected<Hpa>
Epcm::allocPage(EnclaveId owner, Gva lin_addr, EpcPageState state)
{
    if (owner == invalidEnclave || state == EpcPageState::Free)
        return HvError::InvalidParam;
    MutexGuard guard(lock);
    // First fit, deliberately: the functional spec (specEpcmAlloc) and
    // the MIR model (epcm_alloc) both scan from index 0, and the
    // conformance oracles compare the tables index-aligned.  A
    // rotating hint would hand reload_page a different frame than the
    // one evict_page freed and silently break that alignment.
    const u64 n = table.size();
    for (u64 idx = 0; idx < n; ++idx) {
        if (table[idx].state == EpcPageState::Free) {
            table[idx] = {state, owner, lin_addr};
            --freeCount;
            return epcRange.start + idx * pageSize;
        }
    }
    return HvError::OutOfEpc;
}

Expected<Hpa>
Epcm::allocPage(EnclaveId owner, Gva lin_addr, EpcPageState state,
                u64 &scan_hint)
{
    if (owner == invalidEnclave || state == EpcPageState::Free)
        return HvError::InvalidParam;
    MutexGuard guard(lock);
    // With no frees since the last grant, every index below the hint is
    // still occupied, so resuming there finds the same slot a scan from
    // 0 would.
    const u64 n = table.size();
    for (u64 idx = scan_hint < n ? scan_hint : n; idx < n; ++idx) {
        if (table[idx].state == EpcPageState::Free) {
            table[idx] = {state, owner, lin_addr};
            --freeCount;
            scan_hint = idx + 1;
            return epcRange.start + idx * pageSize;
        }
    }
    scan_hint = n;
    return HvError::OutOfEpc;
}

Status
Epcm::restorePage(Hpa page, EnclaveId owner, Gva lin_addr,
                  EpcPageState state)
{
    if (!isEpc(page) || !page.pageAligned() || owner == invalidEnclave ||
        state == EpcPageState::Free)
        return HvError::InvalidParam;
    MutexGuard guard(lock);
    EpcmEntry &entry = table[indexOf(page)];
    if (entry.state != EpcPageState::Free)
        return HvError::EpcmConflict;
    entry = {state, owner, lin_addr};
    --freeCount;
    return okStatus();
}

Status
Epcm::freePage(Hpa page)
{
    if (!isEpc(page) || !page.pageAligned())
        return HvError::InvalidParam;
    MutexGuard guard(lock);
    EpcmEntry &entry = table[indexOf(page)];
    if (entry.state == EpcPageState::Free)
        return HvError::EpcmConflict;
    entry = EpcmEntry{};
    ++freeCount;
    return okStatus();
}

u64
Epcm::freePages() const
{
    MutexGuard guard(lock);
    return freeCount;
}

// Quiescent-only reader (invariant checkers, exclusive-locked
// teardown): contractually runs with no concurrent alloc/free, so it
// deliberately skips the lock the table is guarded by.
const EpcmEntry &
Epcm::entryFor(Hpa hpa) const HEV_NO_THREAD_SAFETY_ANALYSIS
{
    return table[indexOf(hpa)];
}

// Quiescent-only reader; same exemption as entryFor.
void
Epcm::forEachUsed(
    const std::function<void(Hpa, const EpcmEntry &)> &visit) const
    HEV_NO_THREAD_SAFETY_ANALYSIS
{
    for (u64 idx = 0; idx < table.size(); ++idx) {
        if (table[idx].state != EpcPageState::Free)
            visit(epcRange.start + idx * pageSize, table[idx]);
    }
}

} // namespace hev::hv
