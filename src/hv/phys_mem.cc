#include "hv/phys_mem.hh"

#include "support/logging.hh"

namespace hev::hv
{

PhysMem::PhysMem(const MemLayout &layout) : memLayout(layout)
{
    if (!layout.valid())
        fatal("invalid physical memory layout (total=%llu pt=%llu epc=%llu)",
              (unsigned long long)layout.totalBytes,
              (unsigned long long)layout.ptAreaBytes,
              (unsigned long long)layout.epcBytes);
    words.assign(layout.totalBytes / sizeof(u64), 0);
}

bool
PhysMem::validWord(Hpa hpa) const
{
    return hpa.value % sizeof(u64) == 0 && hpa.value < memLayout.totalBytes;
}

u64
PhysMem::read(Hpa hpa) const
{
    if (!validWord(hpa))
        panic("phys read of invalid word address %#llx",
              (unsigned long long)hpa.value);
    return words[hpa.value / sizeof(u64)];
}

void
PhysMem::write(Hpa hpa, u64 value)
{
    if (!validWord(hpa))
        panic("phys write of invalid word address %#llx",
              (unsigned long long)hpa.value);
    words[hpa.value / sizeof(u64)] = value;
}

Expected<u64>
PhysMem::dmaRead(Hpa hpa) const
{
    if (!validWord(hpa))
        return HvError::InvalidParam;
    if (inSecure(hpa))
        return HvError::PermissionDenied;
    return read(hpa);
}

Status
PhysMem::dmaWrite(Hpa hpa, u64 value)
{
    if (!validWord(hpa))
        return HvError::InvalidParam;
    if (inSecure(hpa))
        return HvError::PermissionDenied;
    write(hpa, value);
    return okStatus();
}

const u64 *
PhysMem::pageWords(Hpa page_base) const
{
    if (!page_base.pageAligned() ||
        page_base.value + pageSize > memLayout.totalBytes)
        panic("pageWords of invalid page %#llx",
              (unsigned long long)page_base.value);
    return &words[page_base.value / sizeof(u64)];
}

u64 *
PhysMem::pageWordsMut(Hpa page_base)
{
    if (!page_base.pageAligned() ||
        page_base.value + pageSize > memLayout.totalBytes)
        panic("pageWords of invalid page %#llx",
              (unsigned long long)page_base.value);
    return &words[page_base.value / sizeof(u64)];
}

void
PhysMem::zeroPage(Hpa page_base)
{
    if (!page_base.pageAligned())
        panic("zeroPage of unaligned address %#llx",
              (unsigned long long)page_base.value);
    for (u64 off = 0; off < pageSize; off += sizeof(u64))
        write(page_base + off, 0);
}

void
PhysMem::copyPage(Hpa dst_base, Hpa src_base)
{
    if (!dst_base.pageAligned() || !src_base.pageAligned())
        panic("copyPage of unaligned addresses");
    for (u64 off = 0; off < pageSize; off += sizeof(u64))
        write(dst_base + off, read(src_base + off));
}

} // namespace hev::hv
