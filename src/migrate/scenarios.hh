/**
 * @file
 * Migration campaign shards: randomized spec-side migration ≡
 * quiesced-fold equivalence sweeps (checkMigrateQuiescedFold), plus
 * concrete live-migration shards that drive migrateLive between two
 * hv::Machines under a randomized write workload and check the
 * restored twin's contents word-for-word against the source.
 *
 * Shards follow the campaign discipline (src/check/): all randomness
 * comes from the shard's RNG stream, so any counterexample replays
 * bit-identically from (campaign seed, shard id) at any thread count.
 */

#ifndef HEV_MIGRATE_SCENARIOS_HH
#define HEV_MIGRATE_SCENARIOS_HH

#include "check/campaign.hh"
#include "hv/monitor.hh"

namespace hev::migrate
{

/** Sizing of the migration campaign workload. */
struct MigrateScenarioOptions
{
    int equivShards = 4;  //!< spec-side migration≡fold sweeps
    int liveShards = 4;   //!< concrete migrateLive content-oracle shards
    int itersPerShard = 6;
    /**
     * Injected monitor-level bugs forwarded to the live shards' source
     * machine (the kill suite runs with skipDirtyOnFinalRound on; the
     * content oracle must catch the stale page it ships).
     */
    hv::PlantedBugs monitorPlanted;
    /** Forensics destination for failing live shards ("" = env). */
    std::string forensicsPath;
};

/** The migration campaign scenario bag. */
std::vector<check::Scenario>
migrateScenarios(const MigrateScenarioOptions &opts = {});

} // namespace hev::migrate

#endif // HEV_MIGRATE_SCENARIOS_HH
