#include "migrate/scenarios.hh"

#include <array>
#include <map>
#include <optional>
#include <sstream>

#include "ccal/specs.hh"
#include "hv/machine.hh"
#include "migrate/migrate.hh"
#include "obs/flight.hh"

namespace hev::migrate
{
namespace
{

using namespace ccal;
using namespace ccal::spec;

/**
 * One randomized spec-side migration ≡ quiesced-fold instance: a
 * source enclave in a random lifecycle corner (mid-add, evicted,
 * removed, missing), a destination that may be busy or may already
 * hold the lineage in its ledger, fork or move — every combination
 * discharged by checkMigrateQuiescedFold, then chained one hop
 * further when the first migration lands.
 */
std::optional<std::string>
sweepEquivOnce(check::ShardContext &ctx)
{
    Rng &rng = ctx.rng();
    Geometry geo;
    geo.epcCount = 8 + rng.below(24);
    geo.frameCount = 32 + rng.below(32);
    FlatState src(geo);

    const u64 el_pages = 1 + rng.below(6);
    const u64 el_start = 0x10'0000;
    const IntResult init =
        specHcInit(src, el_start, el_start + (el_pages + 1) * pageSize,
                   0x50'0000, 1, 0x8000);
    if (!init.isOk)
        return std::nullopt;
    i64 target = i64(init.value);
    for (u64 i = 0; i < el_pages; ++i) {
        const i64 kind = (i + 1 == el_pages && rng.chance(1, 2))
                             ? epcStateTcs
                             : epcStateReg;
        if (specHcAddPage(src, target, el_start + i * pageSize,
                          0x4000 + (i % 4) * pageSize, kind) != 0)
            return std::nullopt;
    }

    // Lifecycle twist: most instances quiesce cleanly, the rest land
    // in each rejection corner of the snapshot contract.
    switch (rng.below(8)) {
    case 0:
        break; // still Adding: errBadState
    case 1:
        (void)specHcInitFinish(src, target);
        (void)specHcEvictPage(src, target, el_start); // errBadState
        break;
    case 2:
        (void)specHcInitFinish(src, target);
        target += 7; // errNoSuchEnclave
        break;
    case 3:
        (void)specHcInitFinish(src, target);
        (void)specHcRemove(src, target); // dead: errNoSuchEnclave
        break;
    default:
        (void)specHcInitFinish(src, target);
        break;
    }

    FlatState dst(geo);
    if (rng.chance(1, 3)) {
        // Busy twin host: the restored id must still match the fold's.
        (void)specHcInit(dst, 0x70'0000, 0x70'0000 + 2 * pageSize,
                         0x90'0000, 1, 0x8000);
    }
    const u64 measurement = 0x6ea5'0000 + rng.below(1000);
    if (rng.chance(1, 4)) {
        // The lineage already landed here once: both the restore and
        // the reference fold must reject the replay as rollback.
        dst.imageLedger[measurement] = 1 + rng.below(4);
    }
    const bool move = rng.chance(1, 2);

    const BatchEquivalence verdict =
        checkMigrateQuiescedFold(src, dst, target, move, measurement);
    ctx.tick();
    if (!verdict.equivalent) {
        std::ostringstream detail;
        detail << "migration/fold diverged (" << el_pages << " pages, "
               << (move ? "move" : "fork") << "): " << verdict.detail;
        return detail.str();
    }

    // Chain: actually run the migration, then check the next hop from
    // the twin (fresh lineage token) and a replay onto the same host.
    AbsImage img;
    if (specHcSnapshot(src, target, move, measurement, &img) != 0)
        return std::nullopt;
    const IntResult restored = specHcRestoreImage(dst, img);
    if (!restored.isOk)
        return std::nullopt;
    const BatchEquivalence onward = checkMigrateQuiescedFold(
        dst, FlatState(geo), i64(restored.value), rng.chance(1, 2),
        measurement + 1);
    ctx.tick();
    if (!onward.equivalent)
        return "onward hop diverged: " + onward.detail;
    if (!move) {
        const BatchEquivalence replay = checkMigrateQuiescedFold(
            src, dst, target, false, measurement);
        ctx.tick();
        if (!replay.equivalent)
            return "replay onto the twin diverged: " + replay.detail;
    }
    return std::nullopt;
}

hv::MonitorConfig
liveConfig(const hv::PlantedBugs &planted)
{
    hv::MonitorConfig cfg;
    cfg.layout.totalBytes = 32 * 1024 * 1024;
    cfg.layout.ptAreaBytes = 4 * 1024 * 1024;
    cfg.layout.epcBytes = 8 * 1024 * 1024;
    cfg.planted = planted;
    return cfg;
}

void
writeLiveForensics(const std::string &configured, const std::string &name,
                   const std::string &detail, u16 run_tag,
                   check::ShardContext &ctx)
{
    const std::string path = obs::forensicsPathOrEnv(configured);
    if (path.empty())
        return;
    obs::ForensicsBundle bundle;
    bundle.kind = "migrate-scenario";
    bundle.scenario = name;
    bundle.detail = detail;
    bundle.tail = obs::flightTail(run_tag);
    bundle.opName = [](u16 op) -> std::string {
        return op == flightOpMigrateRound ? "migrate_round" : "";
    };
    obs::writeForensicsBundle(bundle, path);
    ctx.attachArtifact(path);
}

/**
 * One randomized concrete live migration: a fork-mode migrateLive
 * between two machines under a write workload that keeps dirtying hot
 * pages into the final round, then a word-for-word comparison of every
 * resident page on both hosts (this is the oracle that catches the
 * planted skip-dirty-on-final-round bug: the restore succeeds — the
 * MACs were rebuilt over the stale words — but the twin's contents
 * diverge from the source).
 */
std::optional<std::string>
sweepLiveOnce(check::ShardContext &ctx, const hv::PlantedBugs &planted,
              const std::string &forensics, const std::string &name)
{
    Rng &rng = ctx.rng();
    hv::Machine src(liveConfig(planted));
    hv::Machine dst(liveConfig({}));

    const u64 el_start = 0x10'0000;
    const u64 pages = 2 + rng.below(7);
    auto enclave = src.setupEnclave(el_start, pages, 1, 0x9a0'0000);
    if (!enclave)
        return "source setup failed";
    const EnclaveId id = enclave->id;

    // Shadow model of every store the workload issues, so the oracle
    // knows the expected words without trusting either machine.
    std::map<u64, u64> written;
    const u64 hot = rng.below(pages);
    u64 seq = 0x517e'0000 + rng.below(1 << 16);
    auto workload = [&](u64 round) {
        // Always touch the hot page (so the final round has a dirty
        // set), plus a few random words elsewhere.
        const u64 extra = rng.below(3);
        for (u64 k = 0; k < 1 + extra; ++k) {
            const u64 page = k == 0 ? hot : rng.below(pages);
            const u64 word = rng.below(pageSize / sizeof(u64));
            const u64 va = el_start + page * pageSize +
                           word * sizeof(u64);
            const u64 value = seq++ + round;
            if (src.monitor().enclaveStore(id, Gva(va), value).ok())
                written[va] = value;
        }
    };

    MigrateOptions opts;
    opts.mode = hv::SnapshotMode::Fork;
    opts.maxPrecopyRounds = 1 + rng.below(4);
    const u16 tag = obs::newFlightRunTag();
    auto result = migrateLive(src, id, dst, workload, opts);
    ctx.tick();
    if (!result) {
        const std::string detail =
            std::string("migrateLive failed: ") +
            hvErrorName(result.error());
        writeLiveForensics(forensics, name, detail, tag, ctx);
        return detail;
    }

    // The content oracle: every word of every resident page must agree
    // between the fork source, the restored twin, and the shadow model.
    auto resident = src.monitor().enclaveResidentPages(id);
    if (!resident)
        return "fork source lost residency";
    std::array<u64, pageSize / sizeof(u64)> src_words{};
    std::array<u64, pageSize / sizeof(u64)> dst_words{};
    for (const Gva gva : *resident) {
        if (!src.monitor().enclaveReadPage(id, gva, src_words.data()) ||
            !dst.monitor().enclaveReadPage(result->dstId, gva,
                                           dst_words.data()))
            return "page readback failed";
        for (u64 w = 0; w < src_words.size(); ++w) {
            const u64 va = gva.value + w * sizeof(u64);
            if (const auto exp = written.find(va);
                exp != written.end() && src_words[w] != exp->second) {
                std::ostringstream detail;
                detail << "source lost a write at 0x" << std::hex
                       << va;
                return detail.str();
            }
            if (src_words[w] != dst_words[w]) {
                std::ostringstream detail;
                detail << "twin diverges at 0x" << std::hex << va
                       << ": src 0x" << src_words[w] << " vs dst 0x"
                       << dst_words[w] << std::dec << " ("
                       << result->precopyRounds << " pre-copy rounds, "
                       << result->downtimePages << " downtime pages)";
                writeLiveForensics(forensics, name, detail.str(), tag,
                                   ctx);
                return detail.str();
            }
        }
        ctx.tick();
    }
    return std::nullopt;
}

} // namespace

std::vector<check::Scenario>
migrateScenarios(const MigrateScenarioOptions &opts)
{
    std::vector<check::Scenario> scenarios;
    for (int i = 0; i < opts.equivShards; ++i) {
        check::Scenario scenario;
        scenario.name = "migrate/equiv/" + std::to_string(i);
        scenario.kind = "migrate";
        scenario.layer = 14;
        const int iters = opts.itersPerShard;
        scenario.body =
            [iters](check::ShardContext &ctx)
            -> std::optional<std::string> {
            for (int iter = 0; iter < iters; ++iter)
                if (auto failed = sweepEquivOnce(ctx))
                    return failed;
            return std::nullopt;
        };
        scenarios.push_back(std::move(scenario));
    }
    for (int i = 0; i < opts.liveShards; ++i) {
        check::Scenario scenario;
        scenario.name = "migrate/live/" + std::to_string(i);
        scenario.kind = "migrate";
        scenario.layer = 14;
        const int iters = opts.itersPerShard;
        const hv::PlantedBugs planted = opts.monitorPlanted;
        const std::string forensics = opts.forensicsPath;
        const std::string name = scenario.name;
        scenario.body =
            [iters, planted, forensics,
             name](check::ShardContext &ctx)
            -> std::optional<std::string> {
            for (int iter = 0; iter < iters; ++iter)
                if (auto failed =
                        sweepLiveOnce(ctx, planted, forensics, name))
                    return failed;
            return std::nullopt;
        };
        scenarios.push_back(std::move(scenario));
    }
    return scenarios;
}

} // namespace hev::migrate
