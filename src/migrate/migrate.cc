#include "migrate/migrate.hh"

#include <array>
#include <chrono>
#include <map>

namespace hev::migrate
{

namespace
{

using Clock = std::chrono::steady_clock;
using PageWords = std::array<u64, pageSize / sizeof(u64)>;

/** Pages staged on the "wire", keyed by enclave-linear address. */
using Staging = std::map<u64, PageWords>;

u64
nsSince(Clock::time_point t0)
{
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - t0)
                   .count());
}

/**
 * One wire transfer: read the page out of the source and checksum the
 * copy (the serialization cost a real transport pays per page).
 */
Status
transferPage(const hv::Monitor &mon, EnclaveId id, Gva gva,
             Staging &staged)
{
    PageWords &slot = staged[gva.value];
    if (auto st = mon.enclaveReadPage(id, gva, slot.data()); !st)
        return st;
    (void)hv::enclavePageDigest(slot.data());
    return okStatus();
}

/**
 * Seal the quiesced source and rebuild the image payloads from the
 * staged copies: every page's words come from the wire staging, so a
 * stale staged page (the planted skip-dirty bug) ships stale contents
 * under freshly recomputed, *valid* MACs — only a content oracle on
 * the restored twin can catch it.
 */
Expected<hv::EnclaveImage>
sealFromStaging(hv::Monitor &mon, EnclaveId id, hv::SnapshotMode mode,
                const Staging &staged)
{
    auto image = mon.hcEnclaveSnapshot(id, mode);
    if (!image)
        return image.error();
    for (u64 i = 0; i < image->pages.size(); ++i) {
        hv::SealedBlob &blob = image->pages[i];
        const auto it = staged.find(blob.gva.value);
        if (it == staged.end())
            continue; // never staged: keep the authoritative words
        if (blob.words != it->second) {
            blob.words = it->second;
            blob.mac = hv::sealedBlobMac(blob);
        }
        image->pageMeta[i].digest =
            hv::enclavePageDigest(blob.words.data());
    }
    image->mac = hv::enclaveImageMac(*image);
    return image;
}

void
recordRound(u16 tag, EnclaveId id, u64 round, u64 pages, u64 ns)
{
    obs::flightRecord(flightOpMigrateRound, round, pages, ns, u64(id),
                      0, u16(round), tag);
}

} // namespace

Expected<MigrateResult>
migrateLive(hv::Machine &src, EnclaveId id, hv::Machine &dst,
            const Workload &between_rounds, const MigrateOptions &opts)
{
    hv::Monitor &mon = src.monitor();
    const u16 tag = obs::newFlightRunTag();
    MigrateResult res;
    Staging staged;

    // Round 0: clear the tracking bits, then copy every resident page
    // while the source keeps running.  Clearing first means any write
    // landing after this point is re-copied by a later round.
    auto resident = mon.enclaveResidentPages(id);
    if (!resident)
        return resident.error();
    if (auto st = mon.clearEnclaveDirty(id, true); !st)
        return st.error();
    {
        const auto t0 = Clock::now();
        for (const Gva gva : *resident)
            if (auto st = transferPage(mon, id, gva, staged); !st)
                return st.error();
        const u64 ns = nsSince(t0);
        res.roundPages.push_back(resident->size());
        res.roundNs.push_back(ns);
        res.totalPagesCopied += resident->size();
        recordRound(tag, id, 0, resident->size(), ns);
    }

    // Iterative pre-copy: let the source run, re-copy what it wrote.
    // The loop exits into stop-and-copy when the dirty set is small
    // enough or the round budget is spent.
    u64 workSteps = 0;
    for (u64 round = 1; round <= opts.maxPrecopyRounds; ++round) {
        between_rounds(workSteps++);
        auto dirty = mon.enclaveDirtyPages(id);
        if (!dirty)
            return dirty.error();
        if (dirty->size() <= opts.dirtyThreshold ||
            round == opts.maxPrecopyRounds)
            break;
        if (auto st = mon.clearEnclaveDirty(id, true); !st)
            return st.error();
        const auto t0 = Clock::now();
        for (const Gva gva : *dirty)
            if (auto st = transferPage(mon, id, gva, staged); !st)
                return st.error();
        const u64 ns = nsSince(t0);
        res.roundPages.push_back(dirty->size());
        res.roundNs.push_back(ns);
        res.totalPagesCopied += dirty->size();
        ++res.precopyRounds;
        recordRound(tag, id, round, dirty->size(), ns);
    }

    res.workloadSteps = workSteps;

    // Stop-and-copy: the source is paused from here on.  Only the
    // residual dirty set crosses the wire inside the downtime window.
    auto final_dirty = mon.enclaveDirtyPages(id);
    if (!final_dirty)
        return final_dirty.error();
    const bool skip_final = mon.config().planted.skipDirtyOnFinalRound;
    {
        const auto t0 = Clock::now();
        if (!skip_final) {
            for (const Gva gva : *final_dirty)
                if (auto st = transferPage(mon, id, gva, staged); !st)
                    return st.error();
            res.downtimePages = final_dirty->size();
            res.totalPagesCopied += final_dirty->size();
        }
        res.downtimeNs = nsSince(t0);
        res.roundPages.push_back(res.downtimePages);
        res.roundNs.push_back(res.downtimeNs);
        recordRound(tag, id, res.precopyRounds + 1, res.downtimePages,
                    res.downtimeNs);
    }

    // Switchover: seal, rebuild from staging, restore on the twin.
    const auto s0 = Clock::now();
    auto image = sealFromStaging(mon, id, opts.mode, staged);
    if (!image)
        return image.error();
    auto dst_id = dst.monitor().hcEnclaveRestoreImage(*image);
    if (!dst_id)
        return dst_id.error();
    res.switchoverNs = nsSince(s0);
    res.dstId = *dst_id;
    return res;
}

Expected<MigrateResult>
migrateStopAndCopy(hv::Machine &src, EnclaveId id, hv::Machine &dst,
                   const Workload &workload, u64 rounds,
                   const MigrateOptions &opts)
{
    hv::Monitor &mon = src.monitor();
    const u16 tag = obs::newFlightRunTag();
    MigrateResult res;
    Staging staged;

    // The whole workload runs first: same final source state as the
    // live path, but nothing has been transferred yet.
    for (u64 i = 0; i < rounds; ++i)
        workload(i);
    res.workloadSteps = rounds;

    // Stop the source and transfer everything inside the window.
    auto resident = mon.enclaveResidentPages(id);
    if (!resident)
        return resident.error();
    {
        const auto t0 = Clock::now();
        for (const Gva gva : *resident)
            if (auto st = transferPage(mon, id, gva, staged); !st)
                return st.error();
        res.downtimeNs = nsSince(t0);
    }
    res.downtimePages = resident->size();
    res.totalPagesCopied = resident->size();
    res.roundPages.push_back(resident->size());
    res.roundNs.push_back(res.downtimeNs);
    recordRound(tag, id, 0, res.downtimePages, res.downtimeNs);

    const auto s0 = Clock::now();
    auto image = sealFromStaging(mon, id, opts.mode, staged);
    if (!image)
        return image.error();
    auto dst_id = dst.monitor().hcEnclaveRestoreImage(*image);
    if (!dst_id)
        return dst_id.error();
    res.switchoverNs = nsSince(s0);
    res.dstId = *dst_id;
    return res;
}

} // namespace hev::migrate
