/**
 * @file
 * Live enclave migration on top of the snapshot/restore hypercalls.
 *
 * The engine moves an Initialized enclave from a source hv::Machine to
 * a twin host with iterative pre-copy: while the source keeps running
 * (modeled by a caller-supplied workload invoked between rounds), page
 * contents are staged across the "wire"; the dirty-bit tracking in the
 * GPT/EPT walkers tells each round which pages were written since the
 * last copy.  When the dirty set stops shrinking (or the round bound
 * hits), the source is paused: the final dirty pages are re-staged,
 * the enclave is sealed into an EnclaveImage via hcEnclaveSnapshot,
 * the image's page payloads are rebuilt from the staged copies (MACs
 * and digests recomputed), and the twin host restores it.
 *
 * Downtime accounting: `downtimeNs`/`downtimePages` cover the wire
 * transfers performed while the source is stopped — the quantity
 * pre-copy exists to shrink (stop-and-copy transfers every page in
 * that window; pre-copy only the final dirty set).  The local
 * image-activation mechanics (snapshot + restore), paid identically by
 * both strategies, are reported separately as `switchoverNs`.  See
 * docs/MIGRATION.md.
 */

#ifndef HEV_MIGRATE_MIGRATE_HH
#define HEV_MIGRATE_MIGRATE_HH

#include <functional>
#include <vector>

#include "hv/machine.hh"
#include "obs/flight.hh"

namespace hev::migrate
{

/** Flight-recorder op id of one migration round span. */
constexpr u16 flightOpMigrateRound = obs::flightOpBase + 2;

/** Tuning knobs for one migration. */
struct MigrateOptions
{
    /** Bound on dirty-set re-copy rounds after the full round 0. */
    u64 maxPrecopyRounds = 8;
    /** Stop pre-copying early once the dirty set is this small. */
    u64 dirtyThreshold = 0;
    /** Move destroys the source (migration); Fork keeps it (clone). */
    hv::SnapshotMode mode = hv::SnapshotMode::Move;
};

/** What one migration did, round by round. */
struct MigrateResult
{
    EnclaveId dstId = invalidEnclave;
    /** Dirty re-copy rounds run (excludes the full round 0). */
    u64 precopyRounds = 0;
    /** Workload invocations made; feed to migrateStopAndCopy's
     *  `rounds` for an identical final source state. */
    u64 workloadSteps = 0;
    /** Pages transferred per round; index 0 is the full copy. */
    std::vector<u64> roundPages;
    /** Wire-transfer nanoseconds per round, same indexing. */
    std::vector<u64> roundNs;
    u64 totalPagesCopied = 0;
    /** Pages transferred while the source was stopped. */
    u64 downtimePages = 0;
    /** Wire-transfer time while the source was stopped. */
    u64 downtimeNs = 0;
    /** Image activation (snapshot + restore), common to both paths. */
    u64 switchoverNs = 0;
};

/**
 * The source enclave "running" between pre-copy rounds: called with
 * the round number about to start; typically issues
 * Monitor::enclaveStore writes, which stamp the dirty bits the next
 * round reads.
 */
using Workload = std::function<void(u64 round)>;

/**
 * Iteratively pre-copy enclave `id` from `src` to `dst`, then
 * stop-and-copy the residual dirty set.  Returns the restored twin's
 * id on `dst`; in Move mode the source enclave is destroyed (Dead,
 * evictions recorded) exactly as a quiesced evict-all + remove would
 * leave it.
 */
Expected<MigrateResult> migrateLive(hv::Machine &src, EnclaveId id,
                                    hv::Machine &dst,
                                    const Workload &between_rounds,
                                    const MigrateOptions &opts = {});

/**
 * The baseline strategy: run the same workload schedule to produce an
 * identical final source state, then transfer every page inside the
 * stop-the-world window.  `rounds` controls how many workload steps
 * run before the pause (match the live run's `workloadSteps` for a
 * fair downtime comparison).
 */
Expected<MigrateResult> migrateStopAndCopy(hv::Machine &src,
                                           EnclaveId id,
                                           hv::Machine &dst,
                                           const Workload &workload,
                                           u64 rounds,
                                           const MigrateOptions &opts = {});

} // namespace hev::migrate

#endif // HEV_MIGRATE_MIGRATE_HH
