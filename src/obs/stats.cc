#include "obs/stats.hh"

#include <bit>
#include <sstream>
#include <vector>

#include "support/logging.hh"
#include "support/thread_annotations.hh"

namespace hev::obs
{

namespace detail
{
std::atomic<bool> statsFlag{true};
std::atomic<bool> traceFlag{false};
std::atomic<bool> flightFlag{true};
} // namespace detail

void
setStatsEnabled(bool on)
{
    detail::statsFlag.store(on, std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
#if HEV_OBS_TRACE
    detail::traceFlag.store(on, std::memory_order_relaxed);
#else
    if (on)
        warn("tracing requested but compiled out (HEV_OBS_TRACE=0)");
#endif
}

void
setFlightEnabled(bool on)
{
#if HEV_OBS_FLIGHT
    detail::flightFlag.store(on, std::memory_order_relaxed);
#else
    if (on)
        warn("flight recorder requested but compiled out "
             "(HEV_OBS_FLIGHT=0)");
#endif
}

u32
HistogramData::bucketOf(u64 value)
{
    return value == 0 ? 0 : u32(64 - std::countl_zero(value));
}

u64
HistogramData::bucketLow(u32 bucket)
{
    return bucket == 0 ? 0 : 1ull << (bucket - 1);
}

u64
HistogramData::bucketHigh(u32 bucket)
{
    if (bucket == 0)
        return 1;
    return bucket >= 64 ? 0 : 1ull << bucket;
}

double
HistogramData::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    if (p <= 0.0)
        return double(min);
    if (p >= 100.0)
        return double(max);
    // Rank of the requested sample, 1-based, in [1, count].
    const double rank = p / 100.0 * double(count);
    u64 seen = 0;
    for (u32 b = 0; b < histBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        const u64 before = seen;
        seen += buckets[b];
        if (double(seen) < rank)
            continue;
        const double low = double(bucketLow(b));
        const double high = bucketHigh(b) == 0
                                ? 18446744073709551616.0 // 2^64
                                : double(bucketHigh(b));
        const double within =
            (rank - double(before)) / double(buckets[b]);
        double value = low + (high - low) * within;
        // The true extremes are recorded exactly; use them to clamp
        // away the interpolation slack at the edge buckets.
        if (value < double(min))
            value = double(min);
        if (value > double(max))
            value = double(max);
        return value;
    }
    return double(max);
}

void
HistogramData::merge(const HistogramData &other)
{
    if (other.count == 0)
        return;
    count += other.count;
    sum += other.sum;
    if (other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    for (u32 i = 0; i < histBuckets; ++i)
        buckets[i] += other.buckets[i];
}

HistogramData
HistogramData::minus(const HistogramData &earlier) const
{
    HistogramData delta;
    delta.count = count - earlier.count;
    delta.sum = sum - earlier.sum;
    // Extremes are not subtractable; keep the cumulative ones, which
    // still bound every value in the interval.
    delta.min = min;
    delta.max = max;
    for (u32 i = 0; i < histBuckets; ++i)
        delta.buckets[i] = buckets[i] - earlier.buckets[i];
    return delta;
}

namespace
{

/**
 * One thread's private slice of every counter and histogram.  Only
 * the owning thread writes (relaxed stores); snapshots from other
 * threads read with relaxed loads, so merged totals are exact once
 * the writers are quiescent and monotonically convergent while they
 * run.
 */
struct Shard
{
    std::array<std::atomic<u64>, maxCounters> counters{};

    struct HistSlots
    {
        std::atomic<u64> count{0};
        std::atomic<u64> sum{0};
        std::atomic<u64> min{~0ull};
        std::atomic<u64> max{0};
        std::array<std::atomic<u64>, histBuckets> buckets{};
    };
    std::array<HistSlots, maxHistograms> hists;

    Shard();
    ~Shard();
};

/** Everything behind the registry mutex. */
struct Registry
{
    Mutex mu;
    std::vector<std::string> counterNames HEV_GUARDED_BY(mu);
    std::vector<std::string> gaugeNames HEV_GUARDED_BY(mu);
    std::vector<std::string> histNames HEV_GUARDED_BY(mu);
    /** Lock-free by design: gauge writes never take mu. */
    std::array<std::atomic<i64>, maxGauges> gauges{};
    std::vector<Shard *> shards HEV_GUARDED_BY(mu);
    /** Totals of shards whose threads have exited. */
    std::vector<u64> retiredCounters HEV_GUARDED_BY(mu);
    std::vector<HistogramData> retiredHists HEV_GUARDED_BY(mu);
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Add a shard's current contents into merge targets (lock held). */
void
foldShard(const Shard &shard, std::vector<u64> &counters,
          std::vector<HistogramData> &hists)
{
    for (size_t i = 0; i < counters.size(); ++i)
        counters[i] += shard.counters[i].load(std::memory_order_relaxed);
    for (size_t i = 0; i < hists.size(); ++i) {
        const Shard::HistSlots &slots = shard.hists[i];
        HistogramData data;
        data.count = slots.count.load(std::memory_order_relaxed);
        if (data.count == 0)
            continue;
        data.sum = slots.sum.load(std::memory_order_relaxed);
        data.min = slots.min.load(std::memory_order_relaxed);
        data.max = slots.max.load(std::memory_order_relaxed);
        for (u32 b = 0; b < histBuckets; ++b)
            data.buckets[b] =
                slots.buckets[b].load(std::memory_order_relaxed);
        hists[i].merge(data);
    }
}

Shard::Shard()
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    reg.shards.push_back(this);
}

Shard::~Shard()
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    reg.retiredCounters.resize(reg.counterNames.size(), 0);
    reg.retiredHists.resize(reg.histNames.size());
    foldShard(*this, reg.retiredCounters, reg.retiredHists);
    std::erase(reg.shards, this);
}

Shard &
localShard()
{
    thread_local Shard shard;
    return shard;
}

u32
intern(std::vector<std::string> &names, const char *name, u32 cap,
       const char *what)
{
    for (u32 i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return i;
    }
    if (names.size() >= cap)
        panic("too many %s stats (%u): cannot intern '%s'; raise the "
              "obs shard capacity",
              what, cap, name);
    names.emplace_back(name);
    return u32(names.size() - 1);
}

} // namespace

Counter::Counter(const char *name)
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    slot = intern(reg.counterNames, name, maxCounters, "counter");
}

void
Counter::add(u64 n) const
{
    if (!statsEnabled())
        return;
    // Thread-private slot: a relaxed load+store is exact without the
    // cost of an RMW instruction.
    std::atomic<u64> &cell = localShard().counters[slot];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

Gauge::Gauge(const char *name)
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    slot = intern(reg.gaugeNames, name, maxGauges, "gauge");
}

void
Gauge::set(i64 value) const
{
    if (!statsEnabled())
        return;
    registry().gauges[slot].store(value, std::memory_order_relaxed);
}

void
Gauge::add(i64 delta) const
{
    if (!statsEnabled())
        return;
    registry().gauges[slot].fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(const char *name)
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    slot = intern(reg.histNames, name, maxHistograms, "histogram");
}

void
Histogram::record(u64 value) const
{
    if (!statsEnabled())
        return;
    Shard::HistSlots &slots = localShard().hists[slot];
    const auto relaxed = std::memory_order_relaxed;
    slots.count.store(slots.count.load(relaxed) + 1, relaxed);
    slots.sum.store(slots.sum.load(relaxed) + value, relaxed);
    if (value < slots.min.load(relaxed))
        slots.min.store(value, relaxed);
    if (value > slots.max.load(relaxed))
        slots.max.store(value, relaxed);
    std::atomic<u64> &bucket =
        slots.buckets[HistogramData::bucketOf(value)];
    bucket.store(bucket.load(relaxed) + 1, relaxed);
}

Snapshot
snapshotStats()
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);

    std::vector<u64> counters(reg.counterNames.size(), 0);
    std::vector<HistogramData> hists(reg.histNames.size());
    for (size_t i = 0;
         i < reg.retiredCounters.size() && i < counters.size(); ++i)
        counters[i] = reg.retiredCounters[i];
    for (size_t i = 0; i < reg.retiredHists.size() && i < hists.size();
         ++i)
        hists[i] = reg.retiredHists[i];
    for (const Shard *shard : reg.shards)
        foldShard(*shard, counters, hists);

    Snapshot snap;
    for (size_t i = 0; i < reg.counterNames.size(); ++i)
        snap.counters[reg.counterNames[i]] = counters[i];
    for (size_t i = 0; i < reg.gaugeNames.size(); ++i)
        snap.gauges[reg.gaugeNames[i]] =
            reg.gauges[i].load(std::memory_order_relaxed);
    for (size_t i = 0; i < reg.histNames.size(); ++i)
        snap.histograms[reg.histNames[i]] = hists[i];
    return snap;
}

void
resetStats()
{
    Registry &reg = registry();
    MutexGuard lock(reg.mu);
    reg.retiredCounters.assign(reg.counterNames.size(), 0);
    reg.retiredHists.assign(reg.histNames.size(), HistogramData{});
    for (auto &gauge : reg.gauges)
        gauge.store(0, std::memory_order_relaxed);
    for (Shard *shard : reg.shards) {
        for (auto &cell : shard->counters)
            cell.store(0, std::memory_order_relaxed);
        for (auto &slots : shard->hists) {
            slots.count.store(0, std::memory_order_relaxed);
            slots.sum.store(0, std::memory_order_relaxed);
            slots.min.store(~0ull, std::memory_order_relaxed);
            slots.max.store(0, std::memory_order_relaxed);
            for (auto &bucket : slots.buckets)
                bucket.store(0, std::memory_order_relaxed);
        }
    }
}

Snapshot
Snapshot::minus(const Snapshot &earlier) const
{
    Snapshot delta = *this;
    for (auto &[name, value] : delta.counters) {
        auto it = earlier.counters.find(name);
        if (it != earlier.counters.end())
            value -= it->second;
    }
    for (auto &[name, hist] : delta.histograms) {
        auto it = earlier.histograms.find(name);
        if (it != earlier.histograms.end())
            hist = hist.minus(it->second);
    }
    return delta;
}

std::string
renderStatsJson(const Snapshot &snap, const std::string &indent)
{
    std::ostringstream out;
    const std::string in1 = indent + "  ";
    const std::string in2 = in1 + "  ";

    out << "{\n" << in1 << "\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        out << (first ? "" : ",") << "\n"
            << in2 << "\"" << name << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "},\n";

    out << in1 << "\"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        out << (first ? "" : ",") << "\n"
            << in2 << "\"" << name << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "},\n";

    out << in1 << "\"histograms\": {";
    first = true;
    for (const auto &[name, hist] : snap.histograms) {
        out << (first ? "" : ",") << "\n"
            << in2 << "\"" << name << "\": {\"count\": " << hist.count
            << ", \"sum\": " << hist.sum << ", \"mean\": " << hist.mean()
            << ", \"min\": " << (hist.count ? hist.min : 0)
            << ", \"max\": " << hist.max << ", \"buckets\": {";
        bool firstBucket = true;
        for (u32 b = 0; b < histBuckets; ++b) {
            if (hist.buckets[b] == 0)
                continue;
            out << (firstBucket ? "" : ", ") << "\""
                << HistogramData::bucketLow(b) << "\": "
                << hist.buckets[b];
            firstBucket = false;
        }
        out << "}}";
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "}\n" << indent << "}";
    return out.str();
}

} // namespace hev::obs
