/**
 * @file
 * The crash flight recorder: an always-on, lock-free per-thread ring
 * of the most recent operations, plus the forensics-bundle dump path
 * used when an invariant, oracle or refinement check fails.
 *
 * Unlike the event tracer (opt-in, detailed, wide rings), the flight
 * recorder is *on by default* and deliberately tiny: one 64-byte
 * record — a single cache-line store — per operation, 256 records per
 * thread.  Its job is not profiling but forensics: when a failure
 * surfaces deep inside a campaign, fuzz run or SMP storm, the ring
 * still holds the last few hundred operations that led there, with
 * raw arguments, so the tail can be re-serialized as a fuzz trace and
 * replayed/shrunk directly.
 *
 * Records carry a 16-bit run tag: each executor run draws a fresh tag
 * from newFlightRunTag() and stamps every record with it, so a tail
 * reconstruction never picks up records of an earlier execution that
 * happen to survive in the ring.  Writers only ever touch their own
 * ring (plain stores + one release store of the head); collection
 * walks every ring — live and retired — under the registry mutex,
 * exactly like the tracer.
 *
 * Compile-out via -DHEV_OBS_FLIGHT=0 mirrors HEV_OBS_TRACE; the
 * runtime default is merely *enabled* (one relaxed load when off).
 */

#ifndef HEV_OBS_FLIGHT_HH
#define HEV_OBS_FLIGHT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hh"

namespace hev::obs
{

/** Version of the forensics-bundle JSON schema. */
constexpr int forensicsSchemaVersion = 1;

/** Records per thread ring; wraparound drops the oldest. */
constexpr u32 flightRingCapacity = 256;

/** FlightRecord::flags bit: the record re-serializes as a fuzz op. */
constexpr u8 flightReplayable = 0x1;

/**
 * First op id of the informational (non-fuzz) id space.  Ids below
 * this are fuzz OpKind values and replayable; ids at or above it name
 * subsystem-private steps (SMP scenario actor moves, campaign marks).
 */
constexpr u16 flightOpBase = 0x40;

/** One recorded operation: exactly one cache line. */
struct alignas(64) FlightRecord
{
    u64 ts = 0;     //!< ns since the trace epoch (traceNowNs)
    u64 a = 0;      //!< raw op arguments — kept raw so the tail
    u64 b = 0;      //!< re-serializes as a replayable fuzz trace;
    u64 c = 0;      //!< the JSON dump adds an FNV digest over them
    u64 d = 0;
    u64 result = 0; //!< folded outcome code of the op
    u16 op = 0;     //!< fuzz OpKind, or flightOpBase+ subsystem id
    u16 step = 0;   //!< op index / schedule step within the run
    u16 runTag = 0; //!< execution tag from newFlightRunTag()
    u8 vcpu = 0;    //!< issuing vCPU
    u8 flags = 0;   //!< flightReplayable, ...
};

static_assert(sizeof(FlightRecord) == 64,
              "a flight record must be one cache-line store");

/** One thread's collected slice of the flight ring. */
struct FlightDump
{
    u32 tid = 0;     //!< small stable id, assigned per thread
    u64 dropped = 0; //!< records lost to ring wraparound
    std::vector<FlightRecord> records; //!< in emission order
};

namespace detail
{
void flightRecordSlow(const FlightRecord &record);
} // namespace detail

/**
 * Draw a fresh nonzero run tag (wraps within 16 bits, skipping 0).
 * One per trace execution / scenario body.
 */
u16 newFlightRunTag();

/** Record one operation (no-op unless the recorder is enabled). */
inline void
flightRecord(u16 op, u64 a, u64 b, u64 c, u64 d, u64 result, u16 step,
             u16 run_tag, u8 vcpu = 0, u8 flags = 0)
{
#if HEV_OBS_FLIGHT
    if (flightEnabled()) {
        FlightRecord record;
        record.a = a;
        record.b = b;
        record.c = c;
        record.d = d;
        record.result = result;
        record.op = op;
        record.step = step;
        record.runTag = run_tag;
        record.vcpu = vcpu;
        record.flags = flags;
        detail::flightRecordSlow(record);
    }
#else
    (void)op; (void)a; (void)b; (void)c; (void)d; (void)result;
    (void)step; (void)run_tag; (void)vcpu; (void)flags;
#endif
}

/** Snapshot every ring (live and retired), per thread in order. */
std::vector<FlightDump> collectFlight();

/** Drop all recorded operations (live rings and retired ones). */
void clearFlight();

/**
 * The recorded tail: records of every ring filtered by run tag (0 =
 * keep all), capped at the newest `last_per_thread` per ring (0 = no
 * cap), merged across threads in timestamp order (stable, so a
 * thread's own records keep their emission order on ties).
 */
std::vector<FlightRecord> flightTail(u16 run_tag = 0,
                                     u64 last_per_thread = 0);

/** FNV-1a digest over a record's four raw arguments. */
u64 flightArgsDigest(const FlightRecord &record);

/**
 * A self-contained failure dump.  Rendered as one JSON object
 * carrying provenance (schema version, git SHA), the failure
 * coordinates, state digests computed by the caller at the failure
 * site, the current stats snapshot, the merged flight tail, and — for
 * executor failures — a replayable `hev-trace v1` serialization of
 * the tail that hev_fuzz replay/shrink consume directly.
 */
struct ForensicsBundle
{
    std::string kind;     //!< "fuzz" | "smp-fuzz" | "campaign" | ...
    std::string detail;   //!< the oracle's failure message
    std::string scenario; //!< scenario / trace-source name (optional)
    u64 failedOp = 0;     //!< index of the failing op
    /** Caller-computed state digests ("epcm", "tlb.v0", ...). */
    std::map<std::string, u64> digests;
    /** The merged flight tail (see flightTail). */
    std::vector<FlightRecord> tail;
    /** Replayable trace text ("hev-trace v1\n..."); may be empty. */
    std::string traceTail;
    /** Optional op-id pretty printer; ids print as "op<N>" without. */
    std::function<std::string(u16)> opName;
};

/** Render the bundle as JSON (stats snapshot taken here). */
std::string renderForensicsJson(const ForensicsBundle &bundle);

/**
 * Write the bundle to `path` and, when traceTail is nonempty, the
 * raw trace text to `path + ".trace"` so the tail replays without any
 * JSON unwrapping:  hev_fuzz replay <path>.trace
 */
bool writeForensicsBundle(const ForensicsBundle &bundle,
                          const std::string &path);

/**
 * The forensics destination: `configured` if nonempty, else the
 * HEV_FORENSICS environment variable, else "" (emission disabled).
 * Lets campaigns and tests opt whole process trees in without
 * threading a path through every options struct.
 */
std::string forensicsPathOrEnv(const std::string &configured);

} // namespace hev::obs

#endif // HEV_OBS_FLIGHT_HH
