/**
 * @file
 * Structured event tracer: a fixed-capacity per-thread ring buffer of
 * typed events, exportable as Chrome trace_event JSON for
 * chrome://tracing (or Perfetto).
 *
 * Writers append to their own ring with plain stores plus one release
 * store of the head index; no locks, no allocation, wraparound
 * overwrites the oldest events (the drop count is kept).  Collection
 * walks every ring under the tracer mutex and is exact once the
 * traced threads are quiescent — the intended use: export after a
 * run.  Rings of exited threads are retired into the collector, so a
 * campaign's worker events survive the join.
 *
 * Event names are interned by content into tracer-owned storage, so
 * call sites may pass transient strings (scenario names, MIR function
 * names) without lifetime concerns.  Interning happens only on the
 * traceEnabled() path.
 */

#ifndef HEV_OBS_TRACE_HH
#define HEV_OBS_TRACE_HH

#include <map>
#include <string>
#include <vector>

#include "obs/obs.hh"

namespace hev::obs
{

/** Version of the exported trace-event schema (2: SMP flow events). */
constexpr int traceSchemaVersion = 2;

/** Events per thread ring; wraparound drops the oldest. */
constexpr u32 traceRingCapacity = 16384;

/** The typed events the subsystems emit. */
enum class EventType : u8
{
    HypercallEnter,       //!< duration begin; arg0 = principal
    HypercallExit,        //!< duration end; arg0 = principal, arg1 = rc
    MirCall,              //!< duration begin; arg0 = layer (0 unknown)
    MirReturn,            //!< duration end; arg1 = 0 ok / 1 trap
    PtWalk,               //!< instant; arg0 = resolved level, arg1 = va
    TlbHit,               //!< instant; arg0 = domain
    TlbMiss,              //!< instant; arg0 = domain
    ScenarioStart,        //!< duration begin; arg0 = shard id
    ScenarioFinish,       //!< duration end; arg0 = shard, arg1 = checks
    CounterexampleFound,  //!< instant; arg0 = shard, arg1 = iteration
    TimerScope,           //!< complete (has dur); from ScopedTimer
    FuzzExec,             //!< instant; arg0 = exec index, arg1 = ops
    FuzzCorpusAdd,        //!< instant; arg0 = corpus size, arg1 = features
    FuzzDivergence,       //!< instant; arg0 = exec index, arg1 = failing op
    ShootdownBegin,       //!< duration begin; arg0 = domain, arg1 = gen
    ShootdownEnd,         //!< duration end; arg0 = domain, arg1 = gen
    IpiPost,              //!< flow start "s"; arg0 = span id, arg1 = target
    IpiDeliver,           //!< flow step "t"; arg0 = span id, arg1 = target
    IpiAck,               //!< flow finish "f"; arg0 = span id, arg1 = gen
};

constexpr u32 eventTypeCount = 19;

/** Stable lower-case name ("hypercall_enter", ...). */
const char *eventTypeName(EventType type);

/** Chrome trace_event category the type maps to. */
const char *eventTypeCategory(EventType type);

/** One recorded event.  `name` points into tracer-owned storage. */
struct TraceEvent
{
    u64 ts = 0;   //!< ns since the trace epoch
    u64 dur = 0;  //!< ns; only TimerScope uses it
    const char *name = nullptr;
    u64 arg0 = 0;
    u64 arg1 = 0;
    EventType type = EventType::TimerScope;
};

/** One thread's collected slice of the trace. */
struct ThreadTrace
{
    u32 tid = 0;          //!< small stable id, assigned per thread
    u64 dropped = 0;      //!< events lost to ring wraparound
    std::vector<TraceEvent> events; //!< in emission order
};

namespace detail
{
void traceEventSlow(EventType type, const char *name, u64 arg0,
                    u64 arg1, u64 ts, u64 dur);
} // namespace detail

/** Nanoseconds since the process's trace epoch (monotonic). */
u64 traceNowNs();

/** Record an event now (no-op unless tracing is enabled). */
inline void
traceEvent(EventType type, const char *name, u64 arg0 = 0, u64 arg1 = 0)
{
#if HEV_OBS_TRACE
    if (traceEnabled())
        detail::traceEventSlow(type, name, arg0, arg1, 0, 0);
#else
    (void)type; (void)name; (void)arg0; (void)arg1;
#endif
}

/** Record a complete (begin+duration) event. */
inline void
traceComplete(EventType type, const char *name, u64 start_ns, u64 dur_ns,
              u64 arg0 = 0, u64 arg1 = 0)
{
#if HEV_OBS_TRACE
    if (traceEnabled())
        detail::traceEventSlow(type, name, arg0, arg1, start_ns, dur_ns);
#else
    (void)type; (void)name; (void)start_ns; (void)dur_ns;
    (void)arg0; (void)arg1;
#endif
}

/** Snapshot every ring (live and retired), per thread in order. */
std::vector<ThreadTrace> collectTrace();

/** Drop all recorded events (live rings and retired ones). */
void clearTrace();

/** Event counts by type name over a collected trace. */
std::map<std::string, u64>
countEventsByType(const std::vector<ThreadTrace> &trace);

/**
 * Total events ever recorded, by type name, since process start (or
 * the last clearTrace()).  Unlike countEventsByType over a collected
 * trace, these totals are immune to ring wraparound: diff them around
 * a run for exact per-type activity.
 */
std::map<std::string, u64> traceEventTotals();

/**
 * Render Chrome trace_event JSON: {"schemaVersion", "displayTimeUnit",
 * "traceEvents": [...]}.  Begin/end types map to "B"/"E" phases,
 * instants to "i", TimerScope to complete "X" events, and the IPI
 * causality events to flow phases "s"/"t"/"f" carrying their span in
 * "id" (so chrome://tracing draws initiator -> IPI -> ack arrows);
 * `ts` is microseconds with ns precision, monotonic per tid.
 */
std::string renderChromeTrace(const std::vector<ThreadTrace> &trace);

/** collectTrace + renderChromeTrace into a file. */
bool writeChromeTrace(const std::string &path);

} // namespace hev::obs

#endif // HEV_OBS_TRACE_HH
