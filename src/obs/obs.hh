/**
 * @file
 * Umbrella header and runtime switches of the observability layer.
 *
 * Everything in src/obs is pay-for-what-you-use: the fast path of a
 * disabled subsystem is one relaxed atomic load and a predictable
 * branch.  Stats (counters, gauges, histograms) default to on — they
 * are per-thread sharded and lock-free, so campaign workers never
 * contend — while event tracing defaults to off and can additionally
 * be compiled out entirely with -DHEV_OBS_TRACE=0 (the CMake option
 * HEV_OBS_TRACE wires this like HEV_SANITIZE).
 */

#ifndef HEV_OBS_OBS_HH
#define HEV_OBS_OBS_HH

#include <atomic>

#include "support/types.hh"

/** Compile-time kill switch for the tracer (1 = compiled in). */
#ifndef HEV_OBS_TRACE
#define HEV_OBS_TRACE 1
#endif

/** Compile-time kill switch for the flight recorder (1 = in). */
#ifndef HEV_OBS_FLIGHT
#define HEV_OBS_FLIGHT 1
#endif

namespace hev::obs
{

namespace detail
{
extern std::atomic<bool> statsFlag;
extern std::atomic<bool> traceFlag;
extern std::atomic<bool> flightFlag;
} // namespace detail

/** Whether the tracer exists in this build at all. */
constexpr bool traceCompiledIn = HEV_OBS_TRACE != 0;

/** Whether the flight recorder exists in this build at all. */
constexpr bool flightCompiledIn = HEV_OBS_FLIGHT != 0;

/** Stats recording switch (default on; counters are near-free). */
inline bool
statsEnabled()
{
    return detail::statsFlag.load(std::memory_order_relaxed);
}

void setStatsEnabled(bool on);

/** Tracing switch (default off; the check is one relaxed load). */
inline bool
traceEnabled()
{
#if HEV_OBS_TRACE
    return detail::traceFlag.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void setTraceEnabled(bool on);

/**
 * Flight-recorder switch (default on: the ring is the crash history
 * and must already be populated when a failure surfaces; the cost per
 * op is one cache-line store).  The check is one relaxed load.
 */
inline bool
flightEnabled()
{
#if HEV_OBS_FLIGHT
    return detail::flightFlag.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void setFlightEnabled(bool on);

} // namespace hev::obs

#endif // HEV_OBS_OBS_HH
