/**
 * @file
 * Umbrella header and runtime switches of the observability layer.
 *
 * Everything in src/obs is pay-for-what-you-use: the fast path of a
 * disabled subsystem is one relaxed atomic load and a predictable
 * branch.  Stats (counters, gauges, histograms) default to on — they
 * are per-thread sharded and lock-free, so campaign workers never
 * contend — while event tracing defaults to off and can additionally
 * be compiled out entirely with -DHEV_OBS_TRACE=0 (the CMake option
 * HEV_OBS_TRACE wires this like HEV_SANITIZE).
 */

#ifndef HEV_OBS_OBS_HH
#define HEV_OBS_OBS_HH

#include <atomic>

#include "support/types.hh"

/** Compile-time kill switch for the tracer (1 = compiled in). */
#ifndef HEV_OBS_TRACE
#define HEV_OBS_TRACE 1
#endif

namespace hev::obs
{

namespace detail
{
extern std::atomic<bool> statsFlag;
extern std::atomic<bool> traceFlag;
} // namespace detail

/** Whether the tracer exists in this build at all. */
constexpr bool traceCompiledIn = HEV_OBS_TRACE != 0;

/** Stats recording switch (default on; counters are near-free). */
inline bool
statsEnabled()
{
    return detail::statsFlag.load(std::memory_order_relaxed);
}

void setStatsEnabled(bool on);

/** Tracing switch (default off; the check is one relaxed load). */
inline bool
traceEnabled()
{
#if HEV_OBS_TRACE
    return detail::traceFlag.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void setTraceEnabled(bool on);

} // namespace hev::obs

#endif // HEV_OBS_OBS_HH
