/**
 * @file
 * The stats registry: named monotonic counters, gauges and
 * log2-bucketed histograms, in the gem5 stats spirit.
 *
 * Counters and histograms are *sharded per thread*: every thread owns
 * a private slot array indexed by the stat's interned id, increments
 * are relaxed loads/stores on thread-private cache lines (no RMW, no
 * lock), and a snapshot merges the retired accumulator with every
 * live shard.  Interning a name (constructing a Counter/Histogram
 * handle) is the only operation that takes the registry mutex, so
 * instrumentation sites hoist handles into static locals.
 *
 * Gauges are level values ("live enclaves", "TLB entries"); sharding
 * a last-write-wins quantity is meaningless, so they are single
 * global atomics — still lock-free, just not per-thread.
 */

#ifndef HEV_OBS_STATS_HH
#define HEV_OBS_STATS_HH

#include <array>
#include <map>
#include <string>

#include "obs/obs.hh"

namespace hev::obs
{

/** Slots per shard; interning beyond this is a programming error. */
constexpr u32 maxCounters = 256;
constexpr u32 maxHistograms = 64;
constexpr u32 maxGauges = 64;

/**
 * Histogram buckets: bucket 0 holds the value 0, bucket k (k >= 1)
 * holds values in [2^(k-1), 2^k).  64 value buckets cover all of u64.
 */
constexpr u32 histBuckets = 65;

/** Merged (non-atomic) histogram contents. */
struct HistogramData
{
    u64 count = 0;
    u64 sum = 0;
    u64 min = ~0ull; //!< meaningful only when count > 0
    u64 max = 0;
    std::array<u64, histBuckets> buckets{};

    /** Bucket index the value falls into. */
    static u32 bucketOf(u64 value);
    /** Inclusive lower edge of a bucket. */
    static u64 bucketLow(u32 bucket);
    /** Exclusive upper edge of a bucket (0 means "2^64"). */
    static u64 bucketHigh(u32 bucket);

    void
    record(u64 value)
    {
        ++count;
        sum += value;
        if (value < min)
            min = value;
        if (value > max)
            max = value;
        ++buckets[bucketOf(value)];
    }

    void merge(const HistogramData &other);
    /** This minus an earlier snapshot of the same histogram. */
    HistogramData minus(const HistogramData &earlier) const;

    double
    mean() const
    {
        return count ? double(sum) / double(count) : 0.0;
    }

    /**
     * The p-th percentile (p in [0, 100]) estimated from the log2
     * buckets: linear interpolation inside the bucket holding the
     * p-th sample, clamped to the recorded [min, max].  Exact at the
     * extremes; within one bucket (a factor of 2) elsewhere.
     */
    double percentile(double p) const;

    bool operator==(const HistogramData &) const = default;
};

/** Handle to an interned monotonic counter. */
class Counter
{
  public:
    explicit Counter(const char *name);

    void add(u64 n) const;

    void inc() const { add(1); }

    u32 id() const { return slot; }

  private:
    u32 slot;
};

/** Handle to an interned gauge (a settable level). */
class Gauge
{
  public:
    explicit Gauge(const char *name);

    void set(i64 value) const;
    void add(i64 delta) const;

  private:
    u32 slot;
};

/** Handle to an interned log2 histogram. */
class Histogram
{
  public:
    explicit Histogram(const char *name);

    void record(u64 value) const;

    u32 id() const { return slot; }

  private:
    u32 slot;
};

/** Merged view of every registered stat at one instant. */
struct Snapshot
{
    std::map<std::string, u64> counters;
    std::map<std::string, i64> gauges;
    std::map<std::string, HistogramData> histograms;

    /**
     * The activity between `earlier` and this snapshot: counters and
     * histograms subtract; gauges keep their current level.
     */
    Snapshot minus(const Snapshot &earlier) const;
};

/** Merge the retired accumulator and every live shard. */
Snapshot snapshotStats();

/** Zero every counter/histogram shard and the retired accumulator. */
void resetStats();

/**
 * Render a snapshot as a JSON object with the fixed schema
 * {"counters": {...}, "gauges": {...}, "histograms": {name:
 * {count,sum,mean,min,max,buckets}}}.  Maps are name-sorted, so the
 * schema is deterministic for a given workload.
 */
std::string renderStatsJson(const Snapshot &snap,
                            const std::string &indent = "");

} // namespace hev::obs

#endif // HEV_OBS_STATS_HH
