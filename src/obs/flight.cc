#include "obs/flight.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/stats.hh"
#include "support/thread_annotations.hh"
#include "obs/trace.hh"

/** Stamped by the build system; hev_obs carries the provenance. */
#ifndef HEV_GIT_SHA
#define HEV_GIT_SHA "unknown"
#endif

namespace hev::obs
{

namespace
{

/** A thread's flight ring.  Only the owner writes; head publishes. */
struct FlightRing
{
    u32 tid = 0;
    std::atomic<u64> head{0}; //!< records ever written
    std::vector<FlightRecord> slots{flightRingCapacity};

    FlightRing();
    ~FlightRing();

    void
    push(const FlightRecord &record)
    {
        const u64 h = head.load(std::memory_order_relaxed);
        slots[h % flightRingCapacity] = record;
        head.store(h + 1, std::memory_order_release);
    }
};

/** Copy a ring's surviving records in emission order (quiescent). */
FlightDump
drain(const FlightRing &ring)
{
    FlightDump out;
    out.tid = ring.tid;
    const u64 head = ring.head.load(std::memory_order_acquire);
    const u64 kept =
        head < flightRingCapacity ? head : flightRingCapacity;
    out.dropped = head - kept;
    out.records.reserve(kept);
    for (u64 i = head - kept; i < head; ++i)
        out.records.push_back(ring.slots[i % flightRingCapacity]);
    return out;
}

struct Recorder
{
    Mutex mu;
    u32 nextTid HEV_GUARDED_BY(mu) = 1;
    std::vector<FlightRing *> rings HEV_GUARDED_BY(mu);
    std::vector<FlightDump> retired HEV_GUARDED_BY(mu);
    /** Lock-free by design: tags are drawn without taking mu. */
    std::atomic<u16> nextRunTag{1};
};

Recorder &
recorder()
{
    static Recorder r;
    return r;
}

FlightRing::FlightRing()
{
    Recorder &rec = recorder();
    MutexGuard lock(rec.mu);
    tid = rec.nextTid++;
    rec.rings.push_back(this);
}

FlightRing::~FlightRing()
{
    Recorder &rec = recorder();
    MutexGuard lock(rec.mu);
    FlightDump last = drain(*this);
    if (last.dropped || !last.records.empty())
        rec.retired.push_back(std::move(last));
    std::erase(rec.rings, this);
}

FlightRing &
localRing()
{
    thread_local FlightRing ring;
    return ring;
}

} // namespace

namespace detail
{

void
flightRecordSlow(const FlightRecord &record)
{
    FlightRecord stamped = record;
    stamped.ts = traceNowNs();
    localRing().push(stamped);
}

} // namespace detail

u16
newFlightRunTag()
{
    Recorder &rec = recorder();
    u16 tag = rec.nextRunTag.fetch_add(1, std::memory_order_relaxed);
    // Tag 0 means "no filter" in flightTail; never hand it out.  The
    // 16-bit wrap is harmless: rings hold 256 records, so a reused
    // tag's old records were evicted tens of thousands of runs ago.
    while (tag == 0)
        tag = rec.nextRunTag.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

std::vector<FlightDump>
collectFlight()
{
    Recorder &rec = recorder();
    MutexGuard lock(rec.mu);
    std::vector<FlightDump> out = rec.retired;
    for (const FlightRing *ring : rec.rings) {
        FlightDump slice = drain(*ring);
        if (slice.dropped || !slice.records.empty())
            out.push_back(std::move(slice));
    }
    return out;
}

void
clearFlight()
{
    Recorder &rec = recorder();
    MutexGuard lock(rec.mu);
    rec.retired.clear();
    for (FlightRing *ring : rec.rings)
        ring->head.store(0, std::memory_order_release);
}

std::vector<FlightRecord>
flightTail(u16 run_tag, u64 last_per_thread)
{
    std::vector<FlightRecord> merged;
    for (const FlightDump &dump : collectFlight()) {
        std::vector<FlightRecord> kept;
        for (const FlightRecord &record : dump.records) {
            if (run_tag == 0 || record.runTag == run_tag)
                kept.push_back(record);
        }
        if (last_per_thread && kept.size() > last_per_thread)
            kept.erase(kept.begin(),
                       kept.end() - ptrdiff_t(last_per_thread));
        merged.insert(merged.end(), kept.begin(), kept.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const FlightRecord &a, const FlightRecord &b) {
                         return a.ts < b.ts;
                     });
    return merged;
}

u64
flightArgsDigest(const FlightRecord &record)
{
    constexpr u64 fnvOffset = 0xcbf29ce484222325ull;
    constexpr u64 fnvPrime = 0x100000001b3ull;
    u64 hash = fnvOffset;
    for (u64 word : {record.a, record.b, record.c, record.d}) {
        for (u32 byte = 0; byte < 8; ++byte) {
            hash ^= (word >> (byte * 8)) & 0xff;
            hash *= fnvPrime;
        }
    }
    return hash;
}

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u8(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
opLabel(const ForensicsBundle &bundle, u16 op)
{
    if (bundle.opName) {
        std::string label = bundle.opName(op);
        if (!label.empty())
            return label;
    }
    return "op" + std::to_string(op);
}

} // namespace

std::string
renderForensicsJson(const ForensicsBundle &bundle)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"forensics_schema_version\": " << forensicsSchemaVersion
        << ",\n"
        << "  \"git_sha\": \"" << HEV_GIT_SHA << "\",\n"
        << "  \"kind\": \"" << jsonEscape(bundle.kind) << "\",\n"
        << "  \"scenario\": \"" << jsonEscape(bundle.scenario)
        << "\",\n"
        << "  \"detail\": \"" << jsonEscape(bundle.detail) << "\",\n"
        << "  \"failed_op\": " << bundle.failedOp << ",\n";

    out << "  \"digests\": {";
    bool first = true;
    for (const auto &[name, value] : bundle.digests) {
        out << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"flight\": [";
    first = true;
    for (const FlightRecord &record : bundle.tail) {
        out << (first ? "" : ",") << "\n    {\"ts\": " << record.ts
            << ", \"op\": \"" << jsonEscape(opLabel(bundle, record.op))
            << "\", \"opcode\": " << record.op
            << ", \"vcpu\": " << u32(record.vcpu)
            << ", \"step\": " << record.step << ", \"args\": ["
            << record.a << ", " << record.b << ", " << record.c << ", "
            << record.d
            << "], \"args_digest\": " << flightArgsDigest(record)
            << ", \"result\": " << record.result << ", \"replayable\": "
            << ((record.flags & flightReplayable) ? "true" : "false")
            << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "],\n";

    out << "  \"stats\": " << renderStatsJson(snapshotStats(), "  ")
        << ",\n";
    out << "  \"trace_tail\": \"" << jsonEscape(bundle.traceTail)
        << "\"\n}\n";
    return out.str();
}

bool
writeForensicsBundle(const ForensicsBundle &bundle,
                     const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << renderForensicsJson(bundle);
    if (!out)
        return false;
    if (!bundle.traceTail.empty()) {
        std::ofstream trace(path + ".trace");
        if (!trace)
            return false;
        trace << bundle.traceTail;
        if (!trace)
            return false;
    }
    return true;
}

std::string
forensicsPathOrEnv(const std::string &configured)
{
    if (!configured.empty())
        return configured;
    const char *env = std::getenv("HEV_FORENSICS");
    return env ? env : "";
}

} // namespace hev::obs
