/**
 * @file
 * Scoped timers feeding the log2 histograms (and, when tracing is on,
 * emitting Chrome complete events with real durations).
 *
 * Cost discipline: a timer reads the clock only when stats or tracing
 * are enabled, so a fully disabled build pays two relaxed loads per
 * scope.  Place timers at medium granularity (a hypercall, a harness
 * run, a scenario) — not inside per-step interpreter loops.
 */

#ifndef HEV_OBS_TIMER_HH
#define HEV_OBS_TIMER_HH

#include "obs/stats.hh"
#include "obs/trace.hh"

namespace hev::obs
{

/** Times its lifetime into a histogram (ns) and the tracer. */
class ScopedTimer
{
  public:
    /**
     * @param hist histogram receiving the duration in nanoseconds.
     * @param label event name if tracing is enabled (static or
     *              interned-on-use string).
     */
    ScopedTimer(const Histogram &hist, const char *label)
        : histogram(hist), name(label),
          startNs(statsEnabled() || traceEnabled() ? traceNowNs() + 1 : 0)
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!startNs)
            return;
        // The +1 above keeps startNs nonzero as the "armed" flag; it
        // cancels out of the duration here.
        const u64 durNs = traceNowNs() + 1 - startNs;
        histogram.record(durNs);
        traceComplete(EventType::TimerScope, name, startNs - 1, durNs);
    }

  private:
    const Histogram &histogram;
    const char *name;
    u64 startNs;
};

} // namespace hev::obs

#endif // HEV_OBS_TIMER_HH
