#include "obs/trace.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "support/thread_annotations.hh"

namespace hev::obs
{

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::HypercallEnter: return "hypercall_enter";
      case EventType::HypercallExit: return "hypercall_exit";
      case EventType::MirCall: return "mir_call";
      case EventType::MirReturn: return "mir_return";
      case EventType::PtWalk: return "pt_walk";
      case EventType::TlbHit: return "tlb_hit";
      case EventType::TlbMiss: return "tlb_miss";
      case EventType::ScenarioStart: return "scenario_start";
      case EventType::ScenarioFinish: return "scenario_finish";
      case EventType::CounterexampleFound: return "counterexample_found";
      case EventType::TimerScope: return "timer_scope";
      case EventType::FuzzExec: return "fuzz_exec";
      case EventType::FuzzCorpusAdd: return "fuzz_corpus_add";
      case EventType::FuzzDivergence: return "fuzz_divergence";
      case EventType::ShootdownBegin: return "shootdown_begin";
      case EventType::ShootdownEnd: return "shootdown_end";
      case EventType::IpiPost: return "ipi_post";
      case EventType::IpiDeliver: return "ipi_deliver";
      case EventType::IpiAck: return "ipi_ack";
    }
    return "unknown";
}

const char *
eventTypeCategory(EventType type)
{
    switch (type) {
      case EventType::HypercallEnter:
      case EventType::HypercallExit: return "hv";
      case EventType::MirCall:
      case EventType::MirReturn: return "mir";
      case EventType::PtWalk:
      case EventType::TlbHit:
      case EventType::TlbMiss: return "mmu";
      case EventType::ScenarioStart:
      case EventType::ScenarioFinish:
      case EventType::CounterexampleFound: return "campaign";
      case EventType::TimerScope: return "timer";
      case EventType::FuzzExec:
      case EventType::FuzzCorpusAdd:
      case EventType::FuzzDivergence: return "fuzz";
      case EventType::ShootdownBegin:
      case EventType::ShootdownEnd:
      case EventType::IpiPost:
      case EventType::IpiDeliver:
      case EventType::IpiAck: return "smp";
    }
    return "misc";
}

u64
traceNowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   clock::now() - epoch)
                   .count());
}

namespace
{

/** A thread's ring.  Only the owner writes; head publishes. */
struct Ring
{
    u32 tid = 0;
    std::atomic<u64> head{0}; //!< events ever written
    std::vector<TraceEvent> slots{traceRingCapacity};

    Ring();
    ~Ring();

    void
    push(const TraceEvent &event)
    {
        const u64 h = head.load(std::memory_order_relaxed);
        slots[h % traceRingCapacity] = event;
        head.store(h + 1, std::memory_order_release);
    }
};

/** Copy a ring's surviving events in emission order (quiescent). */
ThreadTrace
drain(const Ring &ring)
{
    ThreadTrace out;
    out.tid = ring.tid;
    const u64 head = ring.head.load(std::memory_order_acquire);
    const u64 kept = head < traceRingCapacity ? head : traceRingCapacity;
    out.dropped = head - kept;
    out.events.reserve(kept);
    for (u64 i = head - kept; i < head; ++i)
        out.events.push_back(ring.slots[i % traceRingCapacity]);
    return out;
}

struct Tracer
{
    Mutex mu;
    u32 nextTid HEV_GUARDED_BY(mu) = 1;
    std::vector<Ring *> rings HEV_GUARDED_BY(mu);
    std::vector<ThreadTrace> retired HEV_GUARDED_BY(mu);
    std::unordered_set<std::string> names HEV_GUARDED_BY(mu);
    /** Events ever recorded per type, immune to ring wraparound.
     *  Lock-free by design: bumped without taking mu. */
    std::array<std::atomic<u64>, eventTypeCount> totals{};
};

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

Ring::Ring()
{
    Tracer &tr = tracer();
    MutexGuard lock(tr.mu);
    tid = tr.nextTid++;
    tr.rings.push_back(this);
}

Ring::~Ring()
{
    Tracer &tr = tracer();
    MutexGuard lock(tr.mu);
    ThreadTrace last = drain(*this);
    if (last.dropped || !last.events.empty())
        tr.retired.push_back(std::move(last));
    std::erase(tr.rings, this);
}

Ring &
localRing()
{
    thread_local Ring ring;
    return ring;
}

/** Stable storage for an event name (content-interned). */
const char *
internName(const char *name)
{
    Tracer &tr = tracer();
    MutexGuard lock(tr.mu);
    return tr.names.insert(name).first->c_str();
}

} // namespace

namespace detail
{

void
traceEventSlow(EventType type, const char *name, u64 arg0, u64 arg1,
               u64 ts, u64 dur)
{
    TraceEvent event;
    event.ts = dur || ts ? ts : traceNowNs();
    event.dur = dur;
    event.name = internName(name);
    event.arg0 = arg0;
    event.arg1 = arg1;
    event.type = type;
    localRing().push(event);
    tracer().totals[u32(type)].fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

std::vector<ThreadTrace>
collectTrace()
{
    Tracer &tr = tracer();
    MutexGuard lock(tr.mu);
    std::vector<ThreadTrace> out = tr.retired;
    for (const Ring *ring : tr.rings) {
        ThreadTrace slice = drain(*ring);
        if (slice.dropped || !slice.events.empty())
            out.push_back(std::move(slice));
    }
    return out;
}

void
clearTrace()
{
    Tracer &tr = tracer();
    MutexGuard lock(tr.mu);
    tr.retired.clear();
    for (Ring *ring : tr.rings)
        ring->head.store(0, std::memory_order_release);
    for (auto &total : tr.totals)
        total.store(0, std::memory_order_relaxed);
}

std::map<std::string, u64>
countEventsByType(const std::vector<ThreadTrace> &trace)
{
    std::map<std::string, u64> counts;
    for (const ThreadTrace &thread : trace) {
        for (const TraceEvent &event : thread.events)
            ++counts[eventTypeName(event.type)];
    }
    return counts;
}

std::map<std::string, u64>
traceEventTotals()
{
    Tracer &tr = tracer();
    std::map<std::string, u64> counts;
    for (u32 i = 0; i < eventTypeCount; ++i) {
        const u64 n = tr.totals[i].load(std::memory_order_relaxed);
        if (n)
            counts[eventTypeName(EventType(i))] = n;
    }
    return counts;
}

namespace
{

/** Chrome phase letter of an event type. */
char
phaseOf(EventType type)
{
    switch (type) {
      case EventType::HypercallEnter:
      case EventType::MirCall:
      case EventType::ScenarioStart:
      case EventType::ShootdownBegin: return 'B';
      case EventType::HypercallExit:
      case EventType::MirReturn:
      case EventType::ScenarioFinish:
      case EventType::ShootdownEnd: return 'E';
      case EventType::TimerScope: return 'X';
      case EventType::IpiPost: return 's';
      case EventType::IpiDeliver: return 't';
      case EventType::IpiAck: return 'f';
      default: return 'i';
    }
}

void
renderEvent(std::ostringstream &out, const TraceEvent &event, u32 tid)
{
    const char phase = phaseOf(event.type);
    out << "    {\"name\": \"" << (event.name ? event.name : "?")
        << "\", \"cat\": \"" << eventTypeCategory(event.type)
        << "\", \"ph\": \"" << phase << "\", \"ts\": "
        << event.ts / 1000 << "." << (event.ts % 1000 < 100 ? "0" : "")
        << (event.ts % 1000 < 10 ? "0" : "") << event.ts % 1000
        << ", \"pid\": 1, \"tid\": " << tid;
    if (phase == 'X')
        out << ", \"dur\": " << event.dur / 1000 << "."
            << (event.dur % 1000 < 100 ? "0" : "")
            << (event.dur % 1000 < 10 ? "0" : "") << event.dur % 1000;
    if (phase == 'i')
        out << ", \"s\": \"t\"";
    // Flow events bind by id; "bp": "e" attaches the finish to the
    // enclosing slice rather than the next one.
    if (phase == 's' || phase == 't' || phase == 'f')
        out << ", \"id\": " << event.arg0;
    if (phase == 'f')
        out << ", \"bp\": \"e\"";
    out << ", \"args\": {\"type\": \"" << eventTypeName(event.type)
        << "\", \"arg0\": " << event.arg0 << ", \"arg1\": " << event.arg1
        << "}}";
}

} // namespace

std::string
renderChromeTrace(const std::vector<ThreadTrace> &trace)
{
    std::ostringstream out;
    out << "{\n  \"schemaVersion\": " << traceSchemaVersion
        << ",\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
    bool first = true;
    for (const ThreadTrace &thread : trace) {
        // Emission order is monotonic except for TimerScope events,
        // which carry their *start* time but are recorded at scope
        // end; a stable sort restores per-thread ts monotonicity.
        std::vector<const TraceEvent *> ordered;
        ordered.reserve(thread.events.size());
        for (const TraceEvent &event : thread.events)
            ordered.push_back(&event);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const TraceEvent *a, const TraceEvent *b) {
                             return a->ts < b->ts;
                         });
        for (const TraceEvent *event : ordered) {
            out << (first ? "" : ",") << "\n";
            renderEvent(out, *event, thread.tid);
            first = false;
        }
    }
    out << (first ? "" : "\n  ") << "]\n}\n";
    return out.str();
}

bool
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << renderChromeTrace(collectTrace());
    return bool(out);
}

} // namespace hev::obs
