/**
 * @file
 * The CCAL abstract state hook.
 *
 * CCAL "extend[s] the C semantics to add a user-defined abstract state
 * of the system undergoing verification" (paper Sec. 3.4); MIRVerif
 * does the same for MIRlight.  Trusted pointers carry getter/setter
 * handler ids; dereferencing one routes through this interface instead
 * of the object memory, which is how the bottom layer exposes raw
 * physical memory as "just a plain array of 64-bit words".
 */

#ifndef HEV_MIRLIGHT_ABSTRACT_STATE_HH
#define HEV_MIRLIGHT_ABSTRACT_STATE_HH

#include "mirlight/trap.hh"
#include "mirlight/value.hh"

namespace hev::mir
{

/** Interface the interpreter uses to service trusted-pointer accesses. */
class AbstractState
{
  public:
    virtual ~AbstractState() = default;

    /** Load through a trusted pointer (handler, meta). */
    virtual Outcome<Value> trustedLoad(u32 handler, u64 meta) = 0;

    /** Store through a trusted pointer. */
    virtual Outcome<Done> trustedStore(u32 handler, u64 meta,
                                       const Value &value) = 0;
};

/** An abstract state with no trusted pointers at all. */
class NullAbstractState : public AbstractState
{
  public:
    Outcome<Value>
    trustedLoad(u32 handler, u64) override
    {
        return Trap{TrapKind::TrustedFault,
                    "no trusted handlers registered (handler " +
                        std::to_string(handler) + ")"};
    }

    Outcome<Done>
    trustedStore(u32 handler, u64, const Value &) override
    {
        return Trap{TrapKind::TrustedFault,
                    "no trusted handlers registered (handler " +
                        std::to_string(handler) + ")"};
    }
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_ABSTRACT_STATE_HH
