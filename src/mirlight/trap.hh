/**
 * @file
 * Execution outcomes of the MIRlight semantics.
 *
 * A Trap is a stuck state of the small-step semantics: in the Coq
 * development these states simply have no successor, and a code proof
 * obligates showing the verified function never reaches one.  The
 * executable semantics surfaces them as first-class values so the
 * conformance checker can report *which* rule got stuck and where.
 */

#ifndef HEV_MIRLIGHT_TRAP_HH
#define HEV_MIRLIGHT_TRAP_HH

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace hev::mir
{

/** Why execution got stuck. */
enum class TrapKind
{
    OutOfFuel,        //!< step budget exhausted (non-termination guard)
    TypeError,        //!< rule applied to a value of the wrong shape
    BadPath,          //!< path names a nonexistent cell or field
    RDataDeref,       //!< dereference of an opaque RData pointer
    TrustedFault,     //!< trusted getter/setter rejected the access
    UnknownFunction,  //!< call target not in the program or primitives
    AssertFailure,    //!< MIR assert terminator failed
    Unreachable,      //!< the unreachable terminator was executed
    ArithError,       //!< division/remainder by zero
    PrimitiveError,   //!< a lower-layer specification signalled failure
};

/** Name of a TrapKind for diagnostics. */
const char *trapKindName(TrapKind kind);

/** A stuck state, with human-readable context. */
struct Trap
{
    TrapKind kind;
    std::string message;
};

/** Either a result or a trap. */
template <typename T>
class Outcome
{
  public:
    Outcome(T value) : repr(std::move(value)) {}
    Outcome(Trap trap) : repr(std::move(trap)) {}

    bool ok() const { return std::holds_alternative<T>(repr); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        assert(ok());
        return std::get<T>(repr);
    }

    T &
    value()
    {
        assert(ok());
        return std::get<T>(repr);
    }

    const Trap &
    trap() const
    {
        assert(!ok());
        return std::get<Trap>(repr);
    }

    const T &operator*() const { return value(); }
    T &operator*() { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    std::variant<T, Trap> repr;
};

/** Payload for effect-only outcomes. */
struct Done
{
    bool operator==(const Done &) const = default;
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_TRAP_HH
