#include "mirlight/printer.hh"

#include <sstream>

namespace hev::mir
{

std::string
renderPlace(const MirPlace &place)
{
    // Apply projections inside-out, rustc-style: derefs wrap in
    // parentheses, fields append.
    std::string repr = "_" + std::to_string(place.var);
    for (const ProjElem &elem : place.proj) {
        if (elem.kind == ProjElem::Kind::Deref)
            repr = "(*" + repr + ")";
        else
            repr += "." + std::to_string(elem.index);
    }
    return repr;
}

std::string
renderOperand(const Operand &operand)
{
    switch (operand.kind) {
      case Operand::Kind::Constant:
        return "const " + operand.constant.toString();
      case Operand::Kind::Copy:
        return "copy " + renderPlace(operand.place);
      case Operand::Kind::Move:
        return "move " + renderPlace(operand.place);
    }
    return "?";
}

namespace
{

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "Add";
      case BinOp::Sub: return "Sub";
      case BinOp::Mul: return "Mul";
      case BinOp::Div: return "Div";
      case BinOp::Rem: return "Rem";
      case BinOp::BitAnd: return "BitAnd";
      case BinOp::BitOr: return "BitOr";
      case BinOp::BitXor: return "BitXor";
      case BinOp::Shl: return "Shl";
      case BinOp::Shr: return "Shr";
      case BinOp::Eq: return "Eq";
      case BinOp::Ne: return "Ne";
      case BinOp::Lt: return "Lt";
      case BinOp::Le: return "Le";
      case BinOp::Gt: return "Gt";
      case BinOp::Ge: return "Ge";
    }
    return "?";
}

const char *
unOpName(UnOp op)
{
    switch (op) {
      case UnOp::Not: return "Not";
      case UnOp::Neg: return "Neg";
      case UnOp::NotBits: return "NotBits";
    }
    return "?";
}

} // namespace

std::string
renderRvalue(const Rvalue &rvalue)
{
    std::ostringstream out;
    if (const auto *use_rv = std::get_if<Rvalue::Use>(&rvalue.repr)) {
        out << renderOperand(use_rv->operand);
    } else if (const auto *binary =
                   std::get_if<Rvalue::Binary>(&rvalue.repr)) {
        out << binOpName(binary->op) << "("
            << renderOperand(binary->lhs) << ", "
            << renderOperand(binary->rhs) << ")";
    } else if (const auto *unary =
                   std::get_if<Rvalue::Unary>(&rvalue.repr)) {
        out << unOpName(unary->op) << "("
            << renderOperand(unary->operand) << ")";
    } else if (const auto *agg =
                   std::get_if<Rvalue::MakeAggregate>(&rvalue.repr)) {
        out << "aggregate #" << agg->discriminant << "(";
        for (size_t i = 0; i < agg->fields.size(); ++i) {
            if (i)
                out << ", ";
            out << renderOperand(agg->fields[i]);
        }
        out << ")";
    } else if (const auto *ref = std::get_if<Rvalue::Ref>(&rvalue.repr)) {
        out << "&" << renderPlace(ref->place);
    } else if (const auto *disc =
                   std::get_if<Rvalue::Discriminant>(&rvalue.repr)) {
        out << "discriminant(" << renderPlace(disc->place) << ")";
    }
    return out.str();
}

std::string
renderFunction(const Function &fn)
{
    std::ostringstream out;
    out << "fn " << fn.name << "(";
    for (u32 i = 0; i < fn.argCount; ++i) {
        if (i)
            out << ", ";
        out << "_" << (i + 1);
    }
    out << ") {\n";
    for (VarId var = 0; var < fn.varCount; ++var) {
        if (fn.isLocal[var])
            out << "    let _" << var << ";  // memory-allocated\n";
    }
    for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
        const BasicBlock &block = fn.blocks[bb];
        out << "    bb" << bb << ": {\n";
        for (const Statement &stmt : block.statements) {
            out << "        ";
            if (const auto *assign =
                    std::get_if<Statement::Assign>(&stmt.repr)) {
                out << renderPlace(assign->place) << " = "
                    << renderRvalue(assign->rvalue) << ";";
            } else if (const auto *setdisc =
                           std::get_if<Statement::SetDiscriminant>(
                               &stmt.repr)) {
                out << "discriminant(" << renderPlace(setdisc->place)
                    << ") = " << setdisc->discriminant << ";";
            } else {
                out << "nop;";
            }
            out << "\n";
        }
        out << "        ";
        const Terminator &term = block.terminator;
        if (const auto *go = std::get_if<Terminator::Goto>(&term.repr)) {
            out << "goto -> bb" << go->target << ";";
        } else if (const auto *sw =
                       std::get_if<Terminator::SwitchInt>(&term.repr)) {
            out << "switchInt(" << renderOperand(sw->scrutinee)
                << ") -> [";
            for (const auto &[value, target] : sw->cases)
                out << value << ": bb" << target << ", ";
            out << "otherwise: bb" << sw->otherwise << "];";
        } else if (const auto *call =
                       std::get_if<Terminator::Call>(&term.repr)) {
            out << renderPlace(call->dest) << " = " << call->callee
                << "(";
            for (size_t i = 0; i < call->args.size(); ++i) {
                if (i)
                    out << ", ";
                out << renderOperand(call->args[i]);
            }
            out << ") -> bb" << call->target << ";";
        } else if (std::get_if<Terminator::Return>(&term.repr)) {
            out << "return;";
        } else if (const auto *drop =
                       std::get_if<Terminator::Drop>(&term.repr)) {
            out << "drop(" << renderPlace(drop->place) << ") -> bb"
                << drop->target << ";";
        } else if (const auto *assert_ =
                       std::get_if<Terminator::Assert>(&term.repr)) {
            out << "assert(" << renderOperand(assert_->cond) << " == "
                << (assert_->expected ? "true" : "false") << ") -> bb"
                << assert_->target << ";";
        } else {
            out << "unreachable;";
        }
        out << "\n    }\n";
    }
    out << "}\n";
    return out.str();
}

std::string
renderProgram(const Program &program)
{
    std::ostringstream out;
    for (const auto &[name, fn] : program.functions)
        out << renderFunction(fn) << "\n";
    return out.str();
}

} // namespace hev::mir
