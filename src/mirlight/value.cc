#include "mirlight/value.hh"

#include <sstream>

namespace hev::mir
{

std::string
Value::toString() const
{
    std::ostringstream out;
    if (isUnit()) {
        out << "()";
    } else if (isInt()) {
        out << asInt();
    } else if (isAggregate()) {
        const Aggregate &agg = asAggregate();
        out << "#" << agg.discriminant << "(";
        for (size_t i = 0; i < agg.fields.size(); ++i) {
            if (i)
                out << ", ";
            out << agg.fields[i].toString();
        }
        out << ")";
    } else if (isPathPtr()) {
        const Path &path = asPath();
        out << "&cell" << path.cell;
        for (u64 p : path.proj)
            out << "." << p;
    } else if (isTrustedPtr()) {
        out << "&trusted(h" << asTrusted().handler << ", "
            << asTrusted().meta << ")";
    } else {
        out << "&rdata(L" << asRData().owner << ", [";
        const auto &payload = asRData().payload;
        for (size_t i = 0; i < payload.size(); ++i) {
            if (i)
                out << ", ";
            out << payload[i];
        }
        out << "])";
    }
    return out.str();
}

} // namespace hev::mir
