/**
 * @file
 * MIRlight runtime values: the paper's object-view memory model.
 *
 * Values follow the grammar of Sec. 3.2:
 *
 *     value := int                  Integer values
 *            | unit                 Other atomic values
 *            | (int, list value)    Structs and Enums
 *
 * plus the three pointer kinds of Sec. 3.4:
 *   - path pointers: a memory cell id and a projection list (the
 *     "GlobalPath IDENT [OFFSET...]" form) — ordinary pointers whose
 *     pointee the current layer owns;
 *   - trusted pointers: a handler id plus metadata; dereferencing calls
 *     getter/setter specifications on the abstract state (used for the
 *     bottom layer's raw physical memory);
 *   - RData pointers: an owner-layer tag and an opaque payload; the
 *     semantics provide NO way to dereference them, so clients can only
 *     pass them back to the layer that forged them.
 *
 * Structs and enums are handled "as values rather than a block of
 * contiguous memory": projection selects fields directly and there is
 * no field-offset arithmetic anywhere.
 */

#ifndef HEV_MIRLIGHT_VALUE_HH
#define HEV_MIRLIGHT_VALUE_HH

#include <string>
#include <variant>
#include <vector>

#include "support/types.hh"

namespace hev::mir
{

class Value;

/** A path: base memory cell plus a list of field projections. */
struct Path
{
    u64 cell = 0;            //!< base object's memory cell id
    std::vector<u64> proj;   //!< field/index projections, outermost first

    bool operator==(const Path &) const = default;

    /** This path extended by one more projection step. */
    Path
    extended(u64 index) const
    {
        Path longer = *this;
        longer.proj.push_back(index);
        return longer;
    }
};

/** Payload of a trusted pointer (Sec. 3.4, case 2). */
struct TrustedPtr
{
    u32 handler = 0;  //!< which getter/setter pair in the abstract state
    u64 meta = 0;     //!< handler-specific metadata (e.g. a phys address)

    bool operator==(const TrustedPtr &) const = default;
};

/** Payload of an opaque RData pointer (Sec. 3.4, case 3). */
struct RDataPtr
{
    u32 owner = 0;               //!< layer that forged the pointer
    std::vector<i64> payload;    //!< identifier + numerical indices

    bool operator==(const RDataPtr &) const = default;
};

/** One MIRlight runtime value. */
class Value
{
  public:
    /** Aggregate: integer discriminant plus field list. */
    struct Aggregate
    {
        i64 discriminant = 0;
        std::vector<Value> fields;

        bool operator==(const Aggregate &) const = default;
    };

    /** The unit (atomic, non-integer) value. */
    Value() : repr(Unit{}) {}

    static Value
    intVal(i64 v)
    {
        Value value;
        value.repr = v;
        return value;
    }

    static Value unit() { return Value(); }

    /** Booleans are integers 0/1, as in MIR. */
    static Value boolVal(bool b) { return intVal(b ? 1 : 0); }

    static Value
    aggregate(i64 discriminant, std::vector<Value> fields)
    {
        Value value;
        value.repr = Aggregate{discriminant, std::move(fields)};
        return value;
    }

    /** A struct is an aggregate with discriminant 0. */
    static Value
    tuple(std::vector<Value> fields)
    {
        return aggregate(0, std::move(fields));
    }

    static Value
    pathPtr(Path path)
    {
        Value value;
        value.repr = std::move(path);
        return value;
    }

    static Value
    trustedPtr(u32 handler, u64 meta)
    {
        Value value;
        value.repr = TrustedPtr{handler, meta};
        return value;
    }

    static Value
    rdataPtr(u32 owner, std::vector<i64> payload)
    {
        Value value;
        value.repr = RDataPtr{owner, std::move(payload)};
        return value;
    }

    bool isInt() const { return std::holds_alternative<i64>(repr); }
    bool isUnit() const { return std::holds_alternative<Unit>(repr); }

    bool
    isAggregate() const
    {
        return std::holds_alternative<Aggregate>(repr);
    }

    bool isPathPtr() const { return std::holds_alternative<Path>(repr); }

    bool
    isTrustedPtr() const
    {
        return std::holds_alternative<TrustedPtr>(repr);
    }

    bool
    isRDataPtr() const
    {
        return std::holds_alternative<RDataPtr>(repr);
    }

    /** Integer payload; value must be an int. */
    i64 asInt() const { return std::get<i64>(repr); }

    /** Boolean view of an int. */
    bool asBool() const { return asInt() != 0; }

    const Aggregate &asAggregate() const { return std::get<Aggregate>(repr); }
    Aggregate &asAggregate() { return std::get<Aggregate>(repr); }
    const Path &asPath() const { return std::get<Path>(repr); }
    const TrustedPtr &asTrusted() const { return std::get<TrustedPtr>(repr); }
    const RDataPtr &asRData() const { return std::get<RDataPtr>(repr); }

    bool operator==(const Value &) const = default;

    /** Human-readable rendering for counterexample reports. */
    std::string toString() const;

  private:
    struct Unit
    {
        bool operator==(const Unit &) const = default;
    };

    std::variant<Unit, i64, Aggregate, Path, TrustedPtr, RDataPtr> repr;
};

/** Option-style helpers mirroring Rust's Option<T> in MIR encoding. */
namespace option
{

/** None is the aggregate with discriminant 0 and no fields. */
inline Value
none()
{
    return Value::aggregate(0, {});
}

/** Some(v) is the aggregate with discriminant 1 and one field. */
inline Value
some(Value v)
{
    return Value::aggregate(1, {std::move(v)});
}

inline bool
isSome(const Value &v)
{
    return v.isAggregate() && v.asAggregate().discriminant == 1;
}

inline bool
isNone(const Value &v)
{
    return v.isAggregate() && v.asAggregate().discriminant == 0 &&
           v.asAggregate().fields.empty();
}

/** Payload of a Some; v must satisfy isSome. */
inline const Value &
unwrap(const Value &v)
{
    return v.asAggregate().fields.at(0);
}

} // namespace option

/** Result-style helpers mirroring Rust's Result<T, E>. */
namespace result
{

inline Value
ok(Value v)
{
    return Value::aggregate(0, {std::move(v)});
}

inline Value
err(Value e)
{
    return Value::aggregate(1, {std::move(e)});
}

inline bool
isOk(const Value &v)
{
    return v.isAggregate() && v.asAggregate().discriminant == 0;
}

inline bool
isErr(const Value &v)
{
    return v.isAggregate() && v.asAggregate().discriminant == 1;
}

inline const Value &
payload(const Value &v)
{
    return v.asAggregate().fields.at(0);
}

} // namespace result

} // namespace hev::mir

#endif // HEV_MIRLIGHT_VALUE_HH
