/**
 * @file
 * Fluent construction API for MIRlight functions.
 *
 * In the paper, `mirlightgen` (a modified rustc) pretty-prints the MIR
 * of HyperEnclave as Coq abstract syntax.  We have no Rust frontend
 * here, so the MIR models under src/mirmodels are written against this
 * builder instead; it plays the same role of producing the deep
 * embedding the semantics runs on.
 */

#ifndef HEV_MIRLIGHT_BUILDER_HH
#define HEV_MIRLIGHT_BUILDER_HH

#include <string>
#include <utility>
#include <vector>

#include "mirlight/program.hh"

namespace hev::mir
{

/// @name Rvalue shorthands
/// @{

inline Rvalue
use(Operand operand)
{
    return Rvalue{Rvalue::Use{std::move(operand)}};
}

inline Rvalue
bin(BinOp op, Operand lhs, Operand rhs)
{
    return Rvalue{Rvalue::Binary{op, std::move(lhs), std::move(rhs)}};
}

inline Rvalue
un(UnOp op, Operand operand)
{
    return Rvalue{Rvalue::Unary{op, std::move(operand)}};
}

inline Rvalue
makeAggregate(i64 discriminant, std::vector<Operand> fields)
{
    return Rvalue{Rvalue::MakeAggregate{discriminant, std::move(fields)}};
}

inline Rvalue
refOf(MirPlace place)
{
    return Rvalue{Rvalue::Ref{std::move(place)}};
}

inline Rvalue
discriminantOf(MirPlace place)
{
    return Rvalue{Rvalue::Discriminant{std::move(place)}};
}

/// @}

/** Builds one Function block by block. */
class FunctionBuilder
{
  public:
    /**
     * @param name function name (the call target).
     * @param arg_count number of parameters (vars 1..arg_count).
     */
    FunctionBuilder(std::string name, u32 arg_count);

    /** Allocate a fresh variable. */
    VarId newVar(bool local = false);

    /** Parameter i (0-based) as a variable id. */
    static VarId arg(u32 i) { return i + 1; }

    /** The return slot. */
    static VarId retVar() { return 0; }

    /** Reclassify a variable as memory-allocated. */
    void markLocal(VarId var);

    /** Open a fresh block and make it current; returns its id. */
    BlockId newBlock();

    /** Make an existing block current (to fill it in later). */
    FunctionBuilder &atBlock(BlockId block);

    /** The block currently being appended to. */
    BlockId currentBlock() const { return current; }

    /// @name Statements (appended to the current block)
    /// @{

    FunctionBuilder &assign(MirPlace place, Rvalue rvalue);
    FunctionBuilder &setDiscriminant(MirPlace place, i64 discriminant);
    FunctionBuilder &nop();

    /// @}

    /// @name Terminators (close the current block)
    /// @{

    FunctionBuilder &jump(BlockId target);
    FunctionBuilder &switchInt(Operand scrutinee,
                               std::vector<std::pair<i64, BlockId>> cases,
                               BlockId otherwise);
    FunctionBuilder &callFn(std::string callee, std::vector<Operand> args,
                            MirPlace dest, BlockId target);
    FunctionBuilder &ret();
    FunctionBuilder &dropPlace(MirPlace place, BlockId target);
    FunctionBuilder &assertTrue(Operand cond, BlockId target);
    FunctionBuilder &unreachable();

    /// @}

    /** Finish and return the function. */
    Function build();

  private:
    BasicBlock &cur() { return fn.blocks.at(current); }

    Function fn;
    BlockId current = 0;
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_BUILDER_HH
