/**
 * @file
 * MIRlight abstract syntax.
 *
 * MIR programs are control-flow graphs: "each labelled block consists
 * of multiple statements followed by one terminator" (paper Sec. 3.1).
 * The compiler has already resolved traits and types, so the syntax is
 * term-level only; the operational semantics need no type system.
 *
 * Variables are indexed, MIR-style: variable 0 is the return slot and
 * variables 1..argc are the parameters.  Each variable is classified
 * as *local* (address-taken; lives in memory) or *temporary* (lifted
 * into a per-frame environment) exactly as the paper's translator does
 * (Sec. 3.2, "Lifting Local Variables").
 */

#ifndef HEV_MIRLIGHT_SYNTAX_HH
#define HEV_MIRLIGHT_SYNTAX_HH

#include <string>
#include <variant>
#include <vector>

#include "mirlight/value.hh"

namespace hev::mir
{

/** Index of a variable within a function. */
using VarId = u32;
/** Index of a basic block within a function. */
using BlockId = u32;

/** One step of a place projection. */
struct ProjElem
{
    enum class Kind : u8
    {
        Deref,  //!< follow a pointer
        Field,  //!< select aggregate field `index`
    };

    Kind kind = Kind::Field;
    u64 index = 0;

    static ProjElem deref() { return {Kind::Deref, 0}; }
    static ProjElem field(u64 index) { return {Kind::Field, index}; }

    bool operator==(const ProjElem &) const = default;
};

/** A place: variable plus projection, e.g. (*var3).1.0 */
struct MirPlace
{
    VarId var = 0;
    std::vector<ProjElem> proj;

    static MirPlace of(VarId var) { return {var, {}}; }

    MirPlace
    field(u64 index) const
    {
        MirPlace longer = *this;
        longer.proj.push_back(ProjElem::field(index));
        return longer;
    }

    MirPlace
    deref() const
    {
        MirPlace longer = *this;
        longer.proj.push_back(ProjElem::deref());
        return longer;
    }

    bool operator==(const MirPlace &) const = default;
};

/** Operand: a constant or the current value of a place. */
struct Operand
{
    enum class Kind : u8
    {
        Constant,
        Copy,
        Move,  //!< semantically identical to Copy in our value model
    };

    Kind kind = Kind::Constant;
    Value constant;   //!< valid iff kind == Constant
    MirPlace place;   //!< valid otherwise

    static Operand
    constOp(Value v)
    {
        Operand op;
        op.kind = Kind::Constant;
        op.constant = std::move(v);
        return op;
    }

    static Operand constInt(i64 v) { return constOp(Value::intVal(v)); }

    static Operand
    copy(MirPlace place)
    {
        Operand op;
        op.kind = Kind::Copy;
        op.place = std::move(place);
        return op;
    }

    static Operand
    move(MirPlace place)
    {
        Operand op;
        op.kind = Kind::Move;
        op.place = std::move(place);
        return op;
    }
};

/** Binary operators (integer semantics; booleans are 0/1 ints). */
enum class BinOp : u8
{
    Add, Sub, Mul, Div, Rem,
    BitAnd, BitOr, BitXor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** Unary operators. */
enum class UnOp : u8
{
    Not,  //!< logical not on 0/1, bitwise not otherwise is NotBits
    Neg,
    NotBits,
};

/** Right-hand sides of assignments. */
struct Rvalue
{
    struct Use
    {
        Operand operand;
    };

    struct Binary
    {
        BinOp op;
        Operand lhs;
        Operand rhs;
    };

    struct Unary
    {
        UnOp op;
        Operand operand;
    };

    struct MakeAggregate
    {
        i64 discriminant = 0;
        std::vector<Operand> fields;
    };

    struct Ref
    {
        MirPlace place;  //!< must resolve to a memory path
    };

    struct Discriminant
    {
        MirPlace place;
    };

    std::variant<Use, Binary, Unary, MakeAggregate, Ref, Discriminant>
        repr;
};

/** Statements within a block. */
struct Statement
{
    struct Assign
    {
        MirPlace place;
        Rvalue rvalue;
    };

    struct SetDiscriminant
    {
        MirPlace place;
        i64 discriminant;
    };

    /** StorageLive/StorageDead/Nop: no-ops kept for MIR fidelity. */
    struct Nop
    {
    };

    std::variant<Assign, SetDiscriminant, Nop> repr;
};

/** Block terminators. */
struct Terminator
{
    struct Goto
    {
        BlockId target;
    };

    struct SwitchInt
    {
        Operand scrutinee;
        std::vector<std::pair<i64, BlockId>> cases;
        BlockId otherwise;
    };

    struct Call
    {
        std::string callee;
        std::vector<Operand> args;
        MirPlace dest;
        BlockId target;
    };

    struct Return
    {
    };

    /**
     * Drop: deallocation is a no-op under the paper's semantics
     * ("similar to how one may specify the semantics of a language
     * with garbage-collection"), but the call edge is kept.
     */
    struct Drop
    {
        MirPlace place;
        BlockId target;
    };

    struct Assert
    {
        Operand cond;
        bool expected = true;
        BlockId target;
    };

    struct Unreachable
    {
    };

    std::variant<Goto, SwitchInt, Call, Return, Drop, Assert, Unreachable>
        repr;
};

/** One basic block. */
struct BasicBlock
{
    std::vector<Statement> statements;
    Terminator terminator;
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_SYNTAX_HH
