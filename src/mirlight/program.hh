/**
 * @file
 * MIRlight functions and programs.
 */

#ifndef HEV_MIRLIGHT_PROGRAM_HH
#define HEV_MIRLIGHT_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "mirlight/syntax.hh"

namespace hev::mir
{

/** One function body as a control-flow graph. */
struct Function
{
    std::string name;
    u32 argCount = 0;    //!< parameters occupy vars 1..argCount
    u32 varCount = 1;    //!< total variables including var 0 (return)
    /**
     * Per-variable classification: true = "local" (address-taken,
     * allocated in memory), false = "temporary" (lifted into the frame
     * environment).  The paper's translator computes this from whether
     * the variable's address is ever taken.
     */
    std::vector<bool> isLocal;
    std::vector<BasicBlock> blocks;  //!< block 0 is the entry

    /** Number of statements plus terminators (size metric). */
    u64
    statementCount() const
    {
        u64 count = 0;
        for (const BasicBlock &block : blocks)
            count += block.statements.size() + 1;
        return count;
    }

    /** True iff any variable is memory-allocated (Sec. 6 statistic). */
    bool
    usesLocals() const
    {
        for (bool local : isLocal) {
            if (local)
                return true;
        }
        return false;
    }
};

/** A program: a set of functions addressed by name. */
struct Program
{
    std::map<std::string, Function> functions;

    void
    add(Function fn)
    {
        functions[fn.name] = std::move(fn);
    }

    const Function *
    find(const std::string &name) const
    {
        auto it = functions.find(name);
        return it == functions.end() ? nullptr : &it->second;
    }

    /** Total statements across all functions. */
    u64
    statementCount() const
    {
        u64 count = 0;
        for (const auto &[name, fn] : functions)
            count += fn.statementCount();
        return count;
    }
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_PROGRAM_HH
