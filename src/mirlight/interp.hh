/**
 * @file
 * Small-step operational semantics for MIRlight, made executable.
 *
 * The interpreter realizes the semantics of paper Sec. 3.1-3.2:
 *  - CompCert-style small steps over CFG positions;
 *  - temporaries live in a per-frame environment, locals in memory;
 *    pushing a frame allocates fresh, never-freed cells for its locals;
 *  - drop terminators are no-ops (deallocation is unobservable);
 *  - dereferences dispatch on the pointer kind: path pointers read the
 *    object memory, trusted pointers call the abstract state's
 *    getter/setter, RData pointers always trap (encapsulation).
 *
 * Calls resolve first to MIR functions, then to registered
 * *primitives* — C++ functions standing in for the functional
 * specifications of lower layers and of the trusted layer.  Verifying
 * layer N against its spec while executing layers below N through
 * their specs is exactly the CCAL discipline.
 */

#ifndef HEV_MIRLIGHT_INTERP_HH
#define HEV_MIRLIGHT_INTERP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mirlight/abstract_state.hh"
#include "mirlight/memory.hh"
#include "mirlight/program.hh"

namespace hev::mir
{

class Interp;

/** A lower-layer or trusted-layer specification callable from MIR. */
using Primitive =
    std::function<Outcome<Value>(Interp &, std::vector<Value>)>;

/** Execution statistics. */
struct InterpStats
{
    u64 steps = 0;        //!< statements + terminators executed
    u64 calls = 0;        //!< MIR-to-MIR calls
    u64 primCalls = 0;    //!< calls into primitives
    u64 trustedLoads = 0;
    u64 trustedStores = 0;
};

/** The MIRlight interpreter. */
class Interp
{
  public:
    /**
     * @param program functions available for execution.
     * @param abs abstract state servicing trusted pointers; if null, a
     *            NullAbstractState is used (any trusted access traps).
     */
    explicit Interp(const Program &program, AbstractState *abs = nullptr);

    /** Register a primitive; shadows nothing (MIR functions win). */
    void registerPrimitive(const std::string &name, Primitive prim);

    /** Allocate a global object; returns its memory cell id. */
    u64 defineGlobal(const std::string &name, Value init);

    /** Cell id of a global; 0 if undefined. */
    u64 globalCell(const std::string &name) const;

    /**
     * Run a function to completion (big-step over the small steps).
     *
     * @param name function or primitive to run.
     * @param args argument values.
     * @param fuel maximum statements/terminators to execute.
     */
    Outcome<Value> call(const std::string &name, std::vector<Value> args,
                        u64 fuel = 1'000'000);

    Memory &memory() { return objectMemory; }
    const Memory &memory() const { return objectMemory; }

    AbstractState &abstractState() { return *absState; }

    const InterpStats &stats() const { return statCounters; }

    const Program &program() const { return prog; }

    /// @name Place/value plumbing shared with primitives
    /// @{

    /** Read through a pointer value (dispatch on pointer kind). */
    Outcome<Value> loadThrough(const Value &pointer);

    /** Write through a pointer value. */
    Outcome<Done> storeThrough(const Value &pointer, Value value);

    /// @}

  private:
    struct Frame
    {
        const Function *fn = nullptr;
        BlockId block = 0;
        u32 stmtIndex = 0;
        std::vector<Value> temps;      //!< values of temporary vars
        std::vector<u64> localCells;   //!< memory cells of local vars
        MirPlace callerDest;           //!< where the caller wants the result
        BlockId callerTarget = 0;      //!< caller block to resume
    };

    /** Evaluate an operand in the top frame. */
    Outcome<Value> evalOperand(Frame &frame, const Operand &operand);

    /** Evaluate an rvalue in the top frame. */
    Outcome<Value> evalRvalue(Frame &frame, const Rvalue &rvalue);

    /** Read the value a place currently denotes. */
    Outcome<Value> readPlace(Frame &frame, const MirPlace &place);

    /** Overwrite the value a place denotes. */
    Outcome<Done> writePlace(Frame &frame, const MirPlace &place,
                             Value value);

    /**
     * Resolve a place to a memory path (for Ref).  The base variable
     * must be a local; Deref steps may pass through path pointers.
     */
    Outcome<Path> resolvePath(Frame &frame, const MirPlace &place);

    /** Push a frame for fn(args). */
    Outcome<Done> pushFrame(const Function &fn, std::vector<Value> args,
                            MirPlace dest, BlockId target);

    /** Execute one statement or terminator; true = computation done. */
    Outcome<bool> step(Value &result);

    const Program &prog;
    NullAbstractState nullState;
    AbstractState *absState;
    std::map<std::string, Primitive> primitives;
    std::map<std::string, u64> globals;
    Memory objectMemory;
    std::vector<Frame> stack;
    InterpStats statCounters;
    u64 fuelLeft = 0;
};

} // namespace hev::mir

#endif // HEV_MIRLIGHT_INTERP_HH
