/**
 * @file
 * The object-view memory: a collection of non-overlapping objects.
 *
 * Memory maps cell ids to whole object trees; paths locate sub-objects
 * by projection, never by byte offset.  The paper's axiom that
 * "assignment to memory ... only chang[es] at the assigned location"
 * holds by construction here: a write mutates exactly the projected
 * field of exactly one cell.
 *
 * Cells are never freed (Sec. 3.2, "Memory Safety Implies Pointer
 * Validity"): deallocating a dead local is a no-op, so a pointer
 * returned out of a function keeps denoting the same object.
 */

#ifndef HEV_MIRLIGHT_MEMORY_HH
#define HEV_MIRLIGHT_MEMORY_HH

#include <unordered_map>

#include "mirlight/trap.hh"
#include "mirlight/value.hh"

namespace hev::mir
{

/** The object store. */
class Memory
{
  public:
    /** Allocate a fresh cell holding `init`; returns its id. */
    u64 alloc(Value init);

    /** Read the sub-object a path denotes. */
    Outcome<Value> read(const Path &path) const;

    /** Overwrite the sub-object a path denotes. */
    Outcome<Done> write(const Path &path, Value value);

    /** True iff the cell exists. */
    bool validCell(u64 cell) const { return cells.count(cell) != 0; }

    /** Number of live cells. */
    u64 size() const { return cells.size(); }

  private:
    std::unordered_map<u64, Value> cells;
    u64 nextCell = 1;
};

/**
 * Navigate `proj` inside a value, read-only.
 *
 * @return pointer to the sub-value, or null if a projection is invalid.
 */
const Value *navigate(const Value &root, const std::vector<u64> &proj);

/** Navigate for mutation. */
Value *navigateMut(Value &root, const std::vector<u64> &proj);

} // namespace hev::mir

#endif // HEV_MIRLIGHT_MEMORY_HH
