#include "mirlight/memory.hh"

#include <sstream>

namespace hev::mir
{

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::OutOfFuel: return "OutOfFuel";
      case TrapKind::TypeError: return "TypeError";
      case TrapKind::BadPath: return "BadPath";
      case TrapKind::RDataDeref: return "RDataDeref";
      case TrapKind::TrustedFault: return "TrustedFault";
      case TrapKind::UnknownFunction: return "UnknownFunction";
      case TrapKind::AssertFailure: return "AssertFailure";
      case TrapKind::Unreachable: return "Unreachable";
      case TrapKind::ArithError: return "ArithError";
      case TrapKind::PrimitiveError: return "PrimitiveError";
    }
    return "Unknown";
}

const Value *
navigate(const Value &root, const std::vector<u64> &proj)
{
    const Value *cursor = &root;
    for (u64 index : proj) {
        if (!cursor->isAggregate())
            return nullptr;
        const auto &fields = cursor->asAggregate().fields;
        if (index >= fields.size())
            return nullptr;
        cursor = &fields[index];
    }
    return cursor;
}

Value *
navigateMut(Value &root, const std::vector<u64> &proj)
{
    Value *cursor = &root;
    for (u64 index : proj) {
        if (!cursor->isAggregate())
            return nullptr;
        auto &fields = cursor->asAggregate().fields;
        if (index >= fields.size())
            return nullptr;
        cursor = &fields[index];
    }
    return cursor;
}

u64
Memory::alloc(Value init)
{
    const u64 cell = nextCell++;
    cells.emplace(cell, std::move(init));
    return cell;
}

Outcome<Value>
Memory::read(const Path &path) const
{
    auto it = cells.find(path.cell);
    if (it == cells.end()) {
        std::ostringstream msg;
        msg << "read of nonexistent cell " << path.cell;
        return Trap{TrapKind::BadPath, msg.str()};
    }
    const Value *sub = navigate(it->second, path.proj);
    if (!sub) {
        std::ostringstream msg;
        msg << "invalid projection on cell " << path.cell;
        return Trap{TrapKind::BadPath, msg.str()};
    }
    return *sub;
}

Outcome<Done>
Memory::write(const Path &path, Value value)
{
    auto it = cells.find(path.cell);
    if (it == cells.end()) {
        std::ostringstream msg;
        msg << "write to nonexistent cell " << path.cell;
        return Trap{TrapKind::BadPath, msg.str()};
    }
    Value *sub = navigateMut(it->second, path.proj);
    if (!sub) {
        std::ostringstream msg;
        msg << "invalid projection on cell " << path.cell;
        return Trap{TrapKind::BadPath, msg.str()};
    }
    *sub = std::move(value);
    return Done{};
}

} // namespace hev::mir
