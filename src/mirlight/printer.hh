/**
 * @file
 * Human-readable rendering of MIRlight programs.
 *
 * rustc prints MIR "in human-readable form"; mirlightgen turns that
 * into abstract syntax (paper Sec. 3.3).  This is the inverse: render
 * the deep embedding back to a rustc-style listing, for debugging
 * models and for inspecting what the conformance checker actually ran.
 */

#ifndef HEV_MIRLIGHT_PRINTER_HH
#define HEV_MIRLIGHT_PRINTER_HH

#include <string>

#include "mirlight/program.hh"

namespace hev::mir
{

/** Render one place, e.g. "(*_3).1". */
std::string renderPlace(const MirPlace &place);

/** Render one operand, e.g. "copy _2" or "const 42". */
std::string renderOperand(const Operand &operand);

/** Render one rvalue, e.g. "Add(copy _1, const 1)". */
std::string renderRvalue(const Rvalue &rvalue);

/** Render one function as a rustc-style MIR listing. */
std::string renderFunction(const Function &fn);

/** Render a whole program. */
std::string renderProgram(const Program &program);

} // namespace hev::mir

#endif // HEV_MIRLIGHT_PRINTER_HH
