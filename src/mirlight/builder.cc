#include "mirlight/builder.hh"

#include "support/logging.hh"

namespace hev::mir
{

FunctionBuilder::FunctionBuilder(std::string name, u32 arg_count)
{
    fn.name = std::move(name);
    fn.argCount = arg_count;
    fn.varCount = arg_count + 1;
    fn.isLocal.assign(fn.varCount, false);
    fn.blocks.emplace_back(); // entry block 0
    fn.blocks[0].terminator = Terminator{Terminator::Unreachable{}};
}

VarId
FunctionBuilder::newVar(bool local)
{
    const VarId var = fn.varCount++;
    fn.isLocal.push_back(local);
    return var;
}

void
FunctionBuilder::markLocal(VarId var)
{
    if (var >= fn.varCount)
        panic("markLocal: variable %u out of range", var);
    fn.isLocal[var] = true;
}

BlockId
FunctionBuilder::newBlock()
{
    fn.blocks.emplace_back();
    fn.blocks.back().terminator = Terminator{Terminator::Unreachable{}};
    current = BlockId(fn.blocks.size() - 1);
    return current;
}

FunctionBuilder &
FunctionBuilder::atBlock(BlockId block)
{
    if (block >= fn.blocks.size())
        panic("atBlock: block %u out of range", block);
    current = block;
    return *this;
}

FunctionBuilder &
FunctionBuilder::assign(MirPlace place, Rvalue rvalue)
{
    cur().statements.push_back(Statement{
        Statement::Assign{std::move(place), std::move(rvalue)}});
    return *this;
}

FunctionBuilder &
FunctionBuilder::setDiscriminant(MirPlace place, i64 discriminant)
{
    cur().statements.push_back(Statement{
        Statement::SetDiscriminant{std::move(place), discriminant}});
    return *this;
}

FunctionBuilder &
FunctionBuilder::nop()
{
    cur().statements.push_back(Statement{Statement::Nop{}});
    return *this;
}

FunctionBuilder &
FunctionBuilder::jump(BlockId target)
{
    cur().terminator = Terminator{Terminator::Goto{target}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::switchInt(Operand scrutinee,
                           std::vector<std::pair<i64, BlockId>> cases,
                           BlockId otherwise)
{
    cur().terminator = Terminator{Terminator::SwitchInt{
        std::move(scrutinee), std::move(cases), otherwise}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::callFn(std::string callee, std::vector<Operand> args,
                        MirPlace dest, BlockId target)
{
    cur().terminator = Terminator{Terminator::Call{
        std::move(callee), std::move(args), std::move(dest), target}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::ret()
{
    cur().terminator = Terminator{Terminator::Return{}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::dropPlace(MirPlace place, BlockId target)
{
    cur().terminator =
        Terminator{Terminator::Drop{std::move(place), target}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::assertTrue(Operand cond, BlockId target)
{
    cur().terminator =
        Terminator{Terminator::Assert{std::move(cond), true, target}};
    return *this;
}

FunctionBuilder &
FunctionBuilder::unreachable()
{
    cur().terminator = Terminator{Terminator::Unreachable{}};
    return *this;
}

Function
FunctionBuilder::build()
{
    return std::move(fn);
}

} // namespace hev::mir
