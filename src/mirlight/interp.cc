#include "mirlight/interp.hh"

#include <sstream>

#include "obs/stats.hh"
#include "obs/trace.hh"

namespace hev::mir
{

namespace
{

Trap
typeError(const std::string &msg)
{
    return Trap{TrapKind::TypeError, msg};
}

// `mir.steps` is deliberately absent from the per-step path: it is
// batch-flushed in Interp::call() as fuel consumed, so the hot loop
// pays nothing for it.
const obs::Counter statSteps("mir.steps");
const obs::Counter statCalls("mir.calls");
const obs::Counter statPrimCalls("mir.prim_calls");
const obs::Counter statTraps("mir.traps");

} // namespace

Interp::Interp(const Program &program, AbstractState *abs)
    : prog(program), absState(abs ? abs : &nullState)
{
}

void
Interp::registerPrimitive(const std::string &name, Primitive prim)
{
    primitives[name] = std::move(prim);
}

u64
Interp::defineGlobal(const std::string &name, Value init)
{
    const u64 cell = objectMemory.alloc(std::move(init));
    globals[name] = cell;
    return cell;
}

u64
Interp::globalCell(const std::string &name) const
{
    auto it = globals.find(name);
    return it == globals.end() ? 0 : it->second;
}

Outcome<Value>
Interp::loadThrough(const Value &pointer)
{
    if (pointer.isPathPtr())
        return objectMemory.read(pointer.asPath());
    if (pointer.isTrustedPtr()) {
        ++statCounters.trustedLoads;
        const TrustedPtr &tp = pointer.asTrusted();
        return absState->trustedLoad(tp.handler, tp.meta);
    }
    if (pointer.isRDataPtr()) {
        return Trap{TrapKind::RDataDeref,
                    "dereference of opaque RData pointer owned by layer " +
                        std::to_string(pointer.asRData().owner)};
    }
    return typeError("dereference of non-pointer " + pointer.toString());
}

Outcome<Done>
Interp::storeThrough(const Value &pointer, Value value)
{
    if (pointer.isPathPtr())
        return objectMemory.write(pointer.asPath(), std::move(value));
    if (pointer.isTrustedPtr()) {
        ++statCounters.trustedStores;
        const TrustedPtr &tp = pointer.asTrusted();
        return absState->trustedStore(tp.handler, tp.meta, value);
    }
    if (pointer.isRDataPtr()) {
        return Trap{TrapKind::RDataDeref,
                    "store through opaque RData pointer owned by layer " +
                        std::to_string(pointer.asRData().owner)};
    }
    return typeError("store through non-pointer " + pointer.toString());
}

Outcome<Value>
Interp::readPlace(Frame &frame, const MirPlace &place)
{
    if (place.var >= frame.fn->varCount)
        return typeError("variable out of range in " + frame.fn->name);

    Value current;
    if (frame.fn->isLocal[place.var]) {
        auto loaded =
            objectMemory.read(Path{frame.localCells[place.var], {}});
        if (!loaded)
            return loaded.trap();
        current = std::move(*loaded);
    } else {
        current = frame.temps[place.var];
    }

    for (const ProjElem &elem : place.proj) {
        if (elem.kind == ProjElem::Kind::Field) {
            if (!current.isAggregate())
                return typeError("field projection on non-aggregate");
            const auto &fields = current.asAggregate().fields;
            if (elem.index >= fields.size())
                return typeError("field index out of range");
            // The field is a sub-object of `current`: move it out
            // before overwriting the parent, or the assignment would
            // destroy its own source.
            Value next = fields[elem.index];
            current = std::move(next);
        } else {
            auto loaded = loadThrough(current);
            if (!loaded)
                return loaded.trap();
            current = std::move(*loaded);
        }
    }
    return current;
}

namespace
{

/** Where a place write lands after projection resolution. */
struct Location
{
    enum class Kind { Temp, Mem, Trusted } kind = Kind::Temp;
    u32 tempVar = 0;                 //!< Temp
    std::vector<u64> proj;           //!< Temp/Trusted sub-projection
    Path path;                       //!< Mem
    TrustedPtr trusted;              //!< Trusted
};

} // namespace

Outcome<Done>
Interp::writePlace(Frame &frame, const MirPlace &place, Value value)
{
    if (place.var >= frame.fn->varCount)
        return typeError("variable out of range in " + frame.fn->name);

    Location loc;
    if (frame.fn->isLocal[place.var]) {
        loc.kind = Location::Kind::Mem;
        loc.path = Path{frame.localCells[place.var], {}};
    } else {
        loc.kind = Location::Kind::Temp;
        loc.tempVar = place.var;
    }

    auto read_loc = [&]() -> Outcome<Value> {
        switch (loc.kind) {
          case Location::Kind::Temp: {
            const Value *sub =
                navigate(frame.temps[loc.tempVar], loc.proj);
            if (!sub)
                return typeError("bad projection into temporary");
            return *sub;
          }
          case Location::Kind::Mem:
            return objectMemory.read(loc.path);
          case Location::Kind::Trusted: {
            ++statCounters.trustedLoads;
            auto loaded =
                absState->trustedLoad(loc.trusted.handler,
                                      loc.trusted.meta);
            if (!loaded)
                return loaded.trap();
            const Value *sub = navigate(*loaded, loc.proj);
            if (!sub)
                return typeError("bad projection into trusted object");
            return *sub;
          }
        }
        return typeError("corrupt location");
    };

    for (const ProjElem &elem : place.proj) {
        if (elem.kind == ProjElem::Kind::Field) {
            if (loc.kind == Location::Kind::Mem)
                loc.path.proj.push_back(elem.index);
            else
                loc.proj.push_back(elem.index);
            continue;
        }
        // Deref: fetch the pointer at the current location, then hop.
        auto ptr = read_loc();
        if (!ptr)
            return ptr.trap();
        if (ptr->isPathPtr()) {
            loc.kind = Location::Kind::Mem;
            loc.path = ptr->asPath();
            loc.proj.clear();
        } else if (ptr->isTrustedPtr()) {
            loc.kind = Location::Kind::Trusted;
            loc.trusted = ptr->asTrusted();
            loc.proj.clear();
        } else if (ptr->isRDataPtr()) {
            return Trap{TrapKind::RDataDeref,
                        "store through opaque RData pointer owned by "
                        "layer " +
                            std::to_string(ptr->asRData().owner)};
        } else {
            return typeError("dereference of non-pointer in place");
        }
    }

    switch (loc.kind) {
      case Location::Kind::Temp: {
        Value *sub = navigateMut(frame.temps[loc.tempVar], loc.proj);
        if (!sub)
            return typeError("bad projection into temporary");
        *sub = std::move(value);
        return Done{};
      }
      case Location::Kind::Mem:
        return objectMemory.write(loc.path, std::move(value));
      case Location::Kind::Trusted: {
        if (loc.proj.empty()) {
            ++statCounters.trustedStores;
            return absState->trustedStore(loc.trusted.handler,
                                          loc.trusted.meta, value);
        }
        // Read-modify-write of a sub-object behind a trusted pointer.
        ++statCounters.trustedLoads;
        auto whole = absState->trustedLoad(loc.trusted.handler,
                                           loc.trusted.meta);
        if (!whole)
            return whole.trap();
        Value copy = std::move(*whole);
        Value *sub = navigateMut(copy, loc.proj);
        if (!sub)
            return typeError("bad projection into trusted object");
        *sub = std::move(value);
        ++statCounters.trustedStores;
        return absState->trustedStore(loc.trusted.handler,
                                      loc.trusted.meta, copy);
      }
    }
    return typeError("corrupt location");
}

Outcome<Path>
Interp::resolvePath(Frame &frame, const MirPlace &place)
{
    if (place.var >= frame.fn->varCount)
        return typeError("variable out of range in " + frame.fn->name);
    if (!frame.fn->isLocal[place.var]) {
        return typeError("address taken of temporary variable in " +
                         frame.fn->name +
                         " (the translator classifies address-taken "
                         "variables as locals)");
    }
    Path path{frame.localCells[place.var], {}};
    for (const ProjElem &elem : place.proj) {
        if (elem.kind == ProjElem::Kind::Field) {
            path.proj.push_back(elem.index);
            continue;
        }
        auto value = objectMemory.read(path);
        if (!value)
            return value.trap();
        if (!value->isPathPtr()) {
            return typeError(
                "reference through a non-path pointer cannot be taken");
        }
        path = value->asPath();
    }
    return path;
}

Outcome<Value>
Interp::evalOperand(Frame &frame, const Operand &operand)
{
    switch (operand.kind) {
      case Operand::Kind::Constant:
        return operand.constant;
      case Operand::Kind::Copy:
      case Operand::Kind::Move:
        return readPlace(frame, operand.place);
    }
    return typeError("corrupt operand");
}

Outcome<Value>
Interp::evalRvalue(Frame &frame, const Rvalue &rvalue)
{
    if (const auto *use = std::get_if<Rvalue::Use>(&rvalue.repr))
        return evalOperand(frame, use->operand);

    if (const auto *bin = std::get_if<Rvalue::Binary>(&rvalue.repr)) {
        auto lhs = evalOperand(frame, bin->lhs);
        if (!lhs)
            return lhs.trap();
        auto rhs = evalOperand(frame, bin->rhs);
        if (!rhs)
            return rhs.trap();
        // Structural equality works on every value kind.
        if (bin->op == BinOp::Eq)
            return Value::boolVal(*lhs == *rhs);
        if (bin->op == BinOp::Ne)
            return Value::boolVal(!(*lhs == *rhs));
        if (!lhs->isInt() || !rhs->isInt())
            return typeError("arithmetic on non-integers");
        const i64 a = lhs->asInt();
        const i64 b = rhs->asInt();
        const u64 ua = u64(a);
        const u64 ub = u64(b);
        switch (bin->op) {
          case BinOp::Add: return Value::intVal(i64(ua + ub));
          case BinOp::Sub: return Value::intVal(i64(ua - ub));
          case BinOp::Mul: return Value::intVal(i64(ua * ub));
          case BinOp::Div:
            if (b == 0)
                return Trap{TrapKind::ArithError, "division by zero"};
            return Value::intVal(a / b);
          case BinOp::Rem:
            if (b == 0)
                return Trap{TrapKind::ArithError, "remainder by zero"};
            return Value::intVal(a % b);
          case BinOp::BitAnd: return Value::intVal(i64(ua & ub));
          case BinOp::BitOr: return Value::intVal(i64(ua | ub));
          case BinOp::BitXor: return Value::intVal(i64(ua ^ ub));
          case BinOp::Shl: return Value::intVal(i64(ua << (ub & 63)));
          case BinOp::Shr: return Value::intVal(i64(ua >> (ub & 63)));
          case BinOp::Lt: return Value::boolVal(a < b);
          case BinOp::Le: return Value::boolVal(a <= b);
          case BinOp::Gt: return Value::boolVal(a > b);
          case BinOp::Ge: return Value::boolVal(a >= b);
          default: return typeError("corrupt binary operator");
        }
    }

    if (const auto *un = std::get_if<Rvalue::Unary>(&rvalue.repr)) {
        auto operand = evalOperand(frame, un->operand);
        if (!operand)
            return operand.trap();
        if (!operand->isInt())
            return typeError("unary operator on non-integer");
        switch (un->op) {
          case UnOp::Not:
            return Value::boolVal(operand->asInt() == 0);
          case UnOp::Neg:
            return Value::intVal(i64(0 - u64(operand->asInt())));
          case UnOp::NotBits:
            return Value::intVal(~operand->asInt());
        }
        return typeError("corrupt unary operator");
    }

    if (const auto *agg =
            std::get_if<Rvalue::MakeAggregate>(&rvalue.repr)) {
        std::vector<Value> fields;
        fields.reserve(agg->fields.size());
        for (const Operand &op : agg->fields) {
            auto field = evalOperand(frame, op);
            if (!field)
                return field.trap();
            fields.push_back(std::move(*field));
        }
        return Value::aggregate(agg->discriminant, std::move(fields));
    }

    if (const auto *ref = std::get_if<Rvalue::Ref>(&rvalue.repr)) {
        auto path = resolvePath(frame, ref->place);
        if (!path)
            return path.trap();
        return Value::pathPtr(*path);
    }

    if (const auto *disc =
            std::get_if<Rvalue::Discriminant>(&rvalue.repr)) {
        auto value = readPlace(frame, disc->place);
        if (!value)
            return value.trap();
        if (value->isAggregate())
            return Value::intVal(value->asAggregate().discriminant);
        if (value->isInt())
            return *value;
        return typeError("discriminant of non-enum value");
    }

    return typeError("corrupt rvalue");
}

Outcome<Done>
Interp::pushFrame(const Function &fn, std::vector<Value> args,
                  MirPlace dest, BlockId target)
{
    if (args.size() != fn.argCount) {
        std::ostringstream msg;
        msg << fn.name << " expects " << fn.argCount << " args, got "
            << args.size();
        return typeError(msg.str());
    }
    if (fn.blocks.empty())
        return typeError(fn.name + " has no blocks");

    Frame frame;
    frame.fn = &fn;
    frame.callerDest = std::move(dest);
    frame.callerTarget = target;
    frame.temps.assign(fn.varCount, Value::unit());
    frame.localCells.assign(fn.varCount, 0);
    for (u32 var = 0; var < fn.varCount; ++var) {
        if (fn.isLocal[var])
            frame.localCells[var] = objectMemory.alloc(Value::unit());
    }
    for (u32 i = 0; i < fn.argCount; ++i) {
        const u32 var = i + 1;
        if (fn.isLocal[var]) {
            auto written = objectMemory.write(
                Path{frame.localCells[var], {}}, std::move(args[i]));
            if (!written)
                return written.trap();
        } else {
            frame.temps[var] = std::move(args[i]);
        }
    }
    stack.push_back(std::move(frame));
    obs::traceEvent(obs::EventType::MirCall, fn.name.c_str(),
                    fn.argCount);
    return Done{};
}

Outcome<bool>
Interp::step(Value &result)
{
    Frame &frame = stack.back();
    const BasicBlock &block = frame.fn->blocks.at(frame.block);
    ++statCounters.steps;

    if (frame.stmtIndex < block.statements.size()) {
        const Statement &stmt = block.statements[frame.stmtIndex];
        ++frame.stmtIndex;

        if (const auto *assign =
                std::get_if<Statement::Assign>(&stmt.repr)) {
            auto value = evalRvalue(frame, assign->rvalue);
            if (!value)
                return value.trap();
            auto written =
                writePlace(frame, assign->place, std::move(*value));
            if (!written)
                return written.trap();
            return false;
        }
        if (const auto *setdisc =
                std::get_if<Statement::SetDiscriminant>(&stmt.repr)) {
            auto value = readPlace(frame, setdisc->place);
            if (!value)
                return value.trap();
            if (!value->isAggregate())
                return typeError("set_discriminant on non-aggregate");
            Value updated = std::move(*value);
            updated.asAggregate().discriminant = setdisc->discriminant;
            auto written =
                writePlace(frame, setdisc->place, std::move(updated));
            if (!written)
                return written.trap();
            return false;
        }
        // Nop / storage markers.
        return false;
    }

    // Terminator.
    const Terminator &term = block.terminator;

    if (const auto *go = std::get_if<Terminator::Goto>(&term.repr)) {
        if (go->target >= frame.fn->blocks.size())
            return typeError("goto target out of range");
        frame.block = go->target;
        frame.stmtIndex = 0;
        return false;
    }

    if (const auto *sw = std::get_if<Terminator::SwitchInt>(&term.repr)) {
        auto scrutinee = evalOperand(frame, sw->scrutinee);
        if (!scrutinee)
            return scrutinee.trap();
        if (!scrutinee->isInt())
            return typeError("switch on non-integer");
        BlockId target = sw->otherwise;
        for (const auto &[match, dest] : sw->cases) {
            if (match == scrutinee->asInt()) {
                target = dest;
                break;
            }
        }
        if (target >= frame.fn->blocks.size())
            return typeError("switch target out of range");
        frame.block = target;
        frame.stmtIndex = 0;
        return false;
    }

    if (const auto *call = std::get_if<Terminator::Call>(&term.repr)) {
        std::vector<Value> args;
        args.reserve(call->args.size());
        for (const Operand &op : call->args) {
            auto arg = evalOperand(frame, op);
            if (!arg)
                return arg.trap();
            args.push_back(std::move(*arg));
        }
        if (const Function *callee = prog.find(call->callee)) {
            ++statCounters.calls;
            statCalls.inc();
            auto pushed = pushFrame(*callee, std::move(args), call->dest,
                                    call->target);
            if (!pushed)
                return pushed.trap();
            return false;
        }
        auto prim = primitives.find(call->callee);
        if (prim == primitives.end()) {
            return Trap{TrapKind::UnknownFunction,
                        "call to unknown function " + call->callee};
        }
        ++statCounters.primCalls;
        statPrimCalls.inc();
        auto prim_result = prim->second(*this, std::move(args));
        if (!prim_result)
            return prim_result.trap();
        auto written =
            writePlace(frame, call->dest, std::move(*prim_result));
        if (!written)
            return written.trap();
        if (call->target >= frame.fn->blocks.size())
            return typeError("call return target out of range");
        frame.block = call->target;
        frame.stmtIndex = 0;
        return false;
    }

    if (std::get_if<Terminator::Return>(&term.repr)) {
        auto returned = readPlace(frame, MirPlace::of(0));
        if (!returned)
            return returned.trap();
        obs::traceEvent(obs::EventType::MirReturn,
                        frame.fn->name.c_str());
        const MirPlace dest = frame.callerDest;
        const BlockId target = frame.callerTarget;
        stack.pop_back();
        if (stack.empty()) {
            result = std::move(*returned);
            return true;
        }
        Frame &caller = stack.back();
        auto written = writePlace(caller, dest, std::move(*returned));
        if (!written)
            return written.trap();
        if (target >= caller.fn->blocks.size())
            return typeError("return target out of range");
        caller.block = target;
        caller.stmtIndex = 0;
        return false;
    }

    if (const auto *drop = std::get_if<Terminator::Drop>(&term.repr)) {
        // Deallocation is a no-op (garbage-collected view); the drop
        // edge is still a jump.
        if (drop->target >= frame.fn->blocks.size())
            return typeError("drop target out of range");
        frame.block = drop->target;
        frame.stmtIndex = 0;
        return false;
    }

    if (const auto *assert_ =
            std::get_if<Terminator::Assert>(&term.repr)) {
        auto cond = evalOperand(frame, assert_->cond);
        if (!cond)
            return cond.trap();
        if (!cond->isInt())
            return typeError("assert on non-integer");
        if (cond->asBool() != assert_->expected) {
            return Trap{TrapKind::AssertFailure,
                        "assert failed in " + frame.fn->name};
        }
        if (assert_->target >= frame.fn->blocks.size())
            return typeError("assert target out of range");
        frame.block = assert_->target;
        frame.stmtIndex = 0;
        return false;
    }

    return Trap{TrapKind::Unreachable,
                "unreachable terminator executed in " + frame.fn->name};
}

Outcome<Value>
Interp::call(const std::string &name, std::vector<Value> args, u64 fuel)
{
    // Primitives are callable directly, matching the ability to invoke
    // any layer's interface in a proof.
    if (!prog.find(name)) {
        auto prim = primitives.find(name);
        if (prim != primitives.end()) {
            ++statCounters.primCalls;
            statPrimCalls.inc();
            return prim->second(*this, std::move(args));
        }
        return Trap{TrapKind::UnknownFunction,
                    "no function or primitive named " + name};
    }

    // MirCall begin events balance with MirReturn end events; on an
    // abnormal exit the frames never return, so close their spans
    // here before clearing the stack.
    auto unwind_spans = [&]() {
        if (!obs::traceEnabled())
            return;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            obs::traceEvent(obs::EventType::MirReturn,
                            it->fn->name.c_str(), 1);
        }
    };

    stack.clear();
    auto pushed = pushFrame(*prog.find(name), std::move(args),
                            MirPlace::of(0), 0);
    if (!pushed)
        return pushed.trap();
    statCalls.inc();

    fuelLeft = fuel;
    Value result;
    for (;;) {
        if (fuelLeft == 0) {
            statSteps.add(fuel);
            statTraps.inc();
            unwind_spans();
            stack.clear();
            return Trap{TrapKind::OutOfFuel,
                        "fuel exhausted while executing " + name};
        }
        --fuelLeft;
        auto done = step(result);
        if (!done) {
            statSteps.add(fuel - fuelLeft);
            statTraps.inc();
            unwind_spans();
            stack.clear();
            return done.trap();
        }
        if (*done) {
            statSteps.add(fuel - fuelLeft);
            return result;
        }
    }
}

} // namespace hev::mir
