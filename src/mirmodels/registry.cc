#include "mirmodels/registry.hh"

#include "mirmodels/common.hh"
#include "support/logging.hh"

namespace hev::mirmodels
{

namespace
{

using AddFn = void (*)(mir::Program &, const ccal::Geometry &);

constexpr AddFn layerBuilders[] = {
    nullptr,     // layer 0 (unused)
    nullptr,     // layer 1: the trusted layer has no MIR code
    addLayer02, addLayer03, addLayer04, addLayer05, addLayer06,
    addLayer07, addLayer08, addLayer09, addLayer10, addLayer11,
    addLayer12, addLayer13, addLayer14, addLayer15,
};

struct LayerInfo
{
    const char *name;
    std::vector<std::string> functions;
};

const LayerInfo layerTable[] = {
    {"(unused)", {}},
    {"trusted primitives", {}},
    {"frame allocator",
     {"frame_alloc", "frame_free", "frame_alloc_pair"}},
    {"PTE packing",
     {"pte_make", "pte_addr", "pte_flags", "pte_present", "pte_writable",
      "pte_huge", "pte_set_dirty", "pte_clear_dirty", "pte_builder_seal",
      "pte_build"}},
    {"VA decomposition", {"va_index"}},
    {"entry access", {"entry_read", "entry_write"}},
    {"next-table resolution", {"next_table"}},
    {"table walk", {"walk_to_leaf"}},
    {"page-walk query", {"pt_query"}},
    {"map", {"pt_map", "map_req_huge", "pt_map_checked"}},
    {"unmap", {"pt_unmap", "pt_destroy"}},
    {"address spaces (RData)",
     {"as_create", "as_map", "as_query", "as_unmap", "as_destroy"}},
    {"EPCM", {"epcm_alloc", "epcm_free", "epcm_lookup", "epcm_owner"}},
    {"marshalling buffer", {"mbuf_map", "mbuf_check"}},
    {"hypercalls",
     {"hc_init", "hc_add_page", "hc_init_finish", "hc_remove"}},
    {"memory isolation", {"mem_translate"}},
};

} // namespace

mir::Program
buildLayer(int layer, const ccal::Geometry &geo)
{
    if (layer < 2 || layer > layerCount)
        panic("buildLayer: layer %d out of range", layer);
    mir::Program prog;
    layerBuilders[layer](prog, geo);
    return prog;
}

mir::Program
buildAll(const ccal::Geometry &geo)
{
    mir::Program prog;
    for (int layer = 2; layer <= layerCount; ++layer)
        layerBuilders[layer](prog, geo);
    return prog;
}

std::vector<std::string>
layerFunctions(int layer)
{
    if (layer < 1 || layer > layerCount)
        return {};
    return layerTable[layer].functions;
}

int
layerOf(const std::string &function)
{
    for (int layer = 1; layer <= layerCount; ++layer) {
        for (const std::string &name : layerTable[layer].functions) {
            if (name == function)
                return layer;
        }
    }
    return 0;
}

const char *
layerName(int layer)
{
    if (layer < 1 || layer > layerCount)
        return "(unknown)";
    return layerTable[layer].name;
}

} // namespace hev::mirmodels
