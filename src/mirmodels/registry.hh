/**
 * @file
 * Registry of the 15-layer MIR model stack.
 *
 * Mirrors the paper's arrangement of the verified memory-module
 * functions into 15 layers ordered by the call graph (Sec. 4): the
 * proof of a layer-N function may only rely on the *specifications* of
 * lower layers, which the checker realizes by interpreting a program
 * that contains only layer N's code while all lower-layer calls hit
 * spec primitives.
 */

#ifndef HEV_MIRMODELS_REGISTRY_HH
#define HEV_MIRMODELS_REGISTRY_HH

#include <string>
#include <vector>

#include "ccal/geometry.hh"
#include "mirlight/program.hh"

namespace hev::mirmodels
{

/** Number of layers in the stack (layer 1 is the trusted layer). */
constexpr int layerCount = 15;

/**
 * Build the MIR program of exactly one layer (2..15).  Layer 1 is the
 * trusted layer and has no MIR code.
 */
mir::Program buildLayer(int layer, const ccal::Geometry &geo);

/** Build the whole stack as one program (for end-to-end execution). */
mir::Program buildAll(const ccal::Geometry &geo);

/** Names of the MIR functions belonging to a layer. */
std::vector<std::string> layerFunctions(int layer);

/** The layer a function belongs to; 0 if unknown. */
int layerOf(const std::string &function);

/** Human-readable description of a layer. */
const char *layerName(int layer);

} // namespace hev::mirmodels

#endif // HEV_MIRMODELS_REGISTRY_HH
