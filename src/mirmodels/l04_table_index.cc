/**
 * @file
 * Layer 4 — virtual-address decomposition, in MIR.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn va_index(va, level) -> u64 : (va >> (12 + 9*(level-1))) & 0x1ff */
mir::Function
makeVaIndex()
{
    FunctionBuilder fb("va_index", 2);
    const VarId sh = fb.newVar();
    const VarId t = fb.newVar();
    fb.atBlock(0)
        .assign(p(sh), mir::bin(BinOp::Sub, v(2), c(1)))
        .assign(p(sh), mir::bin(BinOp::Mul, v(sh), c(9)))
        .assign(p(sh), mir::bin(BinOp::Add, v(sh), c(12)))
        .assign(p(t), mir::bin(BinOp::Shr, v(1), v(sh)))
        .assign(ret(), mir::bin(BinOp::BitAnd, v(t), c(0x1ff)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer04(Program &prog, const Geometry &)
{
    prog.add(makeVaIndex());
}

} // namespace hev::mirmodels
