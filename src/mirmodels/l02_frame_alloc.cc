/**
 * @file
 * Layer 2 — the frame allocator, in MIR.
 *
 * `frame_alloc` scans the allocator bitmap first-fit through trusted
 * bitmap pointers, claims a frame, and zeroes it word by word through
 * trusted physical-word pointers.  `frame_free` validates and clears
 * the bit.  Conforms to specFrameAlloc / specFrameFree.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn frame_alloc() -> u64  (0 = out of memory) */
mir::Function
makeFrameAlloc(const Geometry &geo)
{
    FunctionBuilder fb("frame_alloc", 0);
    const VarId i = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId bit = fb.newVar();
    const VarId frame = fb.newVar();
    const VarId off = fb.newVar();
    const VarId addr = fb.newVar();
    const VarId wptr = fb.newVar();
    const VarId scratch = fb.newVar();

    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId body2 = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId take = fb.newBlock();
    const BlockId zhead = fb.newBlock();
    const BlockId zbody = fb.newBlock();
    const BlockId zbody2 = fb.newBlock();
    const BlockId done = fb.newBlock();
    const BlockId oom = fb.newBlock();

    fb.atBlock(0)
        .assign(p(i), mir::use(c(0)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Lt, v(i), cu(geo.frameCount)))
        .switchInt(v(cond), {{0, oom}}, body);
    fb.atBlock(body)
        .callFn("bitmap_ptr", {v(i)}, p(ptr), body2);
    fb.atBlock(body2)
        .assign(p(bit), mir::use(Operand::copy(p(ptr).deref())))
        .switchInt(v(bit), {{0, take}}, next);
    fb.atBlock(next)
        .assign(p(i), mir::bin(BinOp::Add, v(i), c(1)))
        .jump(head);
    fb.atBlock(take)
        .assign(p(ptr).deref(), mir::use(c(1)))
        .assign(p(frame), mir::bin(BinOp::Mul, v(i), c(i64(pageSize))))
        .assign(p(frame),
                mir::bin(BinOp::Add, v(frame), cu(geo.frameBase)))
        .assign(p(off), mir::use(c(0)))
        .jump(zhead);
    fb.atBlock(zhead)
        .assign(p(cond),
                mir::bin(BinOp::Lt, v(off), c(i64(pageSize))))
        .switchInt(v(cond), {{0, done}}, zbody);
    fb.atBlock(zbody)
        .assign(p(addr), mir::bin(BinOp::Add, v(frame), v(off)))
        .callFn("pt_ptr", {v(addr)}, p(wptr), zbody2);
    fb.atBlock(zbody2)
        .assign(p(wptr).deref(), mir::use(c(0)))
        .assign(p(off), mir::bin(BinOp::Add, v(off), c(8)))
        .jump(zhead);
    fb.atBlock(done)
        .assign(ret(), mir::use(v(frame)))
        .ret();
    fb.atBlock(oom)
        .assign(ret(), mir::use(c(0)))
        .ret();
    (void)scratch;
    return fb.build();
}

/** fn frame_free(frame: u64) -> i64  (0 = ok, else error code) */
mir::Function
makeFrameFree(const Geometry &geo)
{
    FunctionBuilder fb("frame_free", 1);
    const VarId cond = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId bit = fb.newVar();

    const BlockId align_ok = fb.newBlock();
    const BlockId low_ok = fb.newBlock();
    const BlockId high_ok = fb.newBlock();
    const BlockId have_ptr = fb.newBlock();
    const BlockId clear = fb.newBlock();
    const BlockId invalid = fb.newBlock();

    // frame % pageSize == 0
    fb.atBlock(0)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(1), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, align_ok}}, invalid);
    // frame >= frameBase
    fb.atBlock(align_ok)
        .assign(p(cond), mir::bin(BinOp::Ge, v(1), cu(geo.frameBase)))
        .switchInt(v(cond), {{0, invalid}}, low_ok);
    // frame < frameBase + areaBytes
    fb.atBlock(low_ok)
        .assign(p(cond),
                mir::bin(BinOp::Lt, v(1),
                         cu(geo.frameBase + geo.frameAreaBytes())))
        .switchInt(v(cond), {{0, invalid}}, high_ok);
    fb.atBlock(high_ok)
        .assign(p(idx), mir::bin(BinOp::Sub, v(1), cu(geo.frameBase)))
        .assign(p(idx), mir::bin(BinOp::Shr, v(idx), c(12)))
        .callFn("bitmap_ptr", {v(idx)}, p(ptr), have_ptr);
    fb.atBlock(have_ptr)
        .assign(p(bit), mir::use(Operand::copy(p(ptr).deref())))
        .switchInt(v(bit), {{0, invalid}}, clear);
    fb.atBlock(clear)
        .assign(p(ptr).deref(), mir::use(c(0)))
        .assign(ret(), mir::use(c(0)))
        .ret();
    fb.atBlock(invalid)
        .assign(ret(), mir::use(c(ccal::errInvalidParam)))
        .ret();
    return fb.build();
}

/**
 * fn frame_alloc_pair() -> (u64, u64)
 *
 * Allocate two frames through a caller-owned staging struct: the pair
 * lives in a memory-allocated LOCAL and is filled through a pointer —
 * the idiom the Rust code uses for returning multiple table frames.
 * Either element is 0 when the allocator ran dry.
 */
mir::Function
makeFrameAllocPair()
{
    FunctionBuilder fb("frame_alloc_pair", 0);
    const VarId pair = fb.newVar(true); // address-taken local
    const VarId ptr = fb.newVar();
    const VarId f = fb.newVar();
    const BlockId first = fb.newBlock();
    const BlockId second = fb.newBlock();
    const BlockId done = fb.newBlock();
    fb.atBlock(0)
        .assign(p(pair), mir::makeAggregate(0, {c(0), c(0)}))
        .assign(p(ptr), mir::refOf(p(pair)))
        .callFn("frame_alloc", {}, p(f), first);
    fb.atBlock(first)
        .assign(p(ptr).deref().field(0), mir::use(v(f)))
        .callFn("frame_alloc", {}, p(f), second);
    fb.atBlock(second)
        .assign(p(ptr).deref().field(1), mir::use(v(f)))
        .jump(done);
    fb.atBlock(done)
        .assign(ret(), mir::use(v(pair)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer02(Program &prog, const Geometry &geo)
{
    prog.add(makeFrameAlloc(geo));
    prog.add(makeFrameFree(geo));
    prog.add(makeFrameAllocPair());
}

} // namespace hev::mirmodels
