/**
 * @file
 * Layer 13 — marshalling-buffer mapping in MIR.
 *
 * Maps the buffer into both translation stages of an enclave: GPT
 * (mbuf_gva -> GPA window) and EPT (window -> normal-memory backing).
 * The mappings are fixed for the enclave's whole life cycle (paper
 * Sec. 2.1).  Conforms to specMbufMap.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/**
 * fn mbuf_map(gpt_h, ept_h, mbuf_gva, gpa_window, backing, pages)
 *     -> i64
 */
mir::Function
makeMbufMap()
{
    FunctionBuilder fb("mbuf_map", 6);
    const VarId i = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId off = fb.newVar();
    const VarId a_gva = fb.newVar();
    const VarId a_win = fb.newVar();
    const VarId a_back = fb.newVar();
    const VarId rc = fb.newVar();

    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId gpt_done = fb.newBlock();
    const BlockId ept_call = fb.newBlock();
    const BlockId ept_done = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId success = fb.newBlock();
    const BlockId fail = fb.newBlock();

    fb.atBlock(0)
        .assign(p(i), mir::use(c(0)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Lt, v(i), v(6)))
        .switchInt(v(cond), {{0, success}}, body);
    fb.atBlock(body)
        .assign(p(off), mir::bin(BinOp::Mul, v(i), c(i64(pageSize))))
        .assign(p(a_gva), mir::bin(BinOp::Add, v(3), v(off)))
        .assign(p(a_win), mir::bin(BinOp::Add, v(4), v(off)))
        .assign(p(a_back), mir::bin(BinOp::Add, v(5), v(off)))
        .callFn("as_map",
                {v(1), v(a_gva), v(a_win), c(i64(ccal::pteRwFlags))},
                p(rc), gpt_done);
    fb.atBlock(gpt_done).switchInt(v(rc), {{0, ept_call}}, fail);
    fb.atBlock(ept_call)
        .callFn("as_map",
                {v(2), v(a_win), v(a_back), c(i64(ccal::pteRwFlags))},
                p(rc), ept_done);
    fb.atBlock(ept_done).switchInt(v(rc), {{0, next}}, fail);
    fb.atBlock(next)
        .assign(p(i), mir::bin(BinOp::Add, v(i), c(1)))
        .jump(head);
    fb.atBlock(success).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(fail).assign(ret(), mir::use(v(rc))).ret();
    return fb.build();
}

/**
 * fn mbuf_check(gpt_h, ept_h, mbuf_gva, gpa_window, backing, pages)
 *     -> i64
 *
 * Audit of the fixed mappings: each window page must still translate
 * gva -> window -> backing with the write bit on both stages.
 * Conforms to specMbufCheck.
 */
mir::Function
makeMbufCheck()
{
    FunctionBuilder fb("mbuf_check", 6);
    const VarId i = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId off = fb.newVar();
    const VarId a_gva = fb.newVar();
    const VarId a_win = fb.newVar();
    const VarId a_back = fb.newVar();
    const VarId q = fb.newVar();
    const VarId d = fb.newVar();
    const VarId pair = fb.newVar();
    const VarId pa = fb.newVar();
    const VarId fl = fb.newVar();

    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId have_s1 = fb.newBlock();
    const BlockId s1_some = fb.newBlock();
    const BlockId s1_flags = fb.newBlock();
    const BlockId stage2 = fb.newBlock();
    const BlockId have_s2 = fb.newBlock();
    const BlockId s2_some = fb.newBlock();
    const BlockId s2_flags = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId success = fb.newBlock();
    const BlockId err_unmapped = fb.newBlock();
    const BlockId err_iso = fb.newBlock();

    fb.atBlock(0)
        .assign(p(i), mir::use(c(0)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Lt, v(i), v(6)))
        .switchInt(v(cond), {{0, success}}, body);
    fb.atBlock(body)
        .assign(p(off), mir::bin(BinOp::Mul, v(i), c(i64(pageSize))))
        .assign(p(a_gva), mir::bin(BinOp::Add, v(3), v(off)))
        .assign(p(a_win), mir::bin(BinOp::Add, v(4), v(off)))
        .assign(p(a_back), mir::bin(BinOp::Add, v(5), v(off)))
        .callFn("as_query", {v(1), v(a_gva)}, p(q), have_s1);
    fb.atBlock(have_s1)
        .assign(p(d), mir::discriminantOf(p(q)))
        .switchInt(v(d), {{0, err_unmapped}}, s1_some);
    fb.atBlock(s1_some)
        .assign(p(pair), mir::use(vf(q, 0)))
        .assign(p(pa), mir::use(Operand::copy(p(pair).field(0))))
        .assign(p(cond), mir::bin(BinOp::Eq, v(pa), v(a_win)))
        .switchInt(v(cond), {{0, err_iso}}, s1_flags);
    fb.atBlock(s1_flags)
        .assign(p(fl), mir::use(Operand::copy(p(pair).field(1))))
        .assign(p(fl), mir::bin(BinOp::Shr, v(fl), c(1)))
        .assign(p(fl), mir::bin(BinOp::BitAnd, v(fl), c(1)))
        .switchInt(v(fl), {{0, err_iso}}, stage2);
    fb.atBlock(stage2)
        .callFn("as_query", {v(2), v(a_win)}, p(q), have_s2);
    fb.atBlock(have_s2)
        .assign(p(d), mir::discriminantOf(p(q)))
        .switchInt(v(d), {{0, err_unmapped}}, s2_some);
    fb.atBlock(s2_some)
        .assign(p(pair), mir::use(vf(q, 0)))
        .assign(p(pa), mir::use(Operand::copy(p(pair).field(0))))
        .assign(p(cond), mir::bin(BinOp::Eq, v(pa), v(a_back)))
        .switchInt(v(cond), {{0, err_iso}}, s2_flags);
    fb.atBlock(s2_flags)
        .assign(p(fl), mir::use(Operand::copy(p(pair).field(1))))
        .assign(p(fl), mir::bin(BinOp::Shr, v(fl), c(1)))
        .assign(p(fl), mir::bin(BinOp::BitAnd, v(fl), c(1)))
        .switchInt(v(fl), {{0, err_iso}}, next);
    fb.atBlock(next)
        .assign(p(i), mir::bin(BinOp::Add, v(i), c(1)))
        .jump(head);
    fb.atBlock(success).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(err_unmapped)
        .assign(ret(), mir::use(c(ccal::errNotMapped)))
        .ret();
    fb.atBlock(err_iso)
        .assign(ret(), mir::use(c(ccal::errIsolation)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer13(Program &prog, const Geometry &)
{
    prog.add(makeMbufMap());
    prog.add(makeMbufCheck());
}

} // namespace hev::mirmodels
