/**
 * @file
 * Layer 5 — raw entry access, in MIR.
 *
 * The only layer that dereferences physical memory: it forms the word
 * address of entry (table, index) and goes through the trusted-cast
 * primitive `pt_ptr`, whose spec returns a trusted pointer into the
 * abstract state's frame-area array (paper Sec. 3.4, case 2).
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn entry_read(table, index) -> u64 */
mir::Function
makeEntryRead()
{
    FunctionBuilder fb("entry_read", 2);
    const VarId addr = fb.newVar();
    const VarId ptr = fb.newVar();
    const BlockId have_ptr = fb.newBlock();
    fb.atBlock(0)
        .assign(p(addr), mir::bin(BinOp::Mul, v(2), c(8)))
        .assign(p(addr), mir::bin(BinOp::Add, v(1), v(addr)))
        .callFn("pt_ptr", {v(addr)}, p(ptr), have_ptr);
    fb.atBlock(have_ptr)
        .assign(ret(), mir::use(Operand::copy(p(ptr).deref())))
        .ret();
    return fb.build();
}

/** fn entry_write(table, index, entry) -> () */
mir::Function
makeEntryWrite()
{
    FunctionBuilder fb("entry_write", 3);
    const VarId addr = fb.newVar();
    const VarId ptr = fb.newVar();
    const BlockId have_ptr = fb.newBlock();
    fb.atBlock(0)
        .assign(p(addr), mir::bin(BinOp::Mul, v(2), c(8)))
        .assign(p(addr), mir::bin(BinOp::Add, v(1), v(addr)))
        .callFn("pt_ptr", {v(addr)}, p(ptr), have_ptr);
    fb.atBlock(have_ptr)
        .assign(p(ptr).deref(), mir::use(v(3)))
        .assign(ret(), mir::use(Operand::constOp(Value::unit())))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer05(Program &prog, const Geometry &)
{
    prog.add(makeEntryRead());
    prog.add(makeEntryWrite());
}

} // namespace hev::mirmodels
