/**
 * @file
 * Layer 7 — walk from the root down to the leaf table.
 *
 * The loop body was kept small in the retrofitted Rust code (paper
 * Sec. 2.3, change 1) so that Coq proofs stay structured; the MIR loop
 * here is correspondingly tight.  Conforms to specWalkToLeaf.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn walk_to_leaf(root, va, alloc_missing) -> Result<u64, i64> */
mir::Function
makeWalkToLeaf()
{
    FunctionBuilder fb("walk_to_leaf", 3);
    const VarId t = fb.newVar();
    const VarId level = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId r = fb.newVar();
    const VarId d = fb.newVar();

    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId have_idx = fb.newBlock();
    const BlockId have_r = fb.newBlock();
    const BlockId ok_case = fb.newBlock();
    const BlockId err_case = fb.newBlock();
    const BlockId done = fb.newBlock();

    fb.atBlock(0)
        .assign(p(t), mir::use(v(1)))
        .assign(p(level), mir::use(c(pagingLevels)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Gt, v(level), c(1)))
        .switchInt(v(cond), {{0, done}}, body);
    fb.atBlock(body)
        .callFn("va_index", {v(2), v(level)}, p(idx), have_idx);
    fb.atBlock(have_idx)
        .callFn("next_table", {v(t), v(idx), v(3)}, p(r), have_r);
    fb.atBlock(have_r)
        .assign(p(d), mir::discriminantOf(p(r)))
        .switchInt(v(d), {{0, ok_case}}, err_case);
    fb.atBlock(ok_case)
        .assign(p(t), mir::use(vf(r, 0)))
        .assign(p(level), mir::bin(BinOp::Sub, v(level), c(1)))
        .jump(head);
    fb.atBlock(err_case)
        .assign(ret(), mir::use(v(r))) // propagate the Err verbatim
        .ret();
    fb.atBlock(done)
        .assign(ret(), mir::makeAggregate(0, {v(t)}))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer07(Program &prog, const Geometry &)
{
    prog.add(makeWalkToLeaf());
}

} // namespace hev::mirmodels
