/**
 * @file
 * Layer 10 — remove a terminal mapping.  Conforms to specPtUnmap.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn pt_unmap(root, va) -> i64 */
mir::Function
makePtUnmap()
{
    FunctionBuilder fb("pt_unmap", 2);
    const VarId cond = fb.newVar();
    const VarId r = fb.newVar();
    const VarId d = fb.newVar();
    const VarId leaf = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId e = fb.newVar();
    const VarId pres = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId va_ok = fb.newBlock();
    const BlockId have_r = fb.newBlock();
    const BlockId walk_ok = fb.newBlock();
    const BlockId walk_err = fb.newBlock();
    const BlockId have_idx = fb.newBlock();
    const BlockId have_e = fb.newBlock();
    const BlockId have_pres = fb.newBlock();
    const BlockId clear = fb.newBlock();
    const BlockId cleared = fb.newBlock();
    const BlockId err_align = fb.newBlock();
    const BlockId err_nm = fb.newBlock();

    fb.atBlock(0)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(2), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, va_ok}}, err_align);
    fb.atBlock(va_ok)
        .callFn("walk_to_leaf", {v(1), v(2), c(0)}, p(r), have_r);
    fb.atBlock(have_r)
        .assign(p(d), mir::discriminantOf(p(r)))
        .switchInt(v(d), {{0, walk_ok}}, walk_err);
    fb.atBlock(walk_err)
        .assign(ret(), mir::use(vf(r, 0)))
        .ret();
    fb.atBlock(walk_ok)
        .assign(p(leaf), mir::use(vf(r, 0)))
        .callFn("va_index", {v(2), c(1)}, p(idx), have_idx);
    fb.atBlock(have_idx)
        .callFn("entry_read", {v(leaf), v(idx)}, p(e), have_e);
    fb.atBlock(have_e)
        .callFn("pte_present", {v(e)}, p(pres), have_pres);
    fb.atBlock(have_pres).switchInt(v(pres), {{0, err_nm}}, clear);
    fb.atBlock(clear)
        .callFn("entry_write", {v(leaf), v(idx), c(0)}, p(ignore),
                cleared);
    fb.atBlock(cleared).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(err_align)
        .assign(ret(), mir::use(c(ccal::errNotAligned)))
        .ret();
    fb.atBlock(err_nm)
        .assign(ret(), mir::use(c(ccal::errNotMapped)))
        .ret();
    return fb.build();
}

/**
 * fn pt_destroy(table, level) -> i64
 *
 * Recursive table teardown: descend into every present non-huge child
 * above level 1, then free this frame.  Recursion at MIR level is
 * plain self-call; the drop of the whole tree in the Rust code
 * compiles to the same shape.  Conforms to specPtDestroy.
 */
mir::Function
makePtDestroy()
{
    FunctionBuilder fb("pt_destroy", 2);
    const VarId idx = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId e = fb.newVar();
    const VarId pres = fb.newVar();
    const VarId hg = fb.newVar();
    const VarId a = fb.newVar();
    const VarId lv = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId have_e = fb.newBlock();
    const BlockId have_pres = fb.newBlock();
    const BlockId level_check = fb.newBlock();
    const BlockId huge_check = fb.newBlock();
    const BlockId have_hg = fb.newBlock();
    const BlockId recurse = fb.newBlock();
    const BlockId have_addr = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId after = fb.newBlock();
    const BlockId done = fb.newBlock();

    fb.atBlock(0)
        .assign(p(idx), mir::use(c(0)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond),
                mir::bin(BinOp::Lt, v(idx), c(i64(entriesPerTable))))
        .switchInt(v(cond), {{0, after}}, body);
    fb.atBlock(body)
        .callFn("entry_read", {v(1), v(idx)}, p(e), have_e);
    fb.atBlock(have_e)
        .callFn("pte_present", {v(e)}, p(pres), have_pres);
    fb.atBlock(have_pres).switchInt(v(pres), {{0, next}}, level_check);
    fb.atBlock(level_check)
        .assign(p(cond), mir::bin(BinOp::Gt, v(2), c(1)))
        .switchInt(v(cond), {{0, next}}, huge_check);
    fb.atBlock(huge_check)
        .callFn("pte_huge", {v(e)}, p(hg), have_hg);
    fb.atBlock(have_hg).switchInt(v(hg), {{0, recurse}}, next);
    fb.atBlock(recurse)
        .callFn("pte_addr", {v(e)}, p(a), have_addr);
    fb.atBlock(have_addr)
        .assign(p(lv), mir::bin(BinOp::Sub, v(2), c(1)))
        .callFn("pt_destroy", {v(a), v(lv)}, p(ignore), next);
    fb.atBlock(next)
        .assign(p(idx), mir::bin(BinOp::Add, v(idx), c(1)))
        .jump(head);
    fb.atBlock(after)
        .callFn("frame_free", {v(1)}, ret(), done);
    fb.atBlock(done).ret();
    return fb.build();
}

} // namespace

void
addLayer10(Program &prog, const Geometry &)
{
    prog.add(makePtUnmap());
    prog.add(makePtDestroy());
}

} // namespace hev::mirmodels
