/**
 * @file
 * Layer 12 — EPCM bookkeeping in MIR.
 *
 * EPCM entries are aggregates (state, owner, lin_addr) accessed through
 * trusted pointers; allocation is a first-fit scan.  Conforms to
 * specEpcmAlloc / specEpcmFree.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn epcm_alloc(owner, lin_addr, kind) -> Result<u64, i64> */
mir::Function
makeEpcmAlloc(const Geometry &geo)
{
    FunctionBuilder fb("epcm_alloc", 3);
    const VarId cond = fb.newVar();
    const VarId k1 = fb.newVar();
    const VarId k2 = fb.newVar();
    const VarId i = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId entry = fb.newVar();
    const VarId st = fb.newVar();
    const VarId page = fb.newVar();

    const BlockId owner_ok = fb.newBlock();
    const BlockId kind_ok = fb.newBlock();
    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId have_entry = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId take = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();
    const BlockId err_epc = fb.newBlock();

    // owner > 0
    fb.atBlock(0)
        .assign(p(cond), mir::bin(BinOp::Gt, v(1), c(0)))
        .switchInt(v(cond), {{0, err_invalid}}, owner_ok);
    // kind in {Reg, Tcs}
    fb.atBlock(owner_ok)
        .assign(p(k1), mir::bin(BinOp::Eq, v(3), c(ccal::epcStateReg)))
        .assign(p(k2), mir::bin(BinOp::Eq, v(3), c(ccal::epcStateTcs)))
        .assign(p(cond), mir::bin(BinOp::BitOr, v(k1), v(k2)))
        .switchInt(v(cond), {{0, err_invalid}}, kind_ok);
    fb.atBlock(kind_ok)
        .assign(p(i), mir::use(c(0)))
        .jump(head);
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Lt, v(i), cu(geo.epcCount)))
        .switchInt(v(cond), {{0, err_epc}}, body);
    fb.atBlock(body).callFn("epcm_ptr", {v(i)}, p(ptr), have_entry);
    fb.atBlock(have_entry)
        .assign(p(entry), mir::use(Operand::copy(p(ptr).deref())))
        .assign(p(st), mir::use(vf(entry, 0)))
        .switchInt(v(st), {{0, take}}, next);
    fb.atBlock(next)
        .assign(p(i), mir::bin(BinOp::Add, v(i), c(1)))
        .jump(head);
    fb.atBlock(take)
        .assign(p(ptr).deref(), mir::makeAggregate(0, {v(3), v(1), v(2)}))
        .assign(p(page), mir::bin(BinOp::Mul, v(i), c(i64(pageSize))))
        .assign(p(page), mir::bin(BinOp::Add, v(page), cu(geo.epcBase)))
        .assign(ret(), mir::makeAggregate(0, {v(page)}))
        .ret();
    fb.atBlock(err_invalid)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errInvalidParam)}))
        .ret();
    fb.atBlock(err_epc)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errOutOfEpc)}))
        .ret();
    return fb.build();
}

/** fn epcm_free(page) -> i64 */
mir::Function
makeEpcmFree(const Geometry &geo)
{
    FunctionBuilder fb("epcm_free", 1);
    const VarId cond = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId entry = fb.newVar();
    const VarId st = fb.newVar();

    const BlockId align_ok = fb.newBlock();
    const BlockId low_ok = fb.newBlock();
    const BlockId high_ok = fb.newBlock();
    const BlockId have_entry = fb.newBlock();
    const BlockId clear = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();

    fb.atBlock(0)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(1), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, align_ok}}, err_invalid);
    fb.atBlock(align_ok)
        .assign(p(cond), mir::bin(BinOp::Ge, v(1), cu(geo.epcBase)))
        .switchInt(v(cond), {{0, err_invalid}}, low_ok);
    fb.atBlock(low_ok)
        .assign(p(cond),
                mir::bin(BinOp::Lt, v(1),
                         cu(geo.epcBase + geo.epcCount * pageSize)))
        .switchInt(v(cond), {{0, err_invalid}}, high_ok);
    fb.atBlock(high_ok)
        .assign(p(idx), mir::bin(BinOp::Sub, v(1), cu(geo.epcBase)))
        .assign(p(idx), mir::bin(BinOp::Shr, v(idx), c(12)))
        .callFn("epcm_ptr", {v(idx)}, p(ptr), have_entry);
    fb.atBlock(have_entry)
        .assign(p(entry), mir::use(Operand::copy(p(ptr).deref())))
        .assign(p(st), mir::use(vf(entry, 0)))
        .switchInt(v(st), {{0, err_invalid}}, clear);
    fb.atBlock(clear)
        .assign(p(ptr).deref(),
                mir::makeAggregate(0, {c(0), c(0), c(0)}))
        .assign(ret(), mir::use(c(0)))
        .ret();
    fb.atBlock(err_invalid)
        .assign(ret(), mir::use(c(ccal::errInvalidParam)))
        .ret();
    return fb.build();
}

/**
 * Shared prologue of the read-only accessors: validate page alignment
 * and EPC bounds, then land in `have_entry` with `ptr` aimed at the
 * page's EPCM entry.  Returns the error block for reuse.
 */
BlockId
epcmAccessPrologue(FunctionBuilder &fb, const Geometry &geo, VarId cond,
                   VarId idx, VarId ptr, BlockId have_entry)
{
    const BlockId align_ok = fb.newBlock();
    const BlockId low_ok = fb.newBlock();
    const BlockId high_ok = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();

    fb.atBlock(0)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(1), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, align_ok}}, err_invalid);
    fb.atBlock(align_ok)
        .assign(p(cond), mir::bin(BinOp::Ge, v(1), cu(geo.epcBase)))
        .switchInt(v(cond), {{0, err_invalid}}, low_ok);
    fb.atBlock(low_ok)
        .assign(p(cond),
                mir::bin(BinOp::Lt, v(1),
                         cu(geo.epcBase + geo.epcCount * pageSize)))
        .switchInt(v(cond), {{0, err_invalid}}, high_ok);
    fb.atBlock(high_ok)
        .assign(p(idx), mir::bin(BinOp::Sub, v(1), cu(geo.epcBase)))
        .assign(p(idx), mir::bin(BinOp::Shr, v(idx), c(12)))
        .callFn("epcm_ptr", {v(idx)}, p(ptr), have_entry);
    fb.atBlock(err_invalid)
        .assign(ret(),
                mir::makeAggregate(1, {c(ccal::errInvalidParam)}))
        .ret();
    return err_invalid;
}

/** fn epcm_lookup(page) -> Result<u64, i64> */
mir::Function
makeEpcmLookup(const Geometry &geo)
{
    FunctionBuilder fb("epcm_lookup", 1);
    const VarId cond = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId entry = fb.newVar();
    const VarId st = fb.newVar();

    const BlockId have_entry = fb.newBlock();
    epcmAccessPrologue(fb, geo, cond, idx, ptr, have_entry);
    // The state code is reported for free pages too.
    fb.atBlock(have_entry)
        .assign(p(entry), mir::use(Operand::copy(p(ptr).deref())))
        .assign(p(st), mir::use(vf(entry, 0)))
        .assign(ret(), mir::makeAggregate(0, {v(st)}))
        .ret();
    return fb.build();
}

/** fn epcm_owner(page) -> Result<u64, i64> */
mir::Function
makeEpcmOwner(const Geometry &geo)
{
    FunctionBuilder fb("epcm_owner", 1);
    const VarId cond = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId entry = fb.newVar();
    const VarId st = fb.newVar();
    const VarId owner = fb.newVar();

    const BlockId have_entry = fb.newBlock();
    const BlockId used = fb.newBlock();
    const BlockId err_free = fb.newBlock();
    epcmAccessPrologue(fb, geo, cond, idx, ptr, have_entry);
    fb.atBlock(have_entry)
        .assign(p(entry), mir::use(Operand::copy(p(ptr).deref())))
        .assign(p(st), mir::use(vf(entry, 0)))
        .switchInt(v(st), {{0, err_free}}, used);
    fb.atBlock(used)
        .assign(p(owner), mir::use(vf(entry, 1)))
        .assign(ret(), mir::makeAggregate(0, {v(owner)}))
        .ret();
    fb.atBlock(err_free)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errNotMapped)}))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer12(Program &prog, const Geometry &geo)
{
    prog.add(makeEpcmAlloc(geo));
    prog.add(makeEpcmFree(geo));
    prog.add(makeEpcmLookup(geo));
    prog.add(makeEpcmOwner(geo));
}

} // namespace hev::mirmodels
