/**
 * @file
 * Layer 6 — resolve (or create) the child table behind an entry.
 *
 * The first fallible layer: results are Result-encoded aggregates,
 * discriminant 0 = Ok(value), 1 = Err(code).  Conforms to
 * specNextTable.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn next_table(table, index, alloc_missing) -> Result<u64, i64> */
mir::Function
makeNextTable()
{
    FunctionBuilder fb("next_table", 3);
    const VarId e = fb.newVar();
    const VarId pres = fb.newVar();
    const VarId hg = fb.newVar();
    const VarId a = fb.newVar();
    const VarId f = fb.newVar();
    const VarId ne = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId have_e = fb.newBlock();
    const BlockId have_pres = fb.newBlock();
    const BlockId hit = fb.newBlock();
    const BlockId have_hg = fb.newBlock();
    const BlockId ok_addr = fb.newBlock();
    const BlockId have_addr = fb.newBlock();
    const BlockId err_huge = fb.newBlock();
    const BlockId miss = fb.newBlock();
    const BlockId do_alloc = fb.newBlock();
    const BlockId have_frame = fb.newBlock();
    const BlockId install = fb.newBlock();
    const BlockId have_ne = fb.newBlock();
    const BlockId installed = fb.newBlock();
    const BlockId err_nm = fb.newBlock();
    const BlockId err_oom = fb.newBlock();

    fb.atBlock(0).callFn("entry_read", {v(1), v(2)}, p(e), have_e);
    fb.atBlock(have_e)
        .callFn("pte_present", {v(e)}, p(pres), have_pres);
    fb.atBlock(have_pres).switchInt(v(pres), {{0, miss}}, hit);

    fb.atBlock(hit).callFn("pte_huge", {v(e)}, p(hg), have_hg);
    fb.atBlock(have_hg).switchInt(v(hg), {{0, ok_addr}}, err_huge);
    fb.atBlock(ok_addr).callFn("pte_addr", {v(e)}, p(a), have_addr);
    fb.atBlock(have_addr)
        .assign(ret(), mir::makeAggregate(0, {v(a)}))
        .ret();
    fb.atBlock(err_huge)
        .assign(ret(),
                mir::makeAggregate(1, {c(ccal::errAlreadyMapped)}))
        .ret();

    fb.atBlock(miss).switchInt(v(3), {{0, err_nm}}, do_alloc);
    fb.atBlock(do_alloc).callFn("frame_alloc", {}, p(f), have_frame);
    fb.atBlock(have_frame).switchInt(v(f), {{0, err_oom}}, install);
    fb.atBlock(install)
        .callFn("pte_make", {v(f), c(i64(ccal::pteLinkFlags))}, p(ne),
                have_ne);
    fb.atBlock(have_ne)
        .callFn("entry_write", {v(1), v(2), v(ne)}, p(ignore), installed);
    fb.atBlock(installed)
        .assign(ret(), mir::makeAggregate(0, {v(f)}))
        .ret();
    fb.atBlock(err_nm)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errNotMapped)}))
        .ret();
    fb.atBlock(err_oom)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errOutOfMemory)}))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer06(Program &prog, const Geometry &)
{
    prog.add(makeNextTable());
}

} // namespace hev::mirmodels
