/**
 * @file
 * Layer 14 — the hypercalls the paper's security model transitions on
 * (Sec. 5.1): init (ECREATE) and add_page (EADD), plus init_finish
 * (EINIT).  These are where the page-table invariants are established:
 * ELRANGE/marshalling-buffer disjointness, normal-memory backing and
 * sources, EPCM recording of every added mapping.
 *
 * Conform to specHcInit / specHcAddPage / specHcInitFinish.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/**
 * fn hc_init(el_start, el_end, mbuf_gva, mbuf_pages, backing)
 *     -> Result<i64, i64>
 */
mir::Function
makeHcInit(const Geometry &geo)
{
    FunctionBuilder fb("hc_init", 5);
    const VarId cond = fb.newVar();
    const VarId c2 = fb.newVar();
    const VarId mbuf_end = fb.newVar();
    const VarId b_end = fb.newVar();
    const VarId g = fb.newVar();
    const VarId e = fb.newVar();
    const VarId d = fb.newVar();
    const VarId g0 = fb.newVar();
    const VarId e0 = fb.newVar();
    const VarId rc = fb.newVar();
    const VarId id = fb.newVar();

    const BlockId el_ordered = fb.newBlock();
    const BlockId el_start_ok = fb.newBlock();
    const BlockId el_end_ok = fb.newBlock();
    const BlockId pages_ok = fb.newBlock();
    const BlockId gva_ok = fb.newBlock();
    const BlockId backing_aligned = fb.newBlock();
    const BlockId disjoint_ok = fb.newBlock();
    const BlockId backing_ok = fb.newBlock();
    const BlockId have_g = fb.newBlock();
    const BlockId g_ok = fb.newBlock();
    const BlockId have_e = fb.newBlock();
    const BlockId e_ok = fb.newBlock();
    const BlockId have_rc = fb.newBlock();
    const BlockId reg = fb.newBlock();
    const BlockId have_id = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();
    const BlockId err_align = fb.newBlock();
    const BlockId err_iso = fb.newBlock();
    const BlockId err_g = fb.newBlock();
    const BlockId err_e = fb.newBlock();
    const BlockId err_rc = fb.newBlock();

    // el_start < el_end
    fb.atBlock(0)
        .assign(p(cond), mir::bin(BinOp::Lt, v(1), v(2)))
        .switchInt(v(cond), {{0, err_invalid}}, el_ordered);
    // el_start page aligned
    fb.atBlock(el_ordered)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(1), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, el_start_ok}}, err_invalid);
    // el_end page aligned
    fb.atBlock(el_start_ok)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(2), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, el_end_ok}}, err_invalid);
    // mbuf_pages != 0
    fb.atBlock(el_end_ok).switchInt(v(4), {{0, err_invalid}}, pages_ok);
    // mbuf_gva page aligned
    fb.atBlock(pages_ok)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(3), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, gva_ok}}, err_invalid);
    // backing page aligned
    fb.atBlock(gva_ok)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(5), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, backing_aligned}}, err_align);
    // mbuf range disjoint from ELRANGE:
    // mbuf_end <= el_start || mbuf_gva >= el_end
    fb.atBlock(backing_aligned)
        .assign(p(mbuf_end),
                mir::bin(BinOp::Mul, v(4), c(i64(pageSize))))
        .assign(p(mbuf_end), mir::bin(BinOp::Add, v(3), v(mbuf_end)))
        .assign(p(cond), mir::bin(BinOp::Le, v(mbuf_end), v(1)))
        .assign(p(c2), mir::bin(BinOp::Ge, v(3), v(2)))
        .assign(p(cond), mir::bin(BinOp::BitOr, v(cond), v(c2)))
        .switchInt(v(cond), {{0, err_iso}}, disjoint_ok);
    // backing entirely inside normal memory:
    // b_end <= normalLimit && b_end >= backing
    fb.atBlock(disjoint_ok)
        .assign(p(b_end), mir::bin(BinOp::Mul, v(4), c(i64(pageSize))))
        .assign(p(b_end), mir::bin(BinOp::Add, v(5), v(b_end)))
        .assign(p(cond),
                mir::bin(BinOp::Le, v(b_end), cu(geo.normalLimit)))
        .assign(p(c2), mir::bin(BinOp::Ge, v(b_end), v(5)))
        .assign(p(cond), mir::bin(BinOp::BitAnd, v(cond), v(c2)))
        .switchInt(v(cond), {{0, err_iso}}, backing_ok);

    fb.atBlock(backing_ok).callFn("as_create", {}, p(g), have_g);
    fb.atBlock(have_g)
        .assign(p(d), mir::discriminantOf(p(g)))
        .switchInt(v(d), {{0, g_ok}}, err_g);
    fb.atBlock(g_ok)
        .assign(p(g0), mir::use(vf(g, 0)))
        .callFn("as_create", {}, p(e), have_e);
    fb.atBlock(have_e)
        .assign(p(d), mir::discriminantOf(p(e)))
        .switchInt(v(d), {{0, e_ok}}, err_e);
    fb.atBlock(e_ok)
        .assign(p(e0), mir::use(vf(e, 0)))
        .callFn("mbuf_map",
                {v(g0), v(e0), v(3), cu(geo.mbufGpaBase), v(5), v(4)},
                p(rc), have_rc);
    fb.atBlock(have_rc).switchInt(v(rc), {{0, reg}}, err_rc);
    fb.atBlock(reg)
        .callFn("encl_register",
                {v(1), v(2), v(3), v(4), v(5), v(g0), v(e0)}, p(id),
                have_id);
    fb.atBlock(have_id)
        .assign(ret(), mir::makeAggregate(0, {v(id)}))
        .ret();

    fb.atBlock(err_invalid)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errInvalidParam)}))
        .ret();
    fb.atBlock(err_align)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errNotAligned)}))
        .ret();
    fb.atBlock(err_iso)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errIsolation)}))
        .ret();
    fb.atBlock(err_g)
        .assign(ret(), mir::use(v(g))) // propagate the Err verbatim
        .ret();
    fb.atBlock(err_e)
        .assign(ret(), mir::use(v(e)))
        .ret();
    fb.atBlock(err_rc)
        .assign(ret(), mir::makeAggregate(1, {v(rc)}))
        .ret();
    return fb.build();
}

/** fn hc_add_page(id, gva, src, kind) -> i64 */
mir::Function
makeHcAddPage(const Geometry &geo)
{
    FunctionBuilder fb("hc_add_page", 4);
    const VarId m = fb.newVar();
    const VarId d = fb.newVar();
    const VarId meta = fb.newVar();
    const VarId st = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId c2 = fb.newVar();
    const VarId el_s = fb.newVar();
    const VarId el_e = fb.newVar();
    const VarId gva_end = fb.newVar();
    const VarId src_end = fb.newVar();
    const VarId added = fb.newVar();
    const VarId gpa = fb.newVar();
    const VarId gpt_h = fb.newVar();
    const VarId ept_h = fb.newVar();
    const VarId rc = fb.newVar();
    const VarId pr = fb.newVar();
    const VarId page = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId have_m = fb.newBlock();
    const BlockId found = fb.newBlock();
    const BlockId state_ok = fb.newBlock();
    const BlockId gva_aligned = fb.newBlock();
    const BlockId src_aligned = fb.newBlock();
    const BlockId in_elrange = fb.newBlock();
    const BlockId src_ok = fb.newBlock();
    const BlockId gpt_done = fb.newBlock();
    const BlockId gpt_ok = fb.newBlock();
    const BlockId have_pr = fb.newBlock();
    const BlockId pr_ok = fb.newBlock();
    const BlockId ept_done = fb.newBlock();
    const BlockId copied = fb.newBlock();
    const BlockId bumped = fb.newBlock();
    const BlockId finished = fb.newBlock();
    const BlockId err_nosuch = fb.newBlock();
    const BlockId err_state = fb.newBlock();
    const BlockId err_align = fb.newBlock();
    const BlockId err_iso = fb.newBlock();
    const BlockId epcm_fail_unmap = fb.newBlock();
    const BlockId epcm_fail_done = fb.newBlock();
    const BlockId ept_fail_unmap = fb.newBlock();
    const BlockId ept_fail_free = fb.newBlock();
    const BlockId ept_fail_done = fb.newBlock();

    fb.atBlock(0).callFn("encl_get", {v(1)}, p(m), have_m);
    fb.atBlock(have_m)
        .assign(p(d), mir::discriminantOf(p(m)))
        .switchInt(v(d), {{0, err_nosuch}}, found);
    // meta = (state, el_start, el_end, gpt_h, ept_h, added, tcs)
    fb.atBlock(found)
        .assign(p(meta), mir::use(vf(m, 0)))
        .assign(p(st), mir::use(Operand::copy(p(meta).field(0))))
        .switchInt(v(st), {{ccal::enclStateAdding, state_ok}},
                   err_state);
    fb.atBlock(state_ok)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(2), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, gva_aligned}}, err_align);
    fb.atBlock(gva_aligned)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(3), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, src_aligned}}, err_align);
    // el_start <= gva && gva + pageSize <= el_end
    fb.atBlock(src_aligned)
        .assign(p(el_s), mir::use(Operand::copy(p(meta).field(1))))
        .assign(p(el_e), mir::use(Operand::copy(p(meta).field(2))))
        .assign(p(cond), mir::bin(BinOp::Le, v(el_s), v(2)))
        .assign(p(gva_end), mir::bin(BinOp::Add, v(2), c(i64(pageSize))))
        .assign(p(c2), mir::bin(BinOp::Le, v(gva_end), v(el_e)))
        .assign(p(cond), mir::bin(BinOp::BitAnd, v(cond), v(c2)))
        .switchInt(v(cond), {{0, err_iso}}, in_elrange);
    // src + pageSize <= normalLimit && src + pageSize >= src
    fb.atBlock(in_elrange)
        .assign(p(src_end), mir::bin(BinOp::Add, v(3), c(i64(pageSize))))
        .assign(p(cond),
                mir::bin(BinOp::Le, v(src_end), cu(geo.normalLimit)))
        .assign(p(c2), mir::bin(BinOp::Ge, v(src_end), v(3)))
        .assign(p(cond), mir::bin(BinOp::BitAnd, v(cond), v(c2)))
        .switchInt(v(cond), {{0, err_iso}}, src_ok);
    // gpa = epcGpaBase + added * pageSize; map into the GPT first.
    fb.atBlock(src_ok)
        .assign(p(added), mir::use(Operand::copy(p(meta).field(5))))
        .assign(p(gpa), mir::bin(BinOp::Mul, v(added), c(i64(pageSize))))
        .assign(p(gpa), mir::bin(BinOp::Add, v(gpa), cu(geo.epcGpaBase)))
        .assign(p(gpt_h), mir::use(Operand::copy(p(meta).field(3))))
        .assign(p(ept_h), mir::use(Operand::copy(p(meta).field(4))))
        .callFn("as_map",
                {v(gpt_h), v(2), v(gpa), c(i64(ccal::pteRwFlags))},
                p(rc), gpt_done);
    fb.atBlock(gpt_done).switchInt(v(rc), {{0, gpt_ok}}, ept_fail_done);
    // (gpt map errors propagate as-is, nothing to roll back yet)
    fb.atBlock(gpt_ok)
        .callFn("epcm_alloc", {v(1), v(2), v(4)}, p(pr), have_pr);
    fb.atBlock(have_pr)
        .assign(p(d), mir::discriminantOf(p(pr)))
        .switchInt(v(d), {{0, pr_ok}}, epcm_fail_unmap);
    fb.atBlock(epcm_fail_unmap)
        .callFn("as_unmap", {v(gpt_h), v(2)}, p(ignore), epcm_fail_done);
    fb.atBlock(epcm_fail_done)
        .assign(ret(), mir::use(vf(pr, 0)))
        .ret();
    fb.atBlock(pr_ok)
        .assign(p(page), mir::use(vf(pr, 0)))
        .callFn("as_map",
                {v(ept_h), v(gpa), v(page), c(i64(ccal::pteRwFlags))},
                p(rc), ept_done);
    fb.atBlock(ept_done).switchInt(v(rc), {{0, copied}}, ept_fail_unmap);
    fb.atBlock(ept_fail_unmap)
        .callFn("as_unmap", {v(gpt_h), v(2)}, p(ignore), ept_fail_free);
    fb.atBlock(ept_fail_free)
        .callFn("epcm_free", {v(page)}, p(ignore), ept_fail_done);
    fb.atBlock(ept_fail_done)
        .assign(ret(), mir::use(v(rc)))
        .ret();
    fb.atBlock(copied)
        .callFn("copy_page", {v(page), v(3)}, p(ignore), bumped);
    fb.atBlock(bumped)
        .callFn("encl_bump", {v(1), v(4)}, p(ignore), finished);
    fb.atBlock(finished).assign(ret(), mir::use(c(0))).ret();

    fb.atBlock(err_nosuch)
        .assign(ret(), mir::use(c(ccal::errNoSuchEnclave)))
        .ret();
    fb.atBlock(err_state)
        .assign(ret(), mir::use(c(ccal::errBadState)))
        .ret();
    fb.atBlock(err_align)
        .assign(ret(), mir::use(c(ccal::errNotAligned)))
        .ret();
    fb.atBlock(err_iso)
        .assign(ret(), mir::use(c(ccal::errIsolation)))
        .ret();
    return fb.build();
}

/** fn hc_init_finish(id) -> i64 */
mir::Function
makeHcInitFinish(const Geometry &)
{
    FunctionBuilder fb("hc_init_finish", 1);
    const VarId m = fb.newVar();
    const VarId d = fb.newVar();
    const VarId meta = fb.newVar();
    const VarId st = fb.newVar();
    const VarId tcs = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId have_m = fb.newBlock();
    const BlockId found = fb.newBlock();
    const BlockId state_ok = fb.newBlock();
    const BlockId finish = fb.newBlock();
    const BlockId done = fb.newBlock();
    const BlockId err_nosuch = fb.newBlock();
    const BlockId err_state = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();

    fb.atBlock(0).callFn("encl_get", {v(1)}, p(m), have_m);
    fb.atBlock(have_m)
        .assign(p(d), mir::discriminantOf(p(m)))
        .switchInt(v(d), {{0, err_nosuch}}, found);
    fb.atBlock(found)
        .assign(p(meta), mir::use(vf(m, 0)))
        .assign(p(st), mir::use(Operand::copy(p(meta).field(0))))
        .switchInt(v(st), {{ccal::enclStateAdding, state_ok}},
                   err_state);
    fb.atBlock(state_ok)
        .assign(p(tcs), mir::use(Operand::copy(p(meta).field(6))))
        .switchInt(v(tcs), {{0, err_invalid}}, finish);
    fb.atBlock(finish)
        .callFn("encl_finish", {v(1)}, p(ignore), done);
    fb.atBlock(done).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(err_nosuch)
        .assign(ret(), mir::use(c(ccal::errNoSuchEnclave)))
        .ret();
    fb.atBlock(err_state)
        .assign(ret(), mir::use(c(ccal::errBadState)))
        .ret();
    fb.atBlock(err_invalid)
        .assign(ret(), mir::use(c(ccal::errInvalidParam)))
        .ret();
    return fb.build();
}

/** fn hc_remove(id) -> i64 */
mir::Function
makeHcRemove(const Geometry &geo)
{
    FunctionBuilder fb("hc_remove", 1);
    const VarId m = fb.newVar();
    const VarId d = fb.newVar();
    const VarId meta = fb.newVar();
    const VarId i = fb.newVar();
    const VarId cond = fb.newVar();
    const VarId ptr = fb.newVar();
    const VarId entry = fb.newVar();
    const VarId st = fb.newVar();
    const VarId owner = fb.newVar();
    const VarId page = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId have_m = fb.newBlock();
    const BlockId found = fb.newBlock();
    const BlockId head = fb.newBlock();
    const BlockId body = fb.newBlock();
    const BlockId have_entry = fb.newBlock();
    const BlockId check_owner = fb.newBlock();
    const BlockId free_page = fb.newBlock();
    const BlockId scrubbed = fb.newBlock();
    const BlockId next = fb.newBlock();
    const BlockId teardown = fb.newBlock();
    const BlockId gpt_done = fb.newBlock();
    const BlockId ept_done = fb.newBlock();
    const BlockId killed = fb.newBlock();
    const BlockId err_nosuch = fb.newBlock();

    fb.atBlock(0).callFn("encl_get", {v(1)}, p(m), have_m);
    fb.atBlock(have_m)
        .assign(p(d), mir::discriminantOf(p(m)))
        .switchInt(v(d), {{0, err_nosuch}}, found);
    fb.atBlock(found)
        .assign(p(meta), mir::use(vf(m, 0)))
        .assign(p(i), mir::use(c(0)))
        .jump(head);
    // Scrub-and-free sweep over the EPCM.
    fb.atBlock(head)
        .assign(p(cond), mir::bin(BinOp::Lt, v(i), cu(geo.epcCount)))
        .switchInt(v(cond), {{0, teardown}}, body);
    fb.atBlock(body).callFn("epcm_ptr", {v(i)}, p(ptr), have_entry);
    fb.atBlock(have_entry)
        .assign(p(entry), mir::use(Operand::copy(p(ptr).deref())))
        .assign(p(st), mir::use(vf(entry, 0)))
        .switchInt(v(st), {{0, next}}, check_owner);
    fb.atBlock(check_owner)
        .assign(p(owner), mir::use(vf(entry, 1)))
        .assign(p(cond), mir::bin(BinOp::Eq, v(owner), v(1)))
        .switchInt(v(cond), {{0, next}}, free_page);
    fb.atBlock(free_page)
        .assign(p(page), mir::bin(BinOp::Mul, v(i), c(i64(pageSize))))
        .assign(p(page), mir::bin(BinOp::Add, v(page), cu(geo.epcBase)))
        .callFn("scrub_page", {v(page)}, p(ignore), scrubbed);
    fb.atBlock(scrubbed)
        .assign(p(ptr).deref(), mir::makeAggregate(0, {c(0), c(0), c(0)}))
        .jump(next);
    fb.atBlock(next)
        .assign(p(i), mir::bin(BinOp::Add, v(i), c(1)))
        .jump(head);
    // Tear down both address spaces and retire the id.
    fb.atBlock(teardown)
        .callFn("as_destroy", {Operand::copy(p(meta).field(3))},
                p(ignore), gpt_done);
    fb.atBlock(gpt_done)
        .callFn("as_destroy", {Operand::copy(p(meta).field(4))},
                p(ignore), ept_done);
    fb.atBlock(ept_done)
        .callFn("encl_kill", {v(1)}, p(ignore), killed);
    fb.atBlock(killed).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(err_nosuch)
        .assign(ret(), mir::use(c(ccal::errNoSuchEnclave)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer14(Program &prog, const Geometry &geo)
{
    prog.add(makeHcInit(geo));
    prog.add(makeHcAddPage(geo));
    prog.add(makeHcInitFinish(geo));
    prog.add(makeHcRemove(geo));
}

} // namespace hev::mirmodels
