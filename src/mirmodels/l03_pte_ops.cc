/**
 * @file
 * Layer 3 — page-table entry packing, in MIR.
 *
 * Entries are "plain 64-bit integers ... a physical address and its
 * associated flags" (paper Sec. 4.1).  All functions here are pure:
 * they use only temporaries, so under the lifted-temporaries semantics
 * they never touch memory — part of the 65/77 functions the paper
 * could treat "functionally".
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn pte_make(addr, flags) -> u64 */
mir::Function
makePteMake()
{
    FunctionBuilder fb("pte_make", 2);
    const VarId a = fb.newVar();
    const VarId f = fb.newVar();
    fb.atBlock(0)
        .assign(p(a), mir::bin(BinOp::BitAnd, v(1), cu(ccal::pteAddrMask)))
        .assign(p(f),
                mir::bin(BinOp::BitAnd, v(2), cu(~ccal::pteAddrMask)))
        .assign(ret(), mir::bin(BinOp::BitOr, v(a), v(f)))
        .ret();
    return fb.build();
}

/** fn pte_addr(entry) -> u64 */
mir::Function
makePteAddr()
{
    FunctionBuilder fb("pte_addr", 1);
    fb.atBlock(0)
        .assign(ret(),
                mir::bin(BinOp::BitAnd, v(1), cu(ccal::pteAddrMask)))
        .ret();
    return fb.build();
}

/** fn pte_flags(entry) -> u64 */
mir::Function
makePteFlags()
{
    FunctionBuilder fb("pte_flags", 1);
    fb.atBlock(0)
        .assign(ret(),
                mir::bin(BinOp::BitAnd, v(1), cu(~ccal::pteAddrMask)))
        .ret();
    return fb.build();
}

/** One-bit flag extractor: (entry >> shift) & 1. */
mir::Function
makeBitTest(const char *name, int shift)
{
    FunctionBuilder fb(name, 1);
    const VarId t = fb.newVar();
    fb.atBlock(0)
        .assign(p(t), mir::bin(BinOp::Shr, v(1), c(shift)))
        .assign(ret(), mir::bin(BinOp::BitAnd, v(t), c(1)))
        .ret();
    return fb.build();
}

/** fn pte_set_dirty(entry) -> u64: entry | (1 << 6). */
mir::Function
makePteSetDirty()
{
    FunctionBuilder fb("pte_set_dirty", 1);
    fb.atBlock(0)
        .assign(ret(),
                mir::bin(BinOp::BitOr, v(1), cu(ccal::pteFlagDirty)))
        .ret();
    return fb.build();
}

/** fn pte_clear_dirty(entry) -> u64: entry & ~(1 << 6). */
mir::Function
makePteClearDirty()
{
    FunctionBuilder fb("pte_clear_dirty", 1);
    fb.atBlock(0)
        .assign(ret(),
                mir::bin(BinOp::BitAnd, v(1), cu(~ccal::pteFlagDirty)))
        .ret();
    return fb.build();
}

/**
 * fn pte_builder_seal(builder: &mut (u64, u64)) -> ()
 *
 * The `&mut self`-style helper of the builder idiom: normalizes the
 * staged flags field in place through the argument pointer (Fig. 4
 * case 1 — a pointer passed down from the caller that owns the
 * object).
 */
mir::Function
makePteBuilderSeal()
{
    FunctionBuilder fb("pte_builder_seal", 1);
    const VarId fl = fb.newVar();
    fb.atBlock(0)
        .assign(p(fl),
                mir::use(Operand::copy(p(1).deref().field(1))))
        .assign(p(fl),
                mir::bin(BinOp::BitAnd, v(fl), cu(~ccal::pteAddrMask)))
        .assign(p(1).deref().field(1), mir::use(v(fl)))
        .assign(ret(), mir::use(Operand::constOp(Value::unit())))
        .ret();
    return fb.build();
}

/**
 * fn pte_build(addr, flags) -> u64
 *
 * The idiomatic-Rust shape the paper keeps (Sec. 3.4): stage a builder
 * struct in a memory-allocated LOCAL, hand `&builder` to a helper that
 * mutates it in place, then pack the result.  Equivalent to pte_make;
 * exists to keep the locals-and-self-pointers idiom inside the
 * verified stack.
 */
mir::Function
makePteBuild()
{
    FunctionBuilder fb("pte_build", 2);
    const VarId builder = fb.newVar(true); // address-taken: a local
    const VarId ptr = fb.newVar();
    const VarId a = fb.newVar();
    const VarId f = fb.newVar();
    const VarId ignore = fb.newVar();
    const BlockId sealed = fb.newBlock();
    const BlockId packed = fb.newBlock();
    fb.atBlock(0)
        .assign(p(builder), mir::makeAggregate(0, {v(1), v(2)}))
        .assign(p(ptr), mir::refOf(p(builder)))
        .callFn("pte_builder_seal", {v(ptr)}, p(ignore), sealed);
    fb.atBlock(sealed)
        .assign(p(a), mir::use(Operand::copy(p(builder).field(0))))
        .assign(p(f), mir::use(Operand::copy(p(builder).field(1))))
        .callFn("pte_make", {v(a), v(f)}, ret(), packed);
    fb.atBlock(packed).ret();
    return fb.build();
}

} // namespace

void
addLayer03(Program &prog, const Geometry &)
{
    prog.add(makePteMake());
    prog.add(makePteAddr());
    prog.add(makePteFlags());
    prog.add(makeBitTest("pte_present", 0));
    prog.add(makeBitTest("pte_writable", 1));
    prog.add(makeBitTest("pte_huge", 7));
    prog.add(makePteSetDirty());
    prog.add(makePteClearDirty());
    prog.add(makePteBuilderSeal());
    prog.add(makePteBuild());
}

} // namespace hev::mirmodels
