/**
 * @file
 * Layer 9 — install a terminal mapping.  Conforms to specPtMap.
 *
 * Returns a plain i64 error code (0 = success), matching the spec's
 * calling convention for effect-only operations.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn pt_map(root, va, pa, flags) -> i64 */
mir::Function
makePtMap()
{
    FunctionBuilder fb("pt_map", 4);
    const VarId cond = fb.newVar();
    const VarId r = fb.newVar();
    const VarId d = fb.newVar();
    const VarId leaf = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId e = fb.newVar();
    const VarId pres = fb.newVar();
    const VarId fl = fb.newVar();
    const VarId ne = fb.newVar();
    const VarId ignore = fb.newVar();

    const BlockId va_ok = fb.newBlock();
    const BlockId pa_ok = fb.newBlock();
    const BlockId flags_ok = fb.newBlock();
    const BlockId have_r = fb.newBlock();
    const BlockId walk_ok = fb.newBlock();
    const BlockId walk_err = fb.newBlock();
    const BlockId have_idx = fb.newBlock();
    const BlockId have_e = fb.newBlock();
    const BlockId have_pres = fb.newBlock();
    const BlockId fresh = fb.newBlock();
    const BlockId have_ne = fb.newBlock();
    const BlockId written = fb.newBlock();
    const BlockId err_align = fb.newBlock();
    const BlockId err_invalid = fb.newBlock();
    const BlockId err_already = fb.newBlock();

    fb.atBlock(0)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(2), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, va_ok}}, err_align);
    fb.atBlock(va_ok)
        .assign(p(cond),
                mir::bin(BinOp::BitAnd, v(3), c(i64(pageSize - 1))))
        .switchInt(v(cond), {{0, pa_ok}}, err_align);
    fb.atBlock(pa_ok)
        .assign(p(cond), mir::bin(BinOp::BitAnd, v(4), c(1)))
        .switchInt(v(cond), {{0, err_invalid}}, flags_ok);
    fb.atBlock(flags_ok)
        .callFn("walk_to_leaf", {v(1), v(2), c(1)}, p(r), have_r);
    fb.atBlock(have_r)
        .assign(p(d), mir::discriminantOf(p(r)))
        .switchInt(v(d), {{0, walk_ok}}, walk_err);
    fb.atBlock(walk_err)
        .assign(ret(), mir::use(vf(r, 0))) // the Err's code
        .ret();
    fb.atBlock(walk_ok)
        .assign(p(leaf), mir::use(vf(r, 0)))
        .callFn("va_index", {v(2), c(1)}, p(idx), have_idx);
    fb.atBlock(have_idx)
        .callFn("entry_read", {v(leaf), v(idx)}, p(e), have_e);
    fb.atBlock(have_e)
        .callFn("pte_present", {v(e)}, p(pres), have_pres);
    fb.atBlock(have_pres).switchInt(v(pres), {{0, fresh}}, err_already);
    fb.atBlock(fresh)
        .assign(p(fl),
                mir::bin(BinOp::BitAnd, v(4),
                         cu(~u64(ccal::pteFlagHuge))))
        .callFn("pte_make", {v(3), v(fl)}, p(ne), have_ne);
    fb.atBlock(have_ne)
        .callFn("entry_write", {v(leaf), v(idx), v(ne)}, p(ignore),
                written);
    fb.atBlock(written).assign(ret(), mir::use(c(0))).ret();
    fb.atBlock(err_align)
        .assign(ret(), mir::use(c(ccal::errNotAligned)))
        .ret();
    fb.atBlock(err_invalid)
        .assign(ret(), mir::use(c(ccal::errInvalidParam)))
        .ret();
    fb.atBlock(err_already)
        .assign(ret(), mir::use(c(ccal::errAlreadyMapped)))
        .ret();
    return fb.build();
}

/**
 * fn map_req_huge(req: &(u64, u64, u64)) -> bool
 *
 * Reads the flags field of a caller-owned map request through the
 * argument pointer and reports whether the huge bit is set.
 */
mir::Function
makeMapReqHuge()
{
    FunctionBuilder fb("map_req_huge", 1);
    const VarId fl = fb.newVar();
    fb.atBlock(0)
        .assign(p(fl),
                mir::use(Operand::copy(p(1).deref().field(2))))
        .assign(p(fl), mir::bin(BinOp::Shr, v(fl), c(7)))
        .assign(ret(), mir::bin(BinOp::BitAnd, v(fl), c(1)))
        .ret();
    return fb.build();
}

/**
 * fn pt_map_checked(root, va, pa, flags) -> i64
 *
 * A stricter map used by callers that must never create huge
 * mappings: stages the request in a LOCAL struct, validates it through
 * a helper taking `&request`, then delegates to pt_map.  Rejects the
 * huge bit with errInvalidParam instead of silently stripping it.
 */
mir::Function
makePtMapChecked()
{
    FunctionBuilder fb("pt_map_checked", 4);
    const VarId req = fb.newVar(true); // address-taken local
    const VarId ptr = fb.newVar();
    const VarId hg = fb.newVar();
    const VarId a = fb.newVar();
    const VarId b = fb.newVar();
    const VarId f = fb.newVar();
    const BlockId checked = fb.newBlock();
    const BlockId do_map = fb.newBlock();
    const BlockId done = fb.newBlock();
    const BlockId err_huge = fb.newBlock();
    fb.atBlock(0)
        .assign(p(req), mir::makeAggregate(0, {v(2), v(3), v(4)}))
        .assign(p(ptr), mir::refOf(p(req)))
        .callFn("map_req_huge", {v(ptr)}, p(hg), checked);
    fb.atBlock(checked).switchInt(v(hg), {{0, do_map}}, err_huge);
    fb.atBlock(do_map)
        .assign(p(a), mir::use(Operand::copy(p(req).field(0))))
        .assign(p(b), mir::use(Operand::copy(p(req).field(1))))
        .assign(p(f), mir::use(Operand::copy(p(req).field(2))))
        .callFn("pt_map", {v(1), v(a), v(b), v(f)}, ret(), done);
    fb.atBlock(done).ret();
    fb.atBlock(err_huge)
        .assign(ret(), mir::use(c(ccal::errInvalidParam)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer09(Program &prog, const Geometry &)
{
    prog.add(makePtMap());
    prog.add(makeMapReqHuge());
    prog.add(makePtMapChecked());
}

} // namespace hev::mirmodels
