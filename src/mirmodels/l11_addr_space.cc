/**
 * @file
 * Layer 11 — address spaces, the RData layer (paper Sec. 3.4, case 3).
 *
 * `as_create` forges an opaque handle for a freshly allocated root;
 * clients can only pass the handle back into this layer, which resolves
 * it via the trusted internal `as_root`.  Dereferencing the handle from
 * any other code traps, which is how the layered proofs keep the root's
 * concrete representation encapsulated.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn as_create() -> Result<Handle, i64> */
mir::Function
makeAsCreate()
{
    FunctionBuilder fb("as_create", 0);
    const VarId f = fb.newVar();
    const VarId h = fb.newVar();
    const BlockId have_f = fb.newBlock();
    const BlockId reg = fb.newBlock();
    const BlockId have_h = fb.newBlock();
    const BlockId err_oom = fb.newBlock();

    fb.atBlock(0).callFn("frame_alloc", {}, p(f), have_f);
    fb.atBlock(have_f).switchInt(v(f), {{0, err_oom}}, reg);
    fb.atBlock(reg).callFn("as_register", {v(f)}, p(h), have_h);
    fb.atBlock(have_h)
        .assign(ret(), mir::makeAggregate(0, {v(h)}))
        .ret();
    fb.atBlock(err_oom)
        .assign(ret(), mir::makeAggregate(1, {c(ccal::errOutOfMemory)}))
        .ret();
    return fb.build();
}

/**
 * Shared prologue: resolve the handle (arg 1) to a root, branching to
 * `foreign` on failure; the root lands in `root`.
 */
struct HandleProlog
{
    VarId r;
    VarId d;
    VarId root;
    BlockId resolved;
    BlockId ok_bb;
    BlockId foreign;
};

HandleProlog
emitHandleProlog(FunctionBuilder &fb)
{
    HandleProlog pro;
    pro.r = fb.newVar();
    pro.d = fb.newVar();
    pro.root = fb.newVar();
    pro.resolved = fb.newBlock();
    pro.ok_bb = fb.newBlock();
    pro.foreign = fb.newBlock();
    fb.atBlock(0).callFn("as_root", {v(1)}, p(pro.r), pro.resolved);
    fb.atBlock(pro.resolved)
        .assign(p(pro.d), mir::discriminantOf(p(pro.r)))
        .switchInt(v(pro.d), {{0, pro.ok_bb}}, pro.foreign);
    fb.atBlock(pro.ok_bb)
        .assign(p(pro.root), mir::use(vf(pro.r, 0)));
    return pro;
}

/** fn as_map(handle, va, pa, flags) -> i64 */
mir::Function
makeAsMap()
{
    FunctionBuilder fb("as_map", 4);
    HandleProlog pro = emitHandleProlog(fb);
    const BlockId done = fb.newBlock();
    fb.atBlock(pro.ok_bb)
        .callFn("pt_map", {v(pro.root), v(2), v(3), v(4)}, ret(), done);
    fb.atBlock(done).ret();
    fb.atBlock(pro.foreign)
        .assign(ret(), mir::use(c(ccal::errForeignHandle)))
        .ret();
    return fb.build();
}

/** fn as_query(handle, va) -> Option<(u64, u64)> */
mir::Function
makeAsQuery()
{
    FunctionBuilder fb("as_query", 2);
    HandleProlog pro = emitHandleProlog(fb);
    const BlockId done = fb.newBlock();
    fb.atBlock(pro.ok_bb)
        .callFn("pt_query", {v(pro.root), v(2)}, ret(), done);
    fb.atBlock(done).ret();
    fb.atBlock(pro.foreign)
        .assign(ret(), mir::makeAggregate(0, {}))
        .ret();
    return fb.build();
}

/** fn as_unmap(handle, va) -> i64 */
mir::Function
makeAsUnmap()
{
    FunctionBuilder fb("as_unmap", 2);
    HandleProlog pro = emitHandleProlog(fb);
    const BlockId done = fb.newBlock();
    fb.atBlock(pro.ok_bb)
        .callFn("pt_unmap", {v(pro.root), v(2)}, ret(), done);
    fb.atBlock(done).ret();
    fb.atBlock(pro.foreign)
        .assign(ret(), mir::use(c(ccal::errForeignHandle)))
        .ret();
    return fb.build();
}

/** fn as_destroy(handle) -> i64 */
mir::Function
makeAsDestroy()
{
    FunctionBuilder fb("as_destroy", 1);
    HandleProlog pro = emitHandleProlog(fb);
    const VarId ignore = fb.newVar();
    const BlockId destroyed = fb.newBlock();
    const BlockId done = fb.newBlock();
    fb.atBlock(pro.ok_bb)
        .callFn("pt_destroy", {v(pro.root), c(pagingLevels)}, ret(),
                destroyed);
    fb.atBlock(destroyed)
        .callFn("as_unregister", {v(1)}, p(ignore), done);
    fb.atBlock(done).ret();
    fb.atBlock(pro.foreign)
        .assign(ret(), mir::use(c(ccal::errForeignHandle)))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer11(Program &prog, const Geometry &)
{
    prog.add(makeAsCreate());
    prog.add(makeAsMap());
    prog.add(makeAsQuery());
    prog.add(makeAsUnmap());
    prog.add(makeAsDestroy());
}

} // namespace hev::mirmodels
