/**
 * @file
 * Shared shorthands for writing the MIR models of the memory module.
 *
 * The models under this directory are the MIRlight renditions of the
 * Rust memory-module functions the paper verifies — what mirlightgen
 * would print.  They are deliberately written at MIR's level: explicit
 * basic blocks, one operation per statement, calls for every cross-
 * layer access, pointer use via the trusted-cast primitives.
 */

#ifndef HEV_MIRMODELS_COMMON_HH
#define HEV_MIRMODELS_COMMON_HH

#include "ccal/geometry.hh"
#include "mirlight/builder.hh"

namespace hev::mirmodels
{

using ccal::Geometry;
using mir::BinOp;
using mir::BlockId;
using mir::FunctionBuilder;
using mir::MirPlace;
using mir::Operand;
using mir::Program;
using mir::UnOp;
using mir::Value;
using mir::VarId;

/** Integer constant operand. */
inline Operand
c(i64 value)
{
    return Operand::constInt(value);
}

/** Unsigned constant operand (bit pattern preserved). */
inline Operand
cu(u64 value)
{
    return Operand::constInt(i64(value));
}

/** Copy-of-variable operand. */
inline Operand
v(VarId var)
{
    return Operand::copy(MirPlace::of(var));
}

/** Copy of a projected place. */
inline Operand
vf(VarId var, u64 field)
{
    return Operand::copy(MirPlace::of(var).field(field));
}

/** The return-slot place. */
inline MirPlace
ret()
{
    return MirPlace::of(0);
}

/** Variable place. */
inline MirPlace
p(VarId var)
{
    return MirPlace::of(var);
}

/** Register one layer's functions into a program. */
void addLayer02(Program &prog, const Geometry &geo);
void addLayer03(Program &prog, const Geometry &geo);
void addLayer04(Program &prog, const Geometry &geo);
void addLayer05(Program &prog, const Geometry &geo);
void addLayer06(Program &prog, const Geometry &geo);
void addLayer07(Program &prog, const Geometry &geo);
void addLayer08(Program &prog, const Geometry &geo);
void addLayer09(Program &prog, const Geometry &geo);
void addLayer10(Program &prog, const Geometry &geo);
void addLayer11(Program &prog, const Geometry &geo);
void addLayer12(Program &prog, const Geometry &geo);
void addLayer13(Program &prog, const Geometry &geo);
void addLayer14(Program &prog, const Geometry &geo);
void addLayer15(Program &prog, const Geometry &geo);

} // namespace hev::mirmodels

#endif // HEV_MIRMODELS_COMMON_HH
