/**
 * @file
 * Layer 15 — the memory-isolation interface at the top of the stack.
 *
 * `mem_translate` is the two-stage (GPT then EPT) translation used by
 * the security model's mem_load/mem_store steps; it enforces write
 * permission at both stages.  Conforms to specMemTranslate.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn mem_translate(gpt_h, ept_h, va, is_write) -> Option<(u64, u64)> */
mir::Function
makeMemTranslate()
{
    FunctionBuilder fb("mem_translate", 4);
    const VarId s1 = fb.newVar();
    const VarId s2 = fb.newVar();
    const VarId d = fb.newVar();
    const VarId pair = fb.newVar();
    const VarId pa1 = fb.newVar();
    const VarId fl = fb.newVar();
    const VarId w = fb.newVar();

    const BlockId have_s1 = fb.newBlock();
    const BlockId s1_some = fb.newBlock();
    const BlockId s1_wcheck = fb.newBlock();
    const BlockId stage2 = fb.newBlock();
    const BlockId have_s2 = fb.newBlock();
    const BlockId s2_some = fb.newBlock();
    const BlockId s2_wcheck = fb.newBlock();
    const BlockId give = fb.newBlock();
    const BlockId none_bb = fb.newBlock();

    fb.atBlock(0).callFn("as_query", {v(1), v(3)}, p(s1), have_s1);
    fb.atBlock(have_s1)
        .assign(p(d), mir::discriminantOf(p(s1)))
        .switchInt(v(d), {{0, none_bb}}, s1_some);
    fb.atBlock(s1_some)
        .assign(p(pair), mir::use(vf(s1, 0)))
        .assign(p(pa1), mir::use(Operand::copy(p(pair).field(0))))
        .switchInt(v(4), {{0, stage2}}, s1_wcheck);
    fb.atBlock(s1_wcheck)
        .assign(p(fl), mir::use(Operand::copy(p(pair).field(1))))
        .assign(p(w), mir::bin(BinOp::Shr, v(fl), c(1)))
        .assign(p(w), mir::bin(BinOp::BitAnd, v(w), c(1)))
        .switchInt(v(w), {{0, none_bb}}, stage2);
    fb.atBlock(stage2)
        .callFn("as_query", {v(2), v(pa1)}, p(s2), have_s2);
    fb.atBlock(have_s2)
        .assign(p(d), mir::discriminantOf(p(s2)))
        .switchInt(v(d), {{0, none_bb}}, s2_some);
    fb.atBlock(s2_some)
        .assign(p(pair), mir::use(vf(s2, 0)))
        .switchInt(v(4), {{0, give}}, s2_wcheck);
    fb.atBlock(s2_wcheck)
        .assign(p(fl), mir::use(Operand::copy(p(pair).field(1))))
        .assign(p(w), mir::bin(BinOp::Shr, v(fl), c(1)))
        .assign(p(w), mir::bin(BinOp::BitAnd, v(w), c(1)))
        .switchInt(v(w), {{0, none_bb}}, give);
    fb.atBlock(give)
        .assign(ret(), mir::use(v(s2))) // the Some((pa, flags)) verbatim
        .ret();
    fb.atBlock(none_bb)
        .assign(ret(), mir::makeAggregate(0, {}))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer15(Program &prog, const Geometry &)
{
    prog.add(makeMemTranslate());
}

} // namespace hev::mirmodels
