/**
 * @file
 * Layer 8 — the page walk that the security model reuses.
 *
 * `pt_query` retrieves the terminal entry covering a VA, honoring huge
 * pages, and returns Option<(pa, flags)>.  This is the function the
 * paper points at in Sec. 5.1: "instead of manually writing this
 * function in Coq (which we could get wrong), we actually use a
 * corresponding page-walk function that is part of the memory module".
 * Conforms to specPtQuery.
 */

#include "mirmodels/common.hh"

namespace hev::mirmodels
{

namespace
{

/** fn pt_query(root, va) -> Option<(u64, u64)> */
mir::Function
makePtQuery()
{
    FunctionBuilder fb("pt_query", 2);
    const VarId t = fb.newVar();
    const VarId level = fb.newVar();
    const VarId idx = fb.newVar();
    const VarId e = fb.newVar();
    const VarId pres = fb.newVar();
    const VarId hg = fb.newVar();
    const VarId sh = fb.newVar();
    const VarId mask = fb.newVar();
    const VarId off = fb.newVar();
    const VarId a = fb.newVar();
    const VarId pa = fb.newVar();
    const VarId fl = fb.newVar();
    const VarId pair = fb.newVar();
    const VarId cond = fb.newVar();

    const BlockId loop_head = fb.newBlock();
    const BlockId have_idx = fb.newBlock();
    const BlockId have_e = fb.newBlock();
    const BlockId have_pres = fb.newBlock();
    const BlockId check_level = fb.newBlock();
    const BlockId check_huge = fb.newBlock();
    const BlockId have_hg = fb.newBlock();
    const BlockId descend = fb.newBlock();
    const BlockId have_next = fb.newBlock();
    const BlockId terminal = fb.newBlock();
    const BlockId have_addr = fb.newBlock();
    const BlockId have_flags = fb.newBlock();
    const BlockId none_bb = fb.newBlock();

    fb.atBlock(0)
        .assign(p(t), mir::use(v(1)))
        .assign(p(level), mir::use(c(pagingLevels)))
        .jump(loop_head);
    fb.atBlock(loop_head)
        .callFn("va_index", {v(2), v(level)}, p(idx), have_idx);
    fb.atBlock(have_idx)
        .callFn("entry_read", {v(t), v(idx)}, p(e), have_e);
    fb.atBlock(have_e)
        .callFn("pte_present", {v(e)}, p(pres), have_pres);
    fb.atBlock(have_pres).switchInt(v(pres), {{0, none_bb}}, check_level);
    fb.atBlock(check_level)
        .assign(p(cond), mir::bin(BinOp::Eq, v(level), c(1)))
        .switchInt(v(cond), {{0, check_huge}}, terminal);
    fb.atBlock(check_huge)
        .callFn("pte_huge", {v(e)}, p(hg), have_hg);
    fb.atBlock(have_hg).switchInt(v(hg), {{0, descend}}, terminal);
    fb.atBlock(descend)
        .callFn("pte_addr", {v(e)}, p(t), have_next);
    fb.atBlock(have_next)
        .assign(p(level), mir::bin(BinOp::Sub, v(level), c(1)))
        .jump(loop_head);

    // Terminal entry: pa = pte_addr(e) + (va & (span - 1)).
    fb.atBlock(terminal)
        .assign(p(sh), mir::bin(BinOp::Sub, v(level), c(1)))
        .assign(p(sh), mir::bin(BinOp::Mul, v(sh), c(9)))
        .assign(p(sh), mir::bin(BinOp::Add, v(sh), c(12)))
        .assign(p(mask), mir::bin(BinOp::Shl, c(1), v(sh)))
        .assign(p(mask), mir::bin(BinOp::Sub, v(mask), c(1)))
        .assign(p(off), mir::bin(BinOp::BitAnd, v(2), v(mask)))
        .callFn("pte_addr", {v(e)}, p(a), have_addr);
    fb.atBlock(have_addr)
        .assign(p(pa), mir::bin(BinOp::Add, v(a), v(off)))
        .callFn("pte_flags", {v(e)}, p(fl), have_flags);
    // Some((pa, flags)): a one-field option holding a 2-tuple.
    fb.atBlock(have_flags)
        .assign(p(pair), mir::makeAggregate(0, {v(pa), v(fl)}))
        .assign(ret(), mir::makeAggregate(1, {v(pair)}))
        .ret();
    fb.atBlock(none_bb)
        .assign(ret(), mir::makeAggregate(0, {}))
        .ret();
    return fb.build();
}

} // namespace

void
addLayer08(Program &prog, const Geometry &)
{
    prog.add(makePtQuery());
}

} // namespace hev::mirmodels
