/**
 * @file
 * Noninterference over vCPU-style schedules.
 *
 * Theorem 5.1 quantifies over all executions; the lockstep sweeps in
 * src/check/ draw those executions action by action.  Under SMP the
 * execution is additionally parameterized by the *schedule*: which
 * principal runs each step, with Enter/Exit world switches stitching
 * the slices together.  checkNiOverSchedules draws whole schedules
 * from a seeded stream (the same Rng::split discipline the
 * interleaving scheduler in src/smp/ uses), materializes each as a
 * SecMachine trace whose interleaving is dictated by the schedule
 * alone, and checks Theorem 5.1 for every observer over every
 * schedule: security must hold for all interleavings, not just the
 * one the single-vCPU sweeps happen to draw.
 */

#ifndef HEV_SEC_SCHEDULE_NI_HH
#define HEV_SEC_SCHEDULE_NI_HH

#include "sec/noninterference.hh"

namespace hev::sec
{

/** Sizing of one scheduled-noninterference check. */
struct ScheduleNiOptions
{
    int rounds = 4;         //!< independent schedules per call
    int stepsPerRound = 60; //!< actions per schedule
    /** Reciprocal world-switch probability per schedule point. */
    int switchChance = 4;
};

/**
 * Build `rounds` random schedules over the two-enclave scene and check
 * the Theorem 5.1 trace property for every observer (the OS and both
 * enclaves) on each.
 *
 * @param rng the shard's RNG stream; sole source of randomness.
 * @return the first violation, nullopt if every schedule checks out.
 */
std::optional<NiViolation>
checkNiOverSchedules(Rng &rng, const ScheduleNiOptions &opts = {});

/**
 * The shared two-enclave scene (one mapped OS page, two one-page
 * enclaves with marshalling buffers); ids receives the enclave ids.
 */
SecState scheduleNiScene(std::vector<i64> &ids);

} // namespace hev::sec

#endif // HEV_SEC_SCHEDULE_NI_HH
