/**
 * @file
 * The noninterference checkers: executable analogues of Theorem 5.1
 * and the step-wise Lemmas 5.2-5.4 of the paper.
 *
 * Instead of a Coq proof over all executions, each lemma is checked
 * over generated executions: indistinguishable state pairs are built
 * by perturbing unobservable state, both runs share a data oracle, and
 * indistinguishability must be preserved by every step.  A checker
 * returning a violation corresponds to a proof that cannot be closed —
 * and the suites verify the checkers DO fail on the planted Fig. 5
 * misconfigurations.
 */

#ifndef HEV_SEC_NONINTERFERENCE_HH
#define HEV_SEC_NONINTERFERENCE_HH

#include <optional>
#include <string>
#include <vector>

#include "sec/observe.hh"

namespace hev::sec
{

/** A failed lemma instance. */
struct NiViolation
{
    std::string lemma;
    std::string detail;
};

/**
 * Lemma 5.2 (integrity): p is inactive; the active principal performs
 * one step; V(p) must be unchanged.
 *
 * @pre s.active != p.
 */
std::optional<NiViolation> checkIntegrityStep(const SecState &s,
                                              Principal p,
                                              const Action &action,
                                              u64 oracle_seed);

/**
 * Lemmas 5.3/5.4 (confidentiality): s1 and s2 are indistinguishable to
 * p; the active principal performs the same step in both (same oracle
 * seed); the results must remain indistinguishable, and when p itself
 * is the active principal the observable step results must coincide.
 */
std::optional<NiViolation> checkStepPair(SecState s1, SecState s2,
                                         Principal p,
                                         const Action &action,
                                         u64 oracle_seed);

/**
 * Theorem 5.1 over a whole trace: run the action sequence in lockstep
 * from two indistinguishable states and check indistinguishability
 * after every step.
 */
std::optional<NiViolation> checkTrace(SecState s1, SecState s2,
                                      Principal p,
                                      const std::vector<Action> &trace,
                                      u64 oracle_seed);

/**
 * Generate a random action appropriate to the active principal of s.
 * Used by the randomized noninterference sweeps and the benches.
 */
Action randomAction(const SecState &s, Rng &rng);

} // namespace hev::sec

#endif // HEV_SEC_NONINTERFERENCE_HH
