/**
 * @file
 * The abstract transition system of paper Sec. 5.1.
 *
 * Principals are the primary OS (id 0) and the enclaves.  Steps are
 * CPU-local moves (mem_load, mem_store, local computation) and the
 * modeled hypercalls (init, add_page, init_finish) plus enter/exit
 * world switches.  Addresses are resolved "using the current installed
 * page table" — through the *same verified specs* the conformance
 * suites check against the MIR code, exactly as the paper reuses its
 * verified page-walk function.
 *
 * Marshalling-buffer accesses follow the data-oracle treatment of
 * Sec. 5.4: stores to the buffer are ignored, loads draw from the
 * oracle stream, so buffer contents are declassified by construction.
 */

#ifndef HEV_SEC_MACHINE_HH
#define HEV_SEC_MACHINE_HH

#include <array>
#include <map>

#include "ccal/flat_state.hh"
#include "ccal/specs.hh"
#include "support/rng.hh"

namespace hev::sec
{

using ccal::FlatState;

/** Principal id: 0 is the primary OS; enclaves use their enclave id. */
using Principal = i64;

/** The primary OS principal. */
constexpr Principal osPrincipal = 0;

/** Register file of the abstract CPU (small, per the Coq model). */
struct AbsContext
{
    std::array<u64, 4> regs{};
    u64 pc = 0;

    bool operator==(const AbsContext &) const = default;
};

/**
 * The data oracle (paper Sec. 5.4): a deterministic stream of values
 * parameterizing one execution.  Two lockstep runs use two oracles
 * built from the same seed, so declassified reads agree by
 * construction while everything else may differ.
 */
class DataOracle
{
  public:
    explicit DataOracle(u64 seed) : stream(seed) {}

    /** Next declassified / nondeterministic value. */
    u64 next() { return stream.next(); }

  private:
    Rng stream;
};

/** One step of the transition system. */
struct Action
{
    enum class Kind : u8
    {
        Load,       //!< reg[reg_index] = mem[translate(va)]
        Store,      //!< mem[translate(va)] = reg[reg_index]
        Compute,    //!< local computation over own registers + oracle
        OsMap,      //!< OS edits its own page table: va -> gpa
        OsUnmap,    //!< OS removes one of its own mappings
        HcInit,     //!< hypercall: create enclave
        HcAddPage,  //!< hypercall: add a page
        HcFinish,   //!< hypercall: finish initialization
        HcRemove,   //!< hypercall: tear an enclave down (scrubs EPC)
        Enter,      //!< world switch into an enclave
        Exit,       //!< world switch back to the OS
        Evict,      //!< hypercall: seal + evict an enclave page (EWB)
        Reload,     //!< hypercall: reload a sealed page (ELD); a = index
        Snapshot,   //!< hypercall: whole-enclave image (a&1 = move)
    };

    Kind kind = Kind::Compute;
    u64 va = 0;
    int reg = 0;
    i64 enclave = 0;
    /** Hypercall / map parameters (kind-specific). */
    u64 a = 0, b = 0, c = 0, d = 0, e = 0;
};

/** Result of a step, observable to the acting principal. */
struct StepResult
{
    bool faulted = false;   //!< translation or hypercall failure
    i64 code = 0;           //!< hypercall return / new enclave id
    u64 value = 0;          //!< loaded value, if any

    bool operator==(const StepResult &) const = default;
};

/**
 * One sealed blob in untrusted custody (the security-model image of
 * hv::SealedBlob).  The record splits the blob into what the OS can
 * see — owner, address, version, and the sealed image itself, modeled
 * as a single oracle-drawn ciphertext token — and what it cannot: the
 * page's plaintext words, kept here only so a verified reload can
 * restore them.  The observation function puts the first group in the
 * OS's view and the second only in the owner's (sealed-blob oracle).
 */
struct SealRecord
{
    Principal owner = 0;
    u64 gva = 0;
    u64 version = 0;
    u64 ciphertext = 0;      //!< declassified sealed image (OS-visible)
    std::map<u64, u64> plain; //!< page-offset -> word (owner-visible)

    bool operator==(const SealRecord &) const = default;
};

/**
 * One enclave image in untrusted custody (the security-model picture
 * of hv::EnclaveImage).  Exactly like SealRecord, the record splits
 * into what the OS can see — the header metadata and one
 * oracle-drawn ciphertext token per page — and what it cannot: the
 * per-page plaintext, kept only so a verified restore could rebuild
 * the enclave.  Lemma 5.2 extended to images is the statement that
 * the observation function puts only the first group in the OS view:
 * the image ciphertext ledger reveals nothing beyond what the
 * sealed-page ledger already revealed.
 */
struct ImageRecord
{
    Principal source = 0;
    u64 measurement = 0;  //!< opaque ledger token (declassified)
    u64 versionBase = 0;
    bool moved = false;   //!< move-mode snapshot (source retired)
    std::vector<SealRecord> pages;

    bool operator==(const ImageRecord &) const = default;
};

/** The whole abstract machine state. */
struct SecState
{
    FlatState mon;                    //!< monitor state (PTs, EPCM, ...)
    std::map<u64, u64> mem;           //!< data memory: word addr -> value
    Principal active = osPrincipal;
    AbsContext cpu;                   //!< registers of the active one
    std::map<Principal, AbsContext> saved;
    std::map<Principal, bool> everEntered;
    /** The OS's own page table: VA page -> GPA page (guest-managed). */
    std::map<u64, u64> osPageTable;
    /**
     * Every blob ever sealed, in eviction order; reload never removes a
     * record (the OS may keep stale copies, which is exactly what the
     * anti-rollback check exists for).
     */
    std::vector<SealRecord> seals;
    /**
     * Every whole-enclave image ever snapshotted, in creation order;
     * like `seals`, records are never removed — the OS keeps custody
     * of every image it was ever handed.
     */
    std::vector<ImageRecord> images;

    explicit SecState(const ccal::Geometry &geo = ccal::Geometry{})
        : mon(geo)
    {}

    bool operator==(const SecState &) const = default;
};

/** Executes actions against a SecState. */
class SecMachine
{
  public:
    /**
     * Resolve a VA for a principal: the OS goes through its own page
     * table and the identity EPT over normal memory; an enclave goes
     * through its monitor-managed GPT and EPT.
     *
     * @return the physical word address, or ~0 on fault.
     */
    static u64 translate(const SecState &s, Principal p, u64 va,
                         bool is_write);

    /** True iff the physical address lies in any marshalling buffer. */
    static bool inAnyMbufBacking(const SecState &s, u64 hpa);

    /**
     * Execute one action for the currently active principal; actions a
     * principal may not perform (e.g. an enclave issuing a hypercall)
     * fault without effect.
     */
    static StepResult step(SecState &s, const Action &action,
                           DataOracle &oracle);

    /** Convenience: scripted full enclave setup from the OS. */
    static i64 setupEnclave(SecState &s, DataOracle &oracle, u64 el_base,
                            u64 pages, u64 mbuf_pages, u64 backing,
                            u64 src_base);
};

} // namespace hev::sec

#endif // HEV_SEC_MACHINE_HH
