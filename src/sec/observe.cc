#include "sec/observe.hh"

#include <sstream>

#include "sec/invariants.hh"

namespace hev::sec
{

using namespace ccal;
using namespace ccal::spec;

namespace
{

/**
 * Collect the principal's logical mappings and the physical pages
 * backing them.  Mappings target the stage-1 (guest-physical) address;
 * `pages` holds the host-physical page bases whose contents belong to
 * the view, and `page_va` (when given) their virtual page bases, so
 * the caller can re-key enclave memory by VA.
 */
void
collectPrincipalMappings(const SecState &s, Principal p, View &view,
                         std::set<u64> &pages,
                         std::map<u64, u64> *page_va = nullptr)
{
    if (p == osPrincipal) {
        // The OS owns its page table verbatim; it reaches all of
        // normal memory.
        for (const auto &[va, gpa] : s.osPageTable) {
            view.mappings[va] = {gpa, pteRwFlags};
        }
        for (u64 page = 0; page < s.mon.geo.normalLimit;
             page += pageSize) {
            if (!SecMachine::inAnyMbufBacking(s, page))
                pages.insert(page);
        }
        return;
    }
    auto it = s.mon.enclaves.find(p);
    if (it == s.mon.enclaves.end() || it->second.state == enclStateDead)
        return;
    const AbsEnclave &enclave = it->second;
    const u64 gpt_root = s.mon.rootOf(enclave.gptHandle);
    if (gpt_root == 0)
        return;
    (void)forEachFlatMapping(
        s.mon, gpt_root, [&](u64 va, u64 gpa, u64 flags, int) {
            const QueryResult stage2 =
                specAsQuery(s.mon, enclave.eptHandle, gpa);
            const u64 hpa = stage2.isSome ? stage2.physAddr : ~0ull;
            view.mappings[va] = {gpa, flags};
            if (hpa != ~0ull && !SecMachine::inAnyMbufBacking(s, hpa)) {
                pages.insert(hpa & ~(pageSize - 1));
                if (page_va)
                    (*page_va)[hpa & ~(pageSize - 1)] =
                        va & ~(pageSize - 1);
            }
        });
    // Evicted pages stay in the logical view: same slot, same flags as
    // the resident mapping they replace, so V(p) is paging-invariant.
    for (const auto &[gva, sealed] : enclave.evicted)
        view.mappings[gva] = {sealed.gpaSlot, pteRwFlags};
}

/** The sealed plaintext of (owner, version), if recorded. */
const SealRecord *
findSeal(const SecState &s, Principal owner, u64 version)
{
    for (const SealRecord &rec : s.seals) {
        if (rec.owner == owner && rec.version == version)
            return &rec;
    }
    return nullptr;
}

} // namespace

View
observe(const SecState &s, Principal p)
{
    View view;
    view.isActive = s.active == p;
    if (view.isActive)
        view.activeRegs = s.cpu;
    auto saved = s.saved.find(p);
    if (saved != s.saved.end()) {
        view.hasSaved = true;
        view.savedRegs = saved->second;
    }

    std::set<u64> pages;
    std::map<u64, u64> page_va;
    collectPrincipalMappings(s, p, view, pages,
                             p == osPrincipal ? nullptr : &page_va);

    if (p == osPrincipal) {
        for (const auto &[addr, value] : s.mem) {
            if (value == 0)
                continue; // absent and zero are the same memory
            if (pages.count(addr & ~(pageSize - 1)))
                view.memory.emplace(addr, value);
        }
        // The sealed-blob ledger: metadata and ciphertext, never the
        // plaintext.
        for (const SealRecord &rec : s.seals)
            view.seals.push_back(
                {rec.owner, rec.gva, rec.version, rec.ciphertext});
        // The image ledger, under the same split: header + per-page
        // ciphertexts are OS-visible, the plaintext words are not.
        for (const ImageRecord &img : s.images) {
            ViewImage vi;
            vi.source = img.source;
            vi.measurement = img.measurement;
            vi.versionBase = img.versionBase;
            vi.moved = img.moved;
            for (const SealRecord &rec : img.pages)
                vi.pages.push_back(
                    {rec.owner, rec.gva, rec.version, rec.ciphertext});
            view.images.push_back(std::move(vi));
        }
        return view;
    }

    // Enclave memory is keyed by virtual address, so the view is
    // unchanged when a reload lands a page in a different EPC frame.
    for (const auto &[addr, value] : s.mem) {
        if (value == 0)
            continue; // absent and zero are the same memory
        auto it = page_va.find(addr & ~(pageSize - 1));
        if (it != page_va.end())
            view.memory.emplace(it->second + (addr & (pageSize - 1)),
                                value);
    }
    // Evicted pages read through their current sealed plaintext.
    auto enc = s.mon.enclaves.find(p);
    if (enc != s.mon.enclaves.end() &&
        enc->second.state != enclStateDead) {
        for (const auto &[gva, sealed] : enc->second.evicted) {
            const SealRecord *rec = findSeal(s, p, sealed.version);
            if (!rec)
                continue;
            for (const auto &[off, word] : rec->plain) {
                if (word != 0)
                    view.memory.emplace(gva + off, word);
            }
        }
    }
    return view;
}

bool
indistinguishable(const SecState &s1, const SecState &s2, Principal p)
{
    return observe(s1, p) == observe(s2, p);
}

std::set<u64>
observablePages(const SecState &s, Principal p)
{
    View view;
    std::set<u64> pages;
    collectPrincipalMappings(s, p, view, pages);
    return pages;
}

void
perturbUnobservable(SecState &s, Principal p, Rng &rng)
{
    const std::set<u64> visible = observablePages(s, p);

    // Mutate memory outside the principal's non-shared pages: other
    // principals' pages, unreachable memory, and marshalling buffers
    // (declassified).
    const u64 mutations = 1 + rng.below(8);
    for (u64 i = 0; i < mutations; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            u64 addr;
            if (rng.chance(1, 2)) {
                addr = rng.below(s.mon.geo.normalLimit / 8) * 8;
            } else {
                addr = s.mon.geo.epcBase +
                       rng.below(s.mon.geo.epcCount * pageSize / 8) * 8;
            }
            if (visible.count(addr & ~(pageSize - 1)))
                continue;
            s.mem[addr] = rng.next();
            break;
        }
    }

    // Other principals' saved contexts.
    for (auto &[owner, ctx] : s.saved) {
        if (owner != p && rng.chance(1, 2)) {
            ctx.regs[rng.below(4)] = rng.next();
            ctx.pc = rng.next();
        }
    }

    // Active registers, when p is not the one running.
    if (s.active != p) {
        s.cpu.regs[rng.below(4)] = rng.next();
        s.cpu.pc = rng.next();
    }

    // Sealed blobs: the plaintext of another principal's record is
    // never in p's view, and the ciphertext/metadata side is only in
    // the OS's.  (Records owned by p are left alone even when stale —
    // conservative, and cheap.)
    for (SealRecord &rec : s.seals) {
        if (rec.owner != p && !rec.plain.empty() && rng.chance(1, 2)) {
            u64 skip = rng.below(rec.plain.size());
            auto word = rec.plain.begin();
            while (skip--)
                ++word;
            word->second = rng.next();
        }
        if (p != osPrincipal && rng.chance(1, 2))
            rec.ciphertext = rng.next();
    }

    // Enclave images, under the same discipline: image plaintext is in
    // NO principal's view (a snapshotted page reads through the live
    // enclave, never the image), but we stay conservative and leave
    // the owner's records alone; ciphertext and header metadata are
    // OS-view only.
    for (ImageRecord &img : s.images) {
        for (SealRecord &rec : img.pages) {
            if (rec.owner != p && !rec.plain.empty() &&
                rng.chance(1, 2)) {
                u64 skip = rng.below(rec.plain.size());
                auto word = rec.plain.begin();
                while (skip--)
                    ++word;
                word->second = rng.next();
            }
            if (p != osPrincipal && rng.chance(1, 2))
                rec.ciphertext = rng.next();
        }
        if (p != osPrincipal && rng.chance(1, 2))
            img.measurement = rng.next();
    }
}

std::string
diffViews(const View &a, const View &b)
{
    std::ostringstream out;
    if (a.isActive != b.isActive)
        out << "activity differs; ";
    if (a.isActive && b.isActive && !(a.activeRegs == b.activeRegs))
        out << "active registers differ; ";
    if (a.hasSaved != b.hasSaved ||
        (a.hasSaved && !(a.savedRegs == b.savedRegs)))
        out << "saved context differs; ";
    if (a.mappings != b.mappings)
        out << "page-table mappings differ; ";
    if (a.seals != b.seals)
        out << "seal ledger differs; ";
    if (a.images != b.images)
        out << "image ledger differs; ";
    if (a.memory != b.memory) {
        out << "memory differs";
        for (const auto &[addr, value] : a.memory) {
            auto it = b.memory.find(addr);
            if (it == b.memory.end() || it->second != value) {
                out << " (first at " << std::hex << addr << ")";
                break;
            }
        }
        out << "; ";
    }
    return out.str();
}

} // namespace hev::sec
