#include "sec/invariants.hh"

#include <map>
#include <set>
#include <sstream>

#include "ccal/specs.hh"

namespace hev::sec
{

using namespace ccal;
using namespace ccal::spec;

namespace
{

bool
walkTable(const FlatState &s, u64 table, int level, u64 va_prefix,
          const std::function<void(u64, u64, u64, int)> &visit)
{
    if (!s.geo.inFrameArea(table))
        return false;
    for (u64 index = 0; index < entriesPerTable; ++index) {
        const u64 entry = s.readEntry(table, index);
        if (!specPtePresent(entry))
            continue;
        const u64 va =
            va_prefix | (index << (pageShift + 9 * (level - 1)));
        if (level == 1 || specPteHuge(entry)) {
            visit(va, specPteAddr(entry), specPteFlags(entry), level);
        } else if (!walkTable(s, specPteAddr(entry), level - 1, va,
                              visit)) {
            return false;
        }
    }
    return true;
}

/** A composed (GPT then EPT) terminal translation of one enclave. */
struct ComposedMapping
{
    u64 va = 0;    //!< enclave-linear address
    u64 gpa = 0;   //!< stage-1 output
    u64 hpa = 0;   //!< final physical page
    u64 flags = 0; //!< stage-1 flags
};

/**
 * Collect each enclave's composed page mappings.
 *
 * @param[out] walk_ok false if any table walk escaped the frame area.
 */
std::map<i64, std::vector<ComposedMapping>>
collectEnclaveMappings(const FlatState &s, bool &walk_ok,
                       std::vector<Violation> &violations)
{
    std::map<i64, std::vector<ComposedMapping>> result;
    walk_ok = true;
    for (const auto &[id, enclave] : s.enclaves) {
        if (enclave.state == enclStateDead)
            continue;
        const u64 gpt_root = s.rootOf(enclave.gptHandle);
        if (gpt_root == 0)
            continue;
        std::vector<ComposedMapping> mappings;
        const bool ok = forEachFlatMapping(
            s, gpt_root, [&](u64 va, u64 gpa, u64 flags, int) {
                ComposedMapping m;
                m.va = va;
                m.gpa = gpa;
                m.flags = flags;
                const QueryResult stage2 =
                    specAsQuery(s, enclave.eptHandle, gpa);
                m.hpa = stage2.isSome ? stage2.physAddr : ~0ull;
                mappings.push_back(m);
            });
        if (!ok) {
            walk_ok = false;
            std::ostringstream msg;
            msg << "enclave " << id
                << " page-table walk escapes the frame area "
                   "(shallow-copy-style state)";
            violations.push_back({"page-table containment", msg.str()});
        }
        result[id] = std::move(mappings);
    }
    return result;
}

} // namespace

bool
forEachFlatMapping(const FlatState &s, u64 root,
                   const std::function<void(u64, u64, u64, int)> &visit)
{
    return walkTable(s, root, pagingLevels, 0, visit);
}

std::vector<Violation>
checkInvariants(const FlatState &s)
{
    std::vector<Violation> violations;

    bool walk_ok = true;
    auto mappings = collectEnclaveMappings(s, walk_ok, violations);

    // --- Enclave invariants: geometry and per-mapping facts.
    for (const auto &[id, enclave] : s.enclaves) {
        if (enclave.state == enclStateDead)
            continue;
        const u64 mbuf_end =
            enclave.mbufGva + enclave.mbufPages * pageSize;
        if (!(mbuf_end <= enclave.elStart ||
              enclave.mbufGva >= enclave.elEnd)) {
            std::ostringstream msg;
            msg << "enclave " << id
                << ": ELRANGE overlaps the marshalling buffer range";
            violations.push_back({"enclave invariants", msg.str()});
        }

        const u64 gpt_root = s.rootOf(enclave.gptHandle);
        const u64 ept_root = s.rootOf(enclave.eptHandle);
        for (const u64 root : {gpt_root, ept_root}) {
            if (root == 0)
                continue;
            (void)forEachFlatMapping(
                s, root, [&](u64 va, u64, u64 flags, int level) {
                    if (level != 1 || (flags & pteFlagHuge)) {
                        std::ostringstream msg;
                        msg << "enclave " << id
                            << ": huge mapping at va " << std::hex
                            << va;
                        violations.push_back(
                            {"enclave invariants", msg.str()});
                    }
                });
        }

        for (const ComposedMapping &m : mappings[id]) {
            const bool in_elrange = enclave.elStart <= m.va &&
                                    m.va + pageSize <= enclave.elEnd;
            const bool in_mbuf =
                enclave.mbufGva <= m.va && m.va + pageSize <= mbuf_end;
            const bool to_epc =
                m.hpa != ~0ull && s.geo.inEpc(m.hpa);

            // va in ELRANGE <=> physical target in the EPC.
            if (in_elrange && !to_epc) {
                std::ostringstream msg;
                msg << "enclave " << id << ": ELRANGE va " << std::hex
                    << m.va << " does not map into the EPC";
                violations.push_back({"enclave invariants", msg.str()});
            }
            if (!in_elrange && to_epc) {
                std::ostringstream msg;
                msg << "enclave " << id << ": non-ELRANGE va "
                    << std::hex << m.va << " maps into the EPC";
                violations.push_back({"enclave invariants", msg.str()});
            }
            if (!in_elrange && !in_mbuf) {
                std::ostringstream msg;
                msg << "enclave " << id << ": va " << std::hex << m.va
                    << " mapped outside ELRANGE and mbuf ranges";
                violations.push_back({"enclave invariants", msg.str()});
            }

            // --- EPCM invariant: EPC mappings are recorded.
            if (to_epc) {
                const u64 index = (m.hpa - s.geo.epcBase) / pageSize;
                const AbsEpcmEntry &entry = s.epcm[index];
                if (entry.state == epcStateFree || entry.owner != id ||
                    entry.linAddr != m.va) {
                    std::ostringstream msg;
                    msg << "enclave " << id << ": EPC page " << std::hex
                        << m.hpa << " mapped at va " << m.va
                        << " without a matching EPCM entry";
                    violations.push_back({"EPCM invariant", msg.str()});
                }
            }

            // --- Marshalling buffer invariant: physical memory
            // reachable by both the enclave and the primary OS (i.e.
            // normal memory) must be marshalling buffer.
            const bool os_reachable =
                m.hpa != ~0ull && m.hpa < s.geo.normalLimit;
            if (os_reachable) {
                const u64 backing_end =
                    enclave.mbufBacking + enclave.mbufPages * pageSize;
                const bool backing_ok =
                    enclave.mbufBacking <= m.hpa &&
                    m.hpa + pageSize <= backing_end;
                if (!in_mbuf || !backing_ok) {
                    std::ostringstream msg;
                    msg << "enclave " << id << ": va " << std::hex
                        << m.va << " shares physical page " << m.hpa
                        << " with the primary OS outside the "
                           "marshalling buffer";
                    violations.push_back(
                        {"marshalling buffer invariant", msg.str()});
                }
            }
        }
    }

    // --- EPCM invariant extended to non-resident (sealed) pages: an
    // evicted record names an ELRANGE page that is genuinely gone —
    // no stage-1 mapping, no EPCM entry — whose stage-1 slot lies in
    // the allocated EPC GPA window and whose version the counter has
    // actually issued.
    for (const auto &[id, enclave] : s.enclaves) {
        if (enclave.state == enclStateDead)
            continue;
        for (const auto &[gva, sealed] : enclave.evicted) {
            const auto blame = [&](const std::string &what) {
                std::ostringstream msg;
                msg << "enclave " << id << ": evicted gva " << std::hex
                    << gva << " " << what;
                violations.push_back({"EPCM invariant", msg.str()});
            };
            if (!(enclave.elStart <= gva &&
                  gva + pageSize <= enclave.elEnd))
                blame("outside ELRANGE");
            if (specAsQuery(s, enclave.gptHandle, gva).isSome)
                blame("is still stage-1 mapped");
            if (sealed.gpaSlot < s.geo.epcGpaBase ||
                sealed.gpaSlot >= s.geo.epcGpaBase +
                                      enclave.addedPages * pageSize)
                blame("has a stage-1 slot outside the EPC GPA window");
            if (sealed.version == 0 ||
                sealed.version >= enclave.nextSealVersion)
                blame("has a version the counter never issued");
            if (sealed.kind != epcStateReg && sealed.kind != epcStateTcs)
                blame("has an invalid page kind");
            for (u64 index = 0; index < s.geo.epcCount; ++index) {
                if (s.epcm[index].state != epcStateFree &&
                    s.epcm[index].owner == id &&
                    s.epcm[index].linAddr == gva)
                    blame("still has a live EPCM entry");
            }
        }
    }

    // --- ELRANGE memory isolation: EPC pages never shared between
    // enclaves.
    std::map<u64, i64> epc_owner_by_mapping;
    for (const auto &[id, list] : mappings) {
        for (const ComposedMapping &m : list) {
            if (m.hpa == ~0ull || !s.geo.inEpc(m.hpa))
                continue;
            auto [it, fresh] = epc_owner_by_mapping.emplace(m.hpa, id);
            if (!fresh && it->second != id) {
                std::ostringstream msg;
                msg << "enclaves " << it->second << " and " << id
                    << " both map EPC page " << std::hex << m.hpa;
                violations.push_back(
                    {"ELRANGE memory isolation", msg.str()});
            }
        }
    }

    return violations;
}

std::vector<Violation>
checkTreeRefinement(const ccal::TreeState &t, const FlatState &s,
                    u64 root)
{
    std::vector<Violation> violations;
    if (ccal::refinesFlat(t, s, root))
        return violations;

    // R is broken; localize by probing every flat terminal mapping
    // through the tree.  Cap the detail list — one mismatch is enough
    // for a counterexample, the rest is noise.
    u64 reported = 0;
    forEachFlatMapping(s, root, [&](u64 va, u64 pa, u64 flags, int) {
        if (reported >= 4)
            return;
        const ccal::spec::QueryResult q = ccal::treeQuery(t, va);
        if (!q.isSome || q.physAddr != pa || q.flags != flags) {
            std::ostringstream msg;
            msg << "va " << std::hex << va << ": flat maps to pa " << pa
                << " flags " << flags << " but tree view ";
            if (!q.isSome)
                msg << "has no mapping";
            else
                msg << "maps to pa " << q.physAddr << " flags "
                    << q.flags;
            violations.push_back({"tree refinement R", msg.str()});
            ++reported;
        }
    });
    if (violations.empty())
        violations.push_back(
            {"tree refinement R",
             "tree view does not refine the flat table (extra or "
             "structurally different entries)"});
    return violations;
}

std::string
describeViolations(const std::vector<Violation> &violations)
{
    std::ostringstream out;
    for (const Violation &v : violations)
        out << "[" << v.invariant << "] " << v.detail << "\n";
    return out.str();
}

} // namespace hev::sec
