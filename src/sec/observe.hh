/**
 * @file
 * The observation function V(p, sigma) of paper Sec. 5.3.
 *
 * A principal observes: (1) the CPU's registers if it is the active
 * principal; (2) its saved register context; (3) the mappings of the
 * page tables it owns (for an enclave these include the immutable
 * marshalling-buffer mapping); and (4) the contents of the memory
 * pages it can reach that are not shared — marshalling-buffer pages
 * are excluded, their contents being declassified through the oracle.
 *
 * Two states are indistinguishable to p iff their views are equal.
 */

#ifndef HEV_SEC_OBSERVE_HH
#define HEV_SEC_OBSERVE_HH

#include <map>
#include <set>

#include "sec/machine.hh"

namespace hev::sec
{

/** One mapping as the principal sees it. */
struct ViewMapping
{
    u64 hpa = 0;  //!< guest-physical target (the principal's own frame
                  //!< numbering; host-physical placement is invisible)
    u64 flags = 0;

    bool operator==(const ViewMapping &) const = default;
};

/** What the OS sees of one sealed blob in its custody. */
struct ViewSeal
{
    Principal owner = 0;
    u64 gva = 0;
    u64 version = 0;
    u64 ciphertext = 0;  //!< the sealed image (declassified)

    bool operator==(const ViewSeal &) const = default;
};

/** What the OS sees of one enclave image in its custody. */
struct ViewImage
{
    Principal source = 0;
    u64 measurement = 0;
    u64 versionBase = 0;
    bool moved = false;
    /** Per-page metadata + ciphertext, never the plaintext. */
    std::vector<ViewSeal> pages;

    bool operator==(const ViewImage &) const = default;
};

/**
 * V(p, sigma).
 *
 * An enclave's view is *logical*: mappings are keyed by enclave-linear
 * address and target the stage-1 (guest-physical) slot, and memory is
 * keyed by virtual address.  This makes the view invariant under
 * paging — evicting a page and reloading it (possibly into a different
 * EPC frame) leaves V(enclave) unchanged, which is what lets the OS
 * run evict/reload as management steps without breaking Lemma 5.2.
 * Evicted pages still appear: their mapping from the sealed record,
 * their contents from the sealed plaintext.  The OS additionally sees
 * the seal ledger — every blob's metadata and ciphertext, never the
 * plaintext (the sealed-blob data oracle).
 */
struct View
{
    bool isActive = false;
    AbsContext activeRegs;   //!< meaningful iff isActive
    bool hasSaved = false;
    AbsContext savedRegs;    //!< meaningful iff hasSaved
    /** va -> (gpa, flags) for the principal's own tables. */
    std::map<u64, ViewMapping> mappings;
    /**
     * Contents the principal can reach and does not share: keyed by
     * word address for the OS, by virtual address for an enclave.
     */
    std::map<u64, u64> memory;
    /** The sealed-blob ledger (OS view only). */
    std::vector<ViewSeal> seals;
    /**
     * The enclave-image ledger (OS view only): header metadata and
     * per-page ciphertexts, the image analogue of `seals` — Lemma 5.2
     * extended to images says this is ALL the OS learns from a
     * snapshot.
     */
    std::vector<ViewImage> images;

    bool operator==(const View &) const = default;
};

/** Compute V(p, sigma). */
View observe(const SecState &s, Principal p);

/** Indistinguishability: V(p, s1) == V(p, s2). */
bool indistinguishable(const SecState &s1, const SecState &s2,
                       Principal p);

/**
 * Page bases whose contents are part of V(p) — the complement is fair
 * game for perturbation when generating indistinguishable states.
 */
std::set<u64> observablePages(const SecState &s, Principal p);

/**
 * Randomly mutate parts of the state p cannot observe: memory outside
 * observablePages(p) (including declassified marshalling buffers),
 * other principals' saved contexts, and the active registers when p is
 * inactive.  By construction the result is indistinguishable from the
 * input for p.
 */
void perturbUnobservable(SecState &s, Principal p, Rng &rng);

/** Short description of the first difference between two views. */
std::string diffViews(const View &a, const View &b);

} // namespace hev::sec

#endif // HEV_SEC_OBSERVE_HH
