/**
 * @file
 * The page-table invariants of paper Sec. 5.2, as executable predicates
 * over the flat abstract state.
 *
 * Invariant families ("stated in Coq in 106 lines of definitions"):
 *  - ELRANGE memory isolation: ELRANGE VAs of two different enclaves
 *    never translate to the same physical address.
 *  - Marshalling buffer invariant: any physical region reachable both
 *    by an enclave and by the primary OS is marshalling buffer, at
 *    marshalling-buffer VAs.
 *  - EPCM invariant: every enclave mapping into the EPC has a matching
 *    EPCM entry (owner and linear address agree) — no covert mappings.
 *  - Enclave invariants: a VA maps into the EPC iff it is in the
 *    ELRANGE; ELRANGE and mbuf range are disjoint; no huge pages in
 *    enclave page tables; and (the premise of everything above) all
 *    page-table frames stay inside the monitor's frame area.
 */

#ifndef HEV_SEC_INVARIANTS_HH
#define HEV_SEC_INVARIANTS_HH

#include <functional>
#include <string>
#include <vector>

#include "ccal/flat_state.hh"
#include "ccal/tree_state.hh"

namespace hev::sec
{

using ccal::FlatState;

/** One detected invariant violation. */
struct Violation
{
    std::string invariant;  //!< which family
    std::string detail;     //!< what exactly broke
};

/**
 * Enumerate the terminal mappings of the table rooted at `root`,
 * calling visit(va, pa, flags, level).
 *
 * @return false if the walk encountered an intermediate entry pointing
 *         outside the monitor's frame area (a shallow-copy-style state
 *         that cannot be enumerated safely).
 */
bool forEachFlatMapping(
    const FlatState &s, u64 root,
    const std::function<void(u64, u64, u64, int)> &visit);

/** Check every invariant family; empty result = all hold. */
std::vector<Violation> checkInvariants(const FlatState &s);

/**
 * Check the refinement relation R between a tree view and the flat
 * table rooted at `root`: empty result iff refinesFlat holds.  On a
 * mismatch, the violations localize it by comparing the flat table's
 * terminal mappings against treeQuery (the fuzzer uses this to turn
 * "refinement broke" into an addressable counterexample).
 */
std::vector<Violation> checkTreeRefinement(const ccal::TreeState &t,
                                           const FlatState &s, u64 root);

/** Render violations for a test failure message. */
std::string describeViolations(const std::vector<Violation> &violations);

} // namespace hev::sec

#endif // HEV_SEC_INVARIANTS_HH
