#include "sec/schedule_ni.hh"

#include <sstream>

#include "sec/machine.hh"
#include "sec/observe.hh"

namespace hev::sec
{

namespace
{

/**
 * An inner (non-world-switch) action for the active principal.  The
 * schedule owns the interleaving, so Enter/Exit drawn by randomAction
 * are rejected and redrawn — the redraw count is itself a function of
 * the stream, keeping the whole schedule replayable.
 */
Action
innerAction(const SecState &s, Rng &rng)
{
    for (;;) {
        Action action = randomAction(s, rng);
        if (action.kind != Action::Kind::Enter &&
            action.kind != Action::Kind::Exit)
            return action;
    }
}

} // namespace

SecState
scheduleNiScene(std::vector<i64> &ids)
{
    SecState s;
    DataOracle oracle(11);
    s.mem[0x4000] = 0xaaa;
    Action map;
    map.kind = Action::Kind::OsMap;
    map.va = 0x40'0000;
    map.a = 0x6000;
    (void)SecMachine::step(s, map, oracle);
    ids.push_back(SecMachine::setupEnclave(s, oracle, 0x10'0000, 1, 1,
                                           0x8000, 0x4000));
    ids.push_back(SecMachine::setupEnclave(s, oracle, 0x30'0000, 1, 1,
                                           0xa000, 0x4000));
    return s;
}

std::optional<NiViolation>
checkNiOverSchedules(Rng &rng, const ScheduleNiOptions &opts)
{
    std::vector<i64> ids;
    const SecState base = scheduleNiScene(ids);

    for (int round = 0; round < opts.rounds; ++round) {
        const u64 oracle_seed = rng.next();

        // Materialize one schedule: each point either world-switches
        // (Exit back to the OS, or Enter a scheduled enclave) or lets
        // the currently scheduled principal take an inner step.
        std::vector<Action> trace;
        SecState sim = base;
        DataOracle sim_oracle(oracle_seed);
        for (int step = 0; step < opts.stepsPerRound; ++step) {
            Action action;
            if (rng.chance(1, u64(opts.switchChance))) {
                if (sim.active == osPrincipal) {
                    action.kind = Action::Kind::Enter;
                    action.enclave = ids[rng.below(ids.size())];
                } else {
                    action.kind = Action::Kind::Exit;
                }
            } else {
                action = innerAction(sim, rng);
            }
            trace.push_back(action);
            (void)SecMachine::step(sim, action, sim_oracle);
        }

        for (const Principal p :
             {osPrincipal, Principal(ids[0]), Principal(ids[1])}) {
            SecState s1 = base;
            SecState s2 = base;
            perturbUnobservable(s2, p, rng);
            auto violation = checkTrace(s1, s2, p, trace, oracle_seed);
            if (violation) {
                std::ostringstream detail;
                detail << "schedule round " << round << ", observer " << p
                       << ": " << violation->detail;
                violation->detail = detail.str();
                return violation;
            }
        }
    }
    return std::nullopt;
}

} // namespace hev::sec
