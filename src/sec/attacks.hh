/**
 * @file
 * Misconfiguration injectors reproducing paper Fig. 5.
 *
 * Each function corrupts a well-formed abstract state into one of the
 * exploitable page-table designs the paper's invariants rule out.  The
 * invariant checker and the noninterference lemmas must flag every one
 * of them — the suites assert the *detection*, mirroring how such a
 * state would be unprovable in Coq.
 */

#ifndef HEV_SEC_ATTACKS_HH
#define HEV_SEC_ATTACKS_HH

#include "ccal/flat_state.hh"

namespace hev::sec
{

using ccal::FlatState;

/**
 * Fig. 5 case (1): alias one EPC page into two enclaves — remap the
 * EPT of enclave `victim_b` so its first ELRANGE page lands on the EPC
 * page backing `victim_a`'s first ELRANGE page.
 *
 * @return true if the corruption was applied.
 */
bool injectEpcAlias(FlatState &s, i64 victim_a, i64 victim_b);

/**
 * Fig. 5 case (2): remap an ELRANGE VA of an enclave out of the EPC
 * into untrusted normal memory at `normal_page`.
 */
bool injectElrangeEscape(FlatState &s, i64 enclave, u64 va,
                         u64 normal_page);

/**
 * A covert mapping: map an extra EPC page into an enclave's tables
 * without recording it in the EPCM (violates the EPCM invariant).
 */
bool injectCovertMapping(FlatState &s, i64 enclave, u64 va);

/**
 * A huge mapping in an enclave page table (violates the no-huge-pages
 * enclave invariant).
 */
bool injectHugeMapping(FlatState &s, i64 enclave, u64 va);

} // namespace hev::sec

#endif // HEV_SEC_ATTACKS_HH
