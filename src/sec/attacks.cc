#include "sec/attacks.hh"

#include "ccal/specs.hh"

namespace hev::sec
{

using namespace ccal;
using namespace ccal::spec;

namespace
{

/** The EPC page backing an enclave's VA, or ~0. */
u64
backingOf(const FlatState &s, i64 enclave, u64 va)
{
    auto it = s.enclaves.find(enclave);
    if (it == s.enclaves.end())
        return ~0ull;
    const QueryResult q = specMemTranslate(
        s, it->second.gptHandle, it->second.eptHandle, va, false);
    return q.isSome ? q.physAddr : ~0ull;
}

/** The stage-1 (GPA) translation of an enclave VA, or ~0. */
u64
gpaOf(const FlatState &s, i64 enclave, u64 va)
{
    auto it = s.enclaves.find(enclave);
    if (it == s.enclaves.end())
        return ~0ull;
    const QueryResult q = specAsQuery(s, it->second.gptHandle, va);
    return q.isSome ? q.physAddr : ~0ull;
}

/** Redirect enclave's EPT so `va` lands on `new_hpa`. */
bool
redirectEpt(FlatState &s, i64 enclave, u64 va, u64 new_hpa)
{
    auto it = s.enclaves.find(enclave);
    if (it == s.enclaves.end())
        return false;
    const u64 gpa = gpaOf(s, enclave, va);
    if (gpa == ~0ull)
        return false;
    if (specAsUnmap(s, it->second.eptHandle, gpa) != 0)
        return false;
    return specAsMap(s, it->second.eptHandle, gpa, new_hpa,
                     pteRwFlags) == 0;
}

} // namespace

bool
injectEpcAlias(FlatState &s, i64 victim_a, i64 victim_b)
{
    auto a = s.enclaves.find(victim_a);
    auto b = s.enclaves.find(victim_b);
    if (a == s.enclaves.end() || b == s.enclaves.end())
        return false;
    const u64 shared = backingOf(s, victim_a, a->second.elStart);
    if (shared == ~0ull)
        return false;
    return redirectEpt(s, victim_b, b->second.elStart, shared);
}

bool
injectElrangeEscape(FlatState &s, i64 enclave, u64 va, u64 normal_page)
{
    return redirectEpt(s, enclave, va, normal_page);
}

bool
injectCovertMapping(FlatState &s, i64 enclave, u64 va)
{
    auto it = s.enclaves.find(enclave);
    if (it == s.enclaves.end())
        return false;
    // Pick a free EPC page but do NOT record it in the EPCM.
    u64 page = ~0ull;
    for (u64 i = 0; i < s.geo.epcCount; ++i) {
        if (s.epcm[i].state == epcStateFree) {
            page = s.geo.epcBase + i * pageSize;
            break;
        }
    }
    if (page == ~0ull)
        return false;
    const u64 gpa =
        s.geo.epcGpaBase + (it->second.addedPages + 7) * pageSize;
    if (specAsMap(s, it->second.gptHandle, va, gpa, pteRwFlags) != 0)
        return false;
    return specAsMap(s, it->second.eptHandle, gpa, page, pteRwFlags) ==
           0;
}

bool
injectHugeMapping(FlatState &s, i64 enclave, u64 va)
{
    auto it = s.enclaves.find(enclave);
    if (it == s.enclaves.end())
        return false;
    const u64 root = s.rootOf(it->second.gptHandle);
    if (root == 0)
        return false;
    // Plant a 2 MiB entry at level 2 along va's path.
    const IntResult l3 = specNextTable(s, root, specVaIndex(va, 4), true);
    if (!l3.isOk)
        return false;
    const IntResult l2 =
        specNextTable(s, l3.value, specVaIndex(va, 3), true);
    if (!l2.isOk)
        return false;
    specEntryWrite(s, l2.value, specVaIndex(va, 2),
                   specPteMake(s.geo.epcBase,
                               pteRwFlags | pteFlagHuge));
    return true;
}

} // namespace hev::sec
