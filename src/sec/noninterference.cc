#include "sec/noninterference.hh"

namespace hev::sec
{

std::optional<NiViolation>
checkIntegrityStep(const SecState &s, Principal p, const Action &action,
                   u64 oracle_seed)
{
    const View before = observe(s, p);
    SecState next = s;
    DataOracle oracle(oracle_seed);
    (void)SecMachine::step(next, action, oracle);
    const View after = observe(next, p);
    if (before == after)
        return std::nullopt;
    return NiViolation{
        "Lemma 5.2 (integrity)",
        "another principal's step changed V(p): " +
            diffViews(before, after)};
}

std::optional<NiViolation>
checkStepPair(SecState s1, SecState s2, Principal p, const Action &action,
              u64 oracle_seed)
{
    if (!indistinguishable(s1, s2, p)) {
        return NiViolation{"precondition",
                           "starting states already distinguishable: " +
                               diffViews(observe(s1, p), observe(s2, p))};
    }
    const bool p_active = s1.active == p;
    DataOracle oracle1(oracle_seed);
    DataOracle oracle2(oracle_seed);
    const StepResult r1 = SecMachine::step(s1, action, oracle1);
    const StepResult r2 = SecMachine::step(s2, action, oracle2);

    if (p_active && !(r1 == r2)) {
        return NiViolation{
            "Lemma 5.3 (confidentiality)",
            "p's own step produced different observable results"};
    }
    if (!indistinguishable(s1, s2, p)) {
        return NiViolation{
            p_active ? "Lemma 5.3 (confidentiality)"
                     : "Lemma 5.4 (inactive step)",
            "states became distinguishable: " +
                diffViews(observe(s1, p), observe(s2, p))};
    }
    return std::nullopt;
}

std::optional<NiViolation>
checkTrace(SecState s1, SecState s2, Principal p,
           const std::vector<Action> &trace, u64 oracle_seed)
{
    if (!indistinguishable(s1, s2, p)) {
        return NiViolation{"precondition",
                           "starting states already distinguishable"};
    }
    DataOracle oracle1(oracle_seed);
    DataOracle oracle2(oracle_seed);
    for (size_t step = 0; step < trace.size(); ++step) {
        const bool p_active = s1.active == p;
        const StepResult r1 = SecMachine::step(s1, trace[step], oracle1);
        const StepResult r2 = SecMachine::step(s2, trace[step], oracle2);
        if (p_active && !(r1 == r2)) {
            return NiViolation{
                "Theorem 5.1",
                "observable results diverged at step " +
                    std::to_string(step)};
        }
        if (!indistinguishable(s1, s2, p)) {
            return NiViolation{
                "Theorem 5.1",
                "states distinguishable after step " +
                    std::to_string(step) + " (" +
                    diffViews(observe(s1, p), observe(s2, p)) + ")"};
        }
    }
    return std::nullopt;
}

Action
randomAction(const SecState &s, Rng &rng)
{
    Action action;
    const bool is_os = s.active == osPrincipal;

    // Gather live enclaves for targeting.
    std::vector<i64> live;
    for (const auto &[id, enclave] : s.mon.enclaves) {
        if (enclave.state != ccal::enclStateDead)
            live.push_back(id);
    }

    auto random_va = [&]() -> u64 {
        if (!is_os && !live.empty()) {
            // Bias enclave accesses toward its own ranges.
            auto it = s.mon.enclaves.find(s.active);
            if (it != s.mon.enclaves.end() && rng.chance(3, 4)) {
                const auto &enclave = it->second;
                if (rng.chance(1, 3)) {
                    return enclave.mbufGva +
                           rng.below(enclave.mbufPages * pageSize / 8) *
                               8;
                }
                const u64 span =
                    (enclave.elEnd - enclave.elStart) / 8;
                return enclave.elStart + rng.below(span ? span : 1) * 8;
            }
        }
        return rng.below(1024) * 8 * rng.between(1, 64);
    };

    const u64 pick = rng.below(is_os ? 13 : 4);
    switch (pick) {
      case 0:
        action.kind = Action::Kind::Load;
        action.va = random_va();
        action.reg = int(rng.below(4));
        break;
      case 1:
        action.kind = Action::Kind::Store;
        action.va = random_va();
        action.reg = int(rng.below(4));
        break;
      case 2:
      case 3:
        action.kind = is_os || rng.chance(3, 4) ? Action::Kind::Compute
                                                : Action::Kind::Exit;
        action.reg = int(rng.below(4));
        break;
      case 4:
        action.kind = Action::Kind::OsMap;
        action.va = rng.below(256) * pageSize;
        action.a = rng.below(256) * pageSize;
        break;
      case 5:
        action.kind = Action::Kind::OsUnmap;
        action.va = rng.below(256) * pageSize;
        break;
      case 6: {
        action.kind = Action::Kind::HcInit;
        const u64 base = rng.below(8) * 0x10'0000;
        action.a = base;
        action.b = base + rng.below(6) * pageSize;
        action.c = base + (64 + rng.below(8)) * pageSize;
        action.d = rng.below(3);
        action.e = rng.below(48) * pageSize;
        break;
      }
      case 7:
        action.kind = Action::Kind::HcAddPage;
        action.enclave =
            live.empty() ? i64(rng.below(4)) : rng.pick(live);
        action.va = rng.below(512) * pageSize;
        action.a = rng.below(48) * pageSize;
        action.b = rng.chance(1, 4) ? u64(ccal::epcStateTcs)
                                    : u64(ccal::epcStateReg);
        break;
      case 8:
        action.kind = Action::Kind::HcFinish;
        action.enclave =
            live.empty() ? i64(rng.below(4)) : rng.pick(live);
        break;
      case 9:
        // Tear down mid-trace-created enclaves occasionally, but never
        // the low-id setup enclaves the NI observer may be one of.
        action.kind = Action::Kind::HcRemove;
        action.enclave = live.empty() || live.back() <= 2
                             ? i64(100 + rng.below(4))
                             : live.back();
        break;
      case 11: {
        // Evict a page of some live enclave; unmapped VAs and bad ids
        // just produce typed failures, identical on both runs.
        action.kind = Action::Kind::Evict;
        action.enclave =
            live.empty() ? i64(rng.below(4)) : rng.pick(live);
        auto it = s.mon.enclaves.find(action.enclave);
        if (it != s.mon.enclaves.end()) {
            const u64 span =
                (it->second.elEnd - it->second.elStart) / pageSize;
            action.va = it->second.elStart +
                        rng.below(span ? span : 1) * pageSize;
        } else {
            action.va = rng.below(512) * pageSize;
        }
        break;
      }
      case 12:
        // Present one of the blobs in OS custody for reload — possibly
        // a stale version (rollback) or one sealed for a different
        // enclave (replay); both get the same typed rejection on the
        // two lockstep runs.
        action.kind = Action::Kind::Reload;
        action.enclave =
            live.empty() ? i64(rng.below(4)) : rng.pick(live);
        action.a = rng.next();
        break;
      default:
        action.kind = Action::Kind::Enter;
        action.enclave =
            live.empty() ? i64(rng.below(4)) : rng.pick(live);
        break;
    }
    return action;
}

} // namespace hev::sec
