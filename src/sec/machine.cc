#include "sec/machine.hh"

#include "sec/invariants.hh"

namespace hev::sec
{

using namespace ccal;
using namespace ccal::spec;

u64
SecMachine::translate(const SecState &s, Principal p, u64 va,
                      bool is_write)
{
    if (va % sizeof(u64) != 0)
        return ~0ull;
    if (p == osPrincipal) {
        auto it = s.osPageTable.find(va & ~(pageSize - 1));
        if (it == s.osPageTable.end())
            return ~0ull;
        const u64 gpa = it->second + (va & (pageSize - 1));
        // The normal VM's EPT: identity over normal memory only.  Any
        // guest-physical address at or above the normal limit — the
        // monitor's frame area, the EPC — faults (spatial isolation).
        if (gpa + sizeof(u64) > s.mon.geo.normalLimit)
            return ~0ull;
        return gpa;
    }
    auto it = s.mon.enclaves.find(p);
    if (it == s.mon.enclaves.end() ||
        it->second.state == enclStateDead)
        return ~0ull;
    const QueryResult q =
        specMemTranslate(s.mon, it->second.gptHandle,
                         it->second.eptHandle, va, is_write);
    if (!q.isSome)
        return ~0ull;
    return q.physAddr;
}

bool
SecMachine::inAnyMbufBacking(const SecState &s, u64 hpa)
{
    for (const auto &[id, enclave] : s.mon.enclaves) {
        if (enclave.state == enclStateDead)
            continue;
        const u64 end =
            enclave.mbufBacking + enclave.mbufPages * pageSize;
        if (enclave.mbufBacking <= hpa && hpa < end)
            return true;
    }
    return false;
}

StepResult
SecMachine::step(SecState &s, const Action &action, DataOracle &oracle)
{
    StepResult result;
    const bool is_os = s.active == osPrincipal;

    switch (action.kind) {
      case Action::Kind::Load: {
        const u64 hpa = translate(s, s.active, action.va, false);
        if (hpa == ~0ull) {
            result.faulted = true;
            break;
        }
        u64 value;
        if (inAnyMbufBacking(s, hpa)) {
            // Declassified: reads come from the oracle (Sec. 5.4).
            value = oracle.next();
        } else {
            auto it = s.mem.find(hpa);
            value = it == s.mem.end() ? 0 : it->second;
        }
        s.cpu.regs[action.reg & 3] = value;
        result.value = value;
        break;
      }
      case Action::Kind::Store: {
        const u64 hpa = translate(s, s.active, action.va, true);
        if (hpa == ~0ull) {
            result.faulted = true;
            break;
        }
        if (!inAnyMbufBacking(s, hpa)) {
            // Marshalling-buffer stores are in effect ignored.
            s.mem[hpa] = s.cpu.regs[action.reg & 3];
        }
        break;
      }
      case Action::Kind::Compute: {
        // Arbitrary local computation: fold own registers with a
        // nondeterministic input drawn from the oracle.
        const u64 nondet = oracle.next();
        const u64 folded = s.cpu.regs[0] * 31 + s.cpu.regs[1] + nondet;
        s.cpu.regs[action.reg & 3] = folded;
        s.cpu.pc += 1;
        break;
      }
      case Action::Kind::OsMap: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        s.osPageTable[action.va & ~(pageSize - 1)] =
            action.a & ~(pageSize - 1);
        break;
      }
      case Action::Kind::OsUnmap: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        result.faulted =
            s.osPageTable.erase(action.va & ~(pageSize - 1)) == 0;
        break;
      }
      case Action::Kind::HcInit: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        const IntResult r = specHcInit(s.mon, action.a, action.b,
                                       action.c, action.d, action.e);
        result.faulted = !r.isOk;
        result.code = r.isOk ? i64(r.value) : r.errCode;
        break;
      }
      case Action::Kind::HcAddPage: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        const i64 rc = specHcAddPage(s.mon, action.enclave, action.va,
                                     action.a, i64(action.b));
        result.faulted = rc != 0;
        result.code = rc;
        if (rc == 0) {
            // Replicate the content copy the monitor performs: the
            // freshly added page's words become the source's words.
            const auto &enclave = s.mon.enclaves.at(action.enclave);
            const QueryResult q =
                specMemTranslate(s.mon, enclave.gptHandle,
                                 enclave.eptHandle, action.va, false);
            if (q.isSome) {
                for (u64 off = 0; off < pageSize; off += sizeof(u64)) {
                    auto it = s.mem.find(action.a + off);
                    const u64 word =
                        it == s.mem.end() ? 0 : it->second;
                    s.mem[q.physAddr + off] = word;
                }
            }
        }
        break;
      }
      case Action::Kind::HcFinish: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        const i64 rc = specHcInitFinish(s.mon, action.enclave);
        result.faulted = rc != 0;
        result.code = rc;
        break;
      }
      case Action::Kind::HcRemove: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        // Collect the EPC pages about to be freed so their *data*
        // contents can be scrubbed along with the metadata.
        std::vector<u64> owned;
        auto it = s.mon.enclaves.find(action.enclave);
        if (it != s.mon.enclaves.end() &&
            it->second.state != enclStateDead) {
            for (u64 index = 0; index < s.mon.geo.epcCount; ++index) {
                if (s.mon.epcm[index].state != epcStateFree &&
                    s.mon.epcm[index].owner == action.enclave) {
                    owned.push_back(s.mon.geo.epcBase +
                                    index * pageSize);
                }
            }
        }
        const i64 rc = specHcRemove(s.mon, action.enclave);
        result.faulted = rc != 0;
        result.code = rc;
        if (rc == 0) {
            for (const u64 page : owned) {
                for (u64 off = 0; off < pageSize; off += sizeof(u64))
                    s.mem.erase(page + off);
            }
        }
        break;
      }
      case Action::Kind::Enter: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        auto it = s.mon.enclaves.find(action.enclave);
        if (it == s.mon.enclaves.end() ||
            it->second.state != enclStateInitialized) {
            result.faulted = true;
            break;
        }
        s.saved[osPrincipal] = s.cpu;
        if (s.everEntered[action.enclave]) {
            s.cpu = s.saved[action.enclave];
        } else {
            // First entry: scrubbed registers, entry point pc.
            s.cpu = AbsContext{};
            s.cpu.pc = it->second.elStart;
            s.everEntered[action.enclave] = true;
        }
        s.active = action.enclave;
        break;
      }
      case Action::Kind::Exit: {
        if (is_os) {
            result.faulted = true;
            break;
        }
        s.saved[s.active] = s.cpu;
        s.cpu = s.saved[osPrincipal];
        s.active = osPrincipal;
        break;
      }
      case Action::Kind::Evict: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        // Resolve the page before the spec unmaps it: the plaintext
        // must move from data memory into the sealed record, and the
        // EPC frame is scrubbed (its words vanish from s.mem).
        u64 hpa = ~0ull;
        auto it = s.mon.enclaves.find(action.enclave);
        if (it != s.mon.enclaves.end() &&
            it->second.state != enclStateDead) {
            const QueryResult q =
                specMemTranslate(s.mon, it->second.gptHandle,
                                 it->second.eptHandle, action.va, false);
            if (q.isSome)
                hpa = q.physAddr;
        }
        const IntResult r =
            specHcEvictPage(s.mon, action.enclave, action.va);
        result.faulted = !r.isOk;
        result.code = r.isOk ? i64(r.value) : r.errCode;
        if (r.isOk) {
            SealRecord rec;
            rec.owner = action.enclave;
            rec.gva = action.va;
            rec.version = r.value;
            // The sealed image the OS takes custody of is declassified
            // by construction: it comes from the oracle stream, so two
            // lockstep runs agree on it regardless of the plaintext.
            rec.ciphertext = oracle.next();
            if (hpa != ~0ull) {
                for (u64 off = 0; off < pageSize; off += sizeof(u64)) {
                    auto word = s.mem.find(hpa + off);
                    if (word != s.mem.end()) {
                        rec.plain[off] = word->second;
                        s.mem.erase(word);
                    }
                }
            }
            s.seals.push_back(rec);
            result.value = rec.ciphertext;
        }
        break;
      }
      case Action::Kind::Snapshot: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        const bool move = (action.a & 1) != 0;
        // Resolve every resident page before the spec runs: a move
        // snapshot unmaps them all, and the plaintext must travel from
        // data memory into the image record, exactly as Evict does for
        // one page.  Owned EPC frames are collected for the scrub.
        std::map<u64, u64> resident; // gva page -> hpa page
        std::vector<u64> owned;
        auto it = s.mon.enclaves.find(action.enclave);
        if (it != s.mon.enclaves.end() &&
            it->second.state != enclStateDead) {
            const AbsEnclave &enclave = it->second;
            const u64 gpt_root = s.mon.rootOf(enclave.gptHandle);
            if (gpt_root != 0) {
                (void)forEachFlatMapping(
                    s.mon, gpt_root,
                    [&](u64 va, u64 gpa, u64, int) {
                        const QueryResult stage2 =
                            specAsQuery(s.mon, enclave.eptHandle, gpa);
                        if (stage2.isSome)
                            resident[va & ~(pageSize - 1)] =
                                stage2.physAddr & ~(pageSize - 1);
                    });
            }
            for (u64 index = 0; index < s.mon.geo.epcCount; ++index) {
                if (s.mon.epcm[index].state != epcStateFree &&
                    s.mon.epcm[index].owner == action.enclave) {
                    owned.push_back(s.mon.geo.epcBase +
                                    index * pageSize);
                }
            }
        }
        // The measurement is an opaque ledger token the monitor
        // computes over *already-measured* build-time content; two
        // lockstep runs agree on it by construction, so it is drawn
        // from the oracle (declassified), like the seal ciphertexts.
        const u64 measurement = oracle.next();
        AbsImage abs;
        const i64 rc = specHcSnapshot(s.mon, action.enclave, move,
                                      measurement, &abs);
        result.faulted = rc != 0;
        result.code = rc;
        if (rc == 0) {
            ImageRecord rec;
            rec.source = action.enclave;
            rec.measurement = measurement;
            rec.versionBase = abs.versionBase;
            rec.moved = move;
            for (const AbsImagePage &page : abs.pages) {
                SealRecord entry;
                entry.owner = action.enclave;
                entry.gva = page.gva;
                entry.version = page.sealed.version;
                entry.ciphertext = oracle.next();
                auto hpa = resident.find(page.gva & ~(pageSize - 1));
                if (hpa != resident.end()) {
                    for (u64 off = 0; off < pageSize;
                         off += sizeof(u64)) {
                        auto word = s.mem.find(hpa->second + off);
                        if (word != s.mem.end())
                            entry.plain[off] = word->second;
                    }
                }
                rec.pages.push_back(std::move(entry));
            }
            s.images.push_back(std::move(rec));
            if (move) {
                // The source is retired: its EPC frames are scrubbed,
                // data words and all, just as HcRemove scrubs them.
                for (const u64 page : owned) {
                    for (u64 off = 0; off < pageSize;
                         off += sizeof(u64))
                        s.mem.erase(page + off);
                }
            }
            result.value = measurement;
        }
        break;
      }
      case Action::Kind::Reload: {
        if (!is_os) {
            result.faulted = true;
            break;
        }
        if (s.seals.empty()) {
            result.faulted = true;
            break;
        }
        // The OS presents one of the blobs it holds — possibly a stale
        // version or one sealed for a different enclave; the spec's
        // typed verdicts sort those out.
        const SealRecord &rec = s.seals[action.a % s.seals.size()];
        const i64 rc = specHcReloadPage(s.mon, action.enclave, rec.owner,
                                        rec.gva, rec.version);
        result.faulted = rc != 0;
        result.code = rc;
        if (rc == 0) {
            const auto &enclave = s.mon.enclaves.at(action.enclave);
            const QueryResult q =
                specMemTranslate(s.mon, enclave.gptHandle,
                                 enclave.eptHandle, rec.gva, false);
            if (q.isSome) {
                for (const auto &[off, word] : rec.plain)
                    s.mem[q.physAddr + off] = word;
            }
        }
        break;
      }
    }
    return result;
}

i64
SecMachine::setupEnclave(SecState &s, DataOracle &oracle, u64 el_base,
                         u64 pages, u64 mbuf_pages, u64 backing,
                         u64 src_base)
{
    Action init;
    init.kind = Action::Kind::HcInit;
    init.a = el_base;
    init.b = el_base + (pages + 1) * pageSize;
    init.c = el_base + 64 * pageSize; // mbuf VA, disjoint from ELRANGE
    init.d = mbuf_pages;
    init.e = backing;
    const StepResult created = step(s, init, oracle);
    if (created.faulted)
        return -created.code;
    const i64 id = created.code;

    for (u64 i = 0; i <= pages; ++i) {
        Action add;
        add.kind = Action::Kind::HcAddPage;
        add.enclave = id;
        add.va = el_base + i * pageSize;
        add.a = src_base + i * pageSize;
        add.b = u64(i == pages ? epcStateTcs : epcStateReg);
        if (step(s, add, oracle).faulted)
            return -1;
    }
    Action fin;
    fin.kind = Action::Kind::HcFinish;
    fin.enclave = id;
    if (step(s, fin, oracle).faulted)
        return -1;
    return id;
}

} // namespace hev::sec
