#!/usr/bin/env bash
# Sanitizer smoke for the snapshot/restore + live-migration subsystem:
# build with ASan+UBSan and run every migrate-labeled test — the
# snapshot/restore unit tests, dirty-tracking, the spec lockstep and
# quiesced-fold equivalence suites, the migration campaign, the SMP
# migration storms, and the image secrecy oracle — then the migrate
# bench once as a correctness pass (its 2x downtime gate and internal
# FAILURE checks run under the sanitizers; the timing figures are
# ignored).  Fails (non-zero) on any test failure, sanitizer report,
# or build error — the sanitizer builds use -fno-sanitize-recover, so
# a UBSan finding aborts the run instead of printing a warning and
# passing.  Intended as a CI job: ./tools/migrate_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-migrate-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

echo "== configuring ${BUILD_DIR} with HEV_SANITIZE=address,undefined"
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}" \
    -DHEV_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== building the test suite"
cmake --build "${BUILD_DIR}" -j > /dev/null

# halt_on_error makes any sanitizer report fatal -> non-zero exit.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

echo "== running migrate-labeled tests under ASan+UBSan"
ctest --test-dir "${BUILD_DIR}" -L migrate --output-on-failure \
    -E '^bench_'

echo "== running bench_migrate once under ASan+UBSan (gates only)"
(cd "${BUILD_DIR}/bench" && ./bench_migrate > /dev/null)

echo "== migrate smoke passed (no failure, no sanitizer report)"
