#!/usr/bin/env python3
"""Compare current BENCH_*.json reports against checked-in baselines.

The perf-regression gate: bench/baselines/ holds one reference
BENCH_<name>.json per gated bench; after the bench fixtures export
fresh reports, this script re-reads both sides and flags any metric
that left its tolerance band.  Exits 0 when every gated metric is in
band, 1 on the first report whose metrics are not.

Comparison rules, per metric (top-level keys beyond the provenance
header, plus real_time/cpu_time of every google-benchmark entry,
matched by benchmark name):
  - time-like metrics (name ends in _ns/_us/_ms/_seconds, contains
    per_second, or is real_time/cpu_time) must satisfy
    baseline/ratio <= current <= baseline*ratio, where ratio is the
    per-metric override or the default (CI machines vary widely, so
    the default band is deliberately generous);
  - all other metrics are workload shape (page counts, vCPU counts,
    deterministic op totals) and must match the baseline exactly;
  - a metric present in the baseline but missing from the current
    report is a failure; new metrics in the current report are fine
    (they become gated when the baseline is refreshed).

Tolerances file (--tolerances, JSON):
    {"default_ratio": 4.0,
     "metrics": {"obs/BM_TraceEventEnabled.real_time": {"ratio": 8.0},
                 "paging/round_trips": {"ratio": 1.5}}}
A "ratio" override on a non-time metric turns its exact check into a
band check (for counts that legitimately wobble).

--self-test additionally perturbs one time-like metric of every
baseline by 100x in memory and asserts the comparison catches it —
the negative test proving the gate can fail.  (The ctest wiring runs
the script twice: once as the gate, once with --self-test.)

Usage: bench_compare.py --baseline-dir DIR --current-dir DIR
                        [--tolerances FILE] [--self-test]
"""

import json
import pathlib
import sys

HEADER_KEYS = {
    "bench",
    "schema_version",
    "git_sha",
    "build_type",
    "build_flags",
    "hardware_threads",
    "trace_compiled_in",
}
DEFAULT_RATIO = 4.0
TIME_SUFFIXES = ("_ns", "_us", "_ms", "_seconds")


def fail(message):
    print(f"bench_compare: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {path}: {error}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    return doc


def is_time_metric(name):
    leaf = name.rsplit(".", 1)[-1]
    return (leaf.endswith(TIME_SUFFIXES) or "per_second" in leaf
            or leaf in ("real_time", "cpu_time"))


def metrics_of(doc, where):
    """Flatten a report into {metric path: numeric value}."""
    out = {}
    for key, value in doc.items():
        if key in HEADER_KEYS:
            continue
        if key == "benchmarks":
            if not isinstance(value, list):
                fail(f"{where}: 'benchmarks' is not a list")
            for entry in value:
                name = entry.get("name")
                if not isinstance(name, str) or not name:
                    fail(f"{where}: benchmark entry without a name")
                for field in ("real_time", "cpu_time"):
                    if isinstance(entry.get(field), (int, float)):
                        out[f"{name}.{field}"] = entry[field]
        elif isinstance(value, (int, float)) and not isinstance(value,
                                                                bool):
            out[key] = value
    return out


def compare(bench, base, cur, tolerances):
    """Violation strings for one report pair (empty = in band)."""
    default_ratio = tolerances.get("default_ratio", DEFAULT_RATIO)
    overrides = tolerances.get("metrics", {})
    violations = []
    for name, base_value in sorted(base.items()):
        if name not in cur:
            violations.append(f"{bench}/{name}: missing from the "
                              f"current report (baseline "
                              f"{base_value})")
            continue
        cur_value = cur[name]
        override = overrides.get(f"{bench}/{name}", {})
        ratio = override.get("ratio")
        if ratio is None and is_time_metric(name):
            ratio = default_ratio
        if ratio is not None:
            low, high = base_value / ratio, base_value * ratio
            if not (low <= cur_value <= high):
                violations.append(
                    f"{bench}/{name}: {cur_value} outside "
                    f"[{low:.6g}, {high:.6g}] "
                    f"(baseline {base_value}, ratio {ratio}x)")
        elif cur_value != base_value:
            violations.append(
                f"{bench}/{name}: {cur_value} != baseline "
                f"{base_value} (exact metric; add a ratio override "
                f"if it may wobble)")
    return violations


def self_test(bench, base, tolerances):
    """Perturb one time metric 100x; the gate must catch it."""
    for name, value in sorted(base.items()):
        if is_time_metric(name) and value > 0:
            perturbed = dict(base)
            perturbed[name] = value * 100.0
            if not compare(bench, base, perturbed, tolerances):
                fail(f"self-test: {bench}/{name} perturbed 100x was "
                     f"not flagged — the gate cannot fail")
            print(f"bench_compare: self-test OK: {bench}/{name} "
                  f"perturbation flagged")
            return
    fail(f"self-test: {bench} has no positive time-like metric to "
         f"perturb")


def main(argv):
    baseline_dir = current_dir = tolerances_path = None
    run_self_test = False
    it = iter(argv[1:])
    for arg in it:
        if arg == "--baseline-dir":
            baseline_dir = pathlib.Path(next(it, ""))
        elif arg == "--current-dir":
            current_dir = pathlib.Path(next(it, ""))
        elif arg == "--tolerances":
            tolerances_path = pathlib.Path(next(it, ""))
        elif arg == "--self-test":
            run_self_test = True
        else:
            fail(f"unknown option {arg!r}")
    if not baseline_dir or not current_dir:
        fail("usage: bench_compare.py --baseline-dir DIR "
             "--current-dir DIR [--tolerances FILE] [--self-test]")

    tolerances = {}
    if tolerances_path:
        tolerances = load(tolerances_path)

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        fail(f"{baseline_dir}: no BENCH_*.json baselines found")

    all_violations = []
    compared = 0
    for baseline_path in baselines:
        bench = load(baseline_path).get("bench")
        if not isinstance(bench, str) or not bench:
            fail(f"{baseline_path}: missing 'bench' name")
        current_path = current_dir / baseline_path.name
        if not current_path.is_file():
            fail(f"{current_path}: gated report was not produced "
                 f"(baseline {baseline_path})")
        base = metrics_of(load(baseline_path), baseline_path)
        cur = metrics_of(load(current_path), current_path)
        if run_self_test:
            self_test(bench, base, tolerances)
            continue
        violations = compare(bench, base, cur, tolerances)
        compared += len(base)
        if violations:
            all_violations.extend(violations)
        else:
            print(f"bench_compare: OK: {current_path.name} "
                  f"({len(base)} metric(s) in band)")

    if run_self_test:
        print(f"bench_compare: self-test passed for "
              f"{len(baselines)} baseline(s)")
        return
    if all_violations:
        for violation in all_violations:
            print(f"bench_compare: REGRESSION: {violation}",
                  file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: {len(baselines)} report(s), {compared} "
          f"metric(s) within tolerance")


if __name__ == "__main__":
    main(sys.argv)
