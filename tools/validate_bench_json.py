#!/usr/bin/env python3
"""Validate BENCH_*.json reports written by the bench harnesses.

Every report must carry the fixed provenance header stamped by
bench::JsonReport plus at least one bench-specific metric.  Checks,
exiting 0 on success and 1 on the first violation:
  - the file parses as a JSON object;
  - "bench" matches the BENCH_<name>.json filename;
  - "schema_version" equals the known schema version (1);
  - "git_sha" is a non-empty hex string ("unknown" only accepted with
    --allow-unknown-sha, for builds outside a git checkout);
  - "build_type" is a non-empty string and "hardware_threads" a
    positive integer;
  - a "benchmarks" section, when present (google-benchmark binaries),
    is a list of objects each carrying name/real_time/cpu_time/unit/
    iterations with sane types;
  - at least one metric beyond the provenance header is present.

Usage: validate_bench_json.py [--allow-unknown-sha] PATH...
Each PATH is a BENCH_*.json file or a directory to scan for them; a
directory containing none is a failure (the bench did not run).
"""

import json
import pathlib
import sys

SCHEMA_VERSION = 1
HEADER_KEYS = {
    "bench",
    "schema_version",
    "git_sha",
    "build_type",
    "build_flags",
    "hardware_threads",
    "trace_compiled_in",
}
BENCHMARK_ENTRY_KEYS = {"name", "real_time", "cpu_time", "unit",
                        "iterations"}


def fail(message):
    print(f"validate_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path, allow_unknown_sha):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {path}: {error}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    for key in HEADER_KEYS:
        if key not in doc:
            fail(f"{path}: missing provenance key {key!r}")

    expected = f"BENCH_{doc['bench']}.json"
    if path.name != expected:
        fail(f"{path}: bench {doc['bench']!r} implies filename "
             f"{expected!r}")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail(f"{path}: schema_version {doc['schema_version']!r}, "
             f"expected {SCHEMA_VERSION}")

    sha = doc["git_sha"]
    if not isinstance(sha, str) or not sha:
        fail(f"{path}: git_sha must be a non-empty string")
    if sha == "unknown":
        if not allow_unknown_sha:
            fail(f"{path}: git_sha is 'unknown' (built outside git?)")
    elif not all(c in "0123456789abcdef" for c in sha):
        fail(f"{path}: git_sha {sha!r} is not a hex revision")

    if not isinstance(doc["build_type"], str) or not doc["build_type"]:
        fail(f"{path}: build_type must be a non-empty string")
    threads = doc["hardware_threads"]
    if not isinstance(threads, int) or threads <= 0:
        fail(f"{path}: hardware_threads must be a positive integer")

    if "benchmarks" in doc:
        runs = doc["benchmarks"]
        if not isinstance(runs, list):
            fail(f"{path}: 'benchmarks' is not a list")
        for i, run in enumerate(runs):
            if not isinstance(run, dict):
                fail(f"{path}: benchmarks[{i}] is not an object")
            missing = BENCHMARK_ENTRY_KEYS - run.keys()
            if missing:
                fail(f"{path}: benchmarks[{i}] missing {sorted(missing)}")
            if not isinstance(run["name"], str) or not run["name"]:
                fail(f"{path}: benchmarks[{i}] has an empty name")
            for key in ("real_time", "cpu_time"):
                if not isinstance(run[key], (int, float)):
                    fail(f"{path}: benchmarks[{i}].{key} is not numeric")

    metrics = set(doc) - HEADER_KEYS
    if not metrics:
        fail(f"{path}: no metrics beyond the provenance header")
    print(f"validate_bench_json: OK: {path} "
          f"(git {sha}, {len(metrics)} metric(s))")


def main(argv):
    allow_unknown_sha = False
    paths = []
    for arg in argv[1:]:
        if arg == "--allow-unknown-sha":
            allow_unknown_sha = True
        elif arg.startswith("-"):
            fail(f"unknown option {arg!r}")
        else:
            paths.append(pathlib.Path(arg))
    if not paths:
        fail("usage: validate_bench_json.py [--allow-unknown-sha] "
             "PATH...")

    reports = []
    for path in paths:
        if path.is_dir():
            found = sorted(path.glob("BENCH_*.json"))
            if not found:
                fail(f"{path}: no BENCH_*.json report found")
            reports.extend(found)
        else:
            reports.append(path)
    for report in reports:
        validate(report, allow_unknown_sha)
    print(f"validate_bench_json: {len(reports)} report(s) valid")


if __name__ == "__main__":
    main(sys.argv)
