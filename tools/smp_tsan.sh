#!/usr/bin/env bash
# ThreadSanitizer smoke for the SMP subsystem: build the test suite
# with TSan and run every smp-, campaign-, paging-, batch- and
# migrate-labeled test.
# The threaded tests (tests/smp/test_smp_threads.cc) drive real
# std::threads through the hypercall, shootdown, frame-cache and
# evict/reload paging paths, so a data race in the locking protocol
# fails this job.  Intended as a CI job: ./tools/smp_tsan.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-smp-tsan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

echo "== configuring ${BUILD_DIR} with HEV_SANITIZE=thread"
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}" \
    -DHEV_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== building the test suite"
cmake --build "${BUILD_DIR}" -j > /dev/null

echo "== running smp + campaign + paging + batch + migrate tests under TSan"
# halt_on_error makes any race report fatal -> non-zero exit.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "${BUILD_DIR}" -L 'smp|campaign|paging|batch|migrate' \
    --output-on-failure

echo "== smp tsan smoke passed (no race, no failure)"
