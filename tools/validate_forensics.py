#!/usr/bin/env python3
"""Validate forensics bundles written by the obs flight recorder.

A bundle is the self-contained JSON dump emitted when an invariant,
oracle, or refinement check fails (see docs/OBSERVABILITY.md).  Checks,
exiting 0 on success and 1 on the first violation:
  - the file parses as a JSON object with every schema key present
    (forensics_schema_version, git_sha, kind, scenario, detail,
    failed_op, digests, flight, stats, trace_tail);
  - "forensics_schema_version" equals the known version (1);
  - "git_sha" is a non-empty hex string ("unknown" only accepted with
    --allow-unknown-sha, for builds outside a git checkout);
  - "kind" and "detail" are non-empty strings;
  - "digests" maps names to integers;
  - every "flight" record carries ts/op/opcode/vcpu/step/args/
    args_digest/result/replayable with sane types, timestamps are
    non-decreasing (the tail is merged in timestamp order), and args
    is exactly four integers;
  - "stats" has the snapshot shape (counters/gauges/histograms);
  - a non-empty "trace_tail" starts with the `hev-trace v1` magic and
    its op count matches the replayable flight records.

Usage: validate_forensics.py [--allow-unknown-sha] PATH...
Each PATH is a bundle file or a directory to scan for *.forensics.json;
a directory containing none is a failure (the dump did not happen).
"""

import json
import pathlib
import sys

SCHEMA_VERSION = 1
BUNDLE_KEYS = {
    "forensics_schema_version",
    "git_sha",
    "kind",
    "scenario",
    "detail",
    "failed_op",
    "digests",
    "flight",
    "stats",
    "trace_tail",
}
FLIGHT_KEYS = {"ts", "op", "opcode", "vcpu", "step", "args",
               "args_digest", "result", "replayable"}
TRACE_MAGIC = "hev-trace v1"


def fail(message):
    print(f"validate_forensics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path, allow_unknown_sha):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {path}: {error}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    missing = BUNDLE_KEYS - doc.keys()
    if missing:
        fail(f"{path}: missing schema keys {sorted(missing)}")

    if doc["forensics_schema_version"] != SCHEMA_VERSION:
        fail(f"{path}: forensics_schema_version "
             f"{doc['forensics_schema_version']!r}, expected "
             f"{SCHEMA_VERSION}")

    sha = doc["git_sha"]
    if not isinstance(sha, str) or not sha:
        fail(f"{path}: git_sha must be a non-empty string")
    if sha == "unknown":
        if not allow_unknown_sha:
            fail(f"{path}: git_sha is 'unknown' (built outside git?)")
    elif not all(c in "0123456789abcdef" for c in sha):
        fail(f"{path}: git_sha {sha!r} is not a hex revision")

    for key in ("kind", "detail"):
        if not isinstance(doc[key], str) or not doc[key]:
            fail(f"{path}: {key} must be a non-empty string")
    if not isinstance(doc["failed_op"], int) or doc["failed_op"] < 0:
        fail(f"{path}: failed_op must be a non-negative integer")

    if not isinstance(doc["digests"], dict):
        fail(f"{path}: digests is not an object")
    for name, value in doc["digests"].items():
        if not isinstance(value, int):
            fail(f"{path}: digest {name!r} is not an integer")

    if not isinstance(doc["flight"], list):
        fail(f"{path}: flight is not a list")
    last_ts = 0
    replayable = 0
    for i, record in enumerate(doc["flight"]):
        where = f"{path}: flight[{i}]"
        if not isinstance(record, dict):
            fail(f"{where} is not an object")
        lost = FLIGHT_KEYS - record.keys()
        if lost:
            fail(f"{where} missing keys {sorted(lost)}")
        for key in ("ts", "opcode", "vcpu", "step", "args_digest",
                    "result"):
            if not isinstance(record[key], int):
                fail(f"{where}.{key} is not an integer")
        if not isinstance(record["op"], str) or not record["op"]:
            fail(f"{where}.op is not a non-empty string")
        if record["ts"] < last_ts:
            fail(f"{where} ts {record['ts']} goes backwards "
                 f"(prev {last_ts}); the tail must be merged in "
                 f"timestamp order")
        last_ts = record["ts"]
        args = record["args"]
        if (not isinstance(args, list) or len(args) != 4 or
                not all(isinstance(a, int) for a in args)):
            fail(f"{where}.args is not a list of four integers")
        if not isinstance(record["replayable"], bool):
            fail(f"{where}.replayable is not a boolean")
        replayable += record["replayable"]

    stats = doc["stats"]
    if not isinstance(stats, dict):
        fail(f"{path}: stats is not an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in stats or not isinstance(stats[section], dict):
            fail(f"{path}: stats.{section} missing or not an object")

    tail = doc["trace_tail"]
    if not isinstance(tail, str):
        fail(f"{path}: trace_tail is not a string")
    if tail:
        if not tail.startswith(TRACE_MAGIC):
            fail(f"{path}: trace_tail does not start with "
                 f"{TRACE_MAGIC!r}")
        ops = sum(1 for line in tail.splitlines()
                  if line.startswith("op "))
        if ops != replayable:
            fail(f"{path}: trace_tail has {ops} op(s) but the flight "
                 f"tail has {replayable} replayable record(s)")

    print(f"validate_forensics: OK: {path} (git {sha}, "
          f"kind {doc['kind']!r}, {len(doc['flight'])} record(s), "
          f"{replayable} replayable)")


def main(argv):
    allow_unknown_sha = False
    paths = []
    for arg in argv[1:]:
        if arg == "--allow-unknown-sha":
            allow_unknown_sha = True
        elif arg.startswith("-"):
            fail(f"unknown option {arg!r}")
        else:
            paths.append(pathlib.Path(arg))
    if not paths:
        fail("usage: validate_forensics.py [--allow-unknown-sha] "
             "PATH...")

    bundles = []
    for path in paths:
        if path.is_dir():
            found = sorted(path.glob("*.forensics.json"))
            if not found:
                fail(f"{path}: no *.forensics.json bundle found")
            bundles.extend(found)
        else:
            bundles.append(path)
    for bundle in bundles:
        validate(bundle, allow_unknown_sha)
    print(f"validate_forensics: {len(bundles)} bundle(s) valid")


if __name__ == "__main__":
    main(sys.argv)
