#!/usr/bin/env bash
# Smoke test of the lock-discipline enforcement stack (docs/ANALYSIS.md):
#
#   1. the cross-layer linter and its planted fixtures (ctest -L lint),
#   2. a -DHEV_LOCK_WITNESS=ON build running the smp suites, so the
#      runtime witness rides every guard the monitor takes (bench
#      comparisons are excluded: witness hooks tax the hot paths by
#      design, and the perf gate's baseline is for plain builds),
#   3. if clang++ exists, a -DHEV_ANALYZE=ON clang build that must
#      compile clean under -Werror=thread-safety (skipped loudly on
#      GCC-only containers — the annotations expand to nothing there).
#
# Usage: tools/analyze_smoke.sh [jobs]

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "== 1/3: cross-layer lint (fixtures + clean tree) =="
cmake -B "$repo/build" -S "$repo" >/dev/null
(cd "$repo/build" && ctest -L lint --output-on-failure)

echo "== 2/3: runtime lock-order witness build =="
cmake -B "$repo/build-witness" -S "$repo" \
    -DHEV_LOCK_WITNESS=ON >/dev/null
cmake --build "$repo/build-witness" -j "$jobs"
(cd "$repo/build-witness" &&
    ctest -L smp -LE bench --output-on-failure)

echo "== 3/3: clang thread-safety analysis build =="
if command -v clang++ >/dev/null 2>&1; then
    cmake -B "$repo/build-analyze" -S "$repo" -DHEV_ANALYZE=ON \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null
    cmake --build "$repo/build-analyze" -j "$jobs"
    echo "thread-safety: clean under -Werror=thread-safety"
else
    echo "thread-safety: SKIPPED (clang++ not installed; the"
    echo "  annotations are invisible to GCC — docs/ANALYSIS.md)"
fi

echo "analyze_smoke: done"
