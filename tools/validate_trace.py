#!/usr/bin/env python3
"""Validate an exported Chrome trace_event JSON file.

Checks, exiting 0 on success and 1 on the first violation:
  - the file parses as JSON and has the expected top-level shape
    (schemaVersion, displayTimeUnit, traceEvents list);
  - every event carries the required keys with sane types and a known
    phase letter;
  - timestamps are monotonically non-decreasing per (pid, tid);
  - begin/end phases balance per thread (every E has an open B) unless
    --allow-unbalanced is given (ring wraparound can drop the opening
    B of a span that was in flight when the ring overflowed);
  - flow events (phases "s"/"t"/"f", the SMP IPI causality arrows)
    carry a numeric "id", every step/finish id was started by an "s"
    record, and every started flow is finished by an "f" unless
    --allow-unbalanced is given (same wraparound caveat).

Usage: validate_trace.py TRACE.json [--allow-unbalanced]
"""

import json
import sys

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}
KNOWN_PHASES = {"B", "E", "X", "i", "s", "t", "f"}
FLOW_PHASES = {"s", "t", "f"}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path, allow_unbalanced):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {path}: {error}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    for key in ("schemaVersion", "displayTimeUnit", "traceEvents"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not isinstance(doc["traceEvents"], list):
        fail("traceEvents is not a list")

    last_ts = {}
    open_spans = {}
    flow_ids = {"s": set(), "t": set(), "f": set()}
    for index, event in enumerate(doc["traceEvents"]):
        where = f"event #{index}"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        missing = REQUIRED_KEYS - event.keys()
        if missing:
            fail(f"{where} missing keys {sorted(missing)}")
        if event["ph"] not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)):
            fail(f"{where} ts is not numeric")
        if event["ph"] == "X" and "dur" not in event:
            fail(f"{where} is a complete event without dur")
        if event["ph"] in FLOW_PHASES:
            if not isinstance(event.get("id"), int):
                fail(f"{where} is a flow event without a numeric id")
            flow_ids[event["ph"]].add(event["id"])

        thread = (event["pid"], event["tid"])
        if thread in last_ts and event["ts"] < last_ts[thread]:
            fail(f"{where} ts {event['ts']} goes backwards on "
                 f"pid/tid {thread} (prev {last_ts[thread]})")
        last_ts[thread] = event["ts"]

        if event["ph"] == "B":
            open_spans.setdefault(thread, []).append(event["name"])
        elif event["ph"] == "E":
            stack = open_spans.get(thread, [])
            if stack:
                stack.pop()
            elif not allow_unbalanced:
                fail(f"{where} ends a span with none open on "
                     f"pid/tid {thread}")

    for phase in ("t", "f"):
        orphans = flow_ids[phase] - flow_ids["s"]
        if orphans:
            fail(f"flow phase {phase!r} ids {sorted(orphans)[:4]} "
                 f"were never started by an 's' record")
    unfinished = flow_ids["s"] - flow_ids["f"]
    if unfinished and not allow_unbalanced:
        fail(f"flow ids {sorted(unfinished)[:4]} started but never "
             f"finished by an 'f' record")

    total = len(doc["traceEvents"])
    threads = len(last_ts)
    flows = len(flow_ids["s"])
    print(f"validate_trace: OK: {total} events across {threads} "
          f"thread(s), {flows} flow span(s), "
          f"schema v{doc['schemaVersion']}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = set(sys.argv[1:]) - set(args)
    unknown = flags - {"--allow-unbalanced"}
    if unknown or len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate(args[0], "--allow-unbalanced" in flags)


if __name__ == "__main__":
    main()
