#!/usr/bin/env bash
# Sanitizer fuzz smoke: build the fuzzing CLI with ASan+UBSan, replay
# the golden corpus (which includes evict/reload paging traces), then
# fuzz the clean tree for a bounded wall-clock budget.  Fails
# (non-zero) on any oracle divergence, sanitizer report, or build
# error — the sanitizer builds use -fno-sanitize-recover, so a UBSan
# finding aborts the run instead of printing a warning and passing.
# Intended as a CI job: ./tools/fuzz_smoke.sh [seconds] [build-dir]
set -euo pipefail

SECONDS_BUDGET="${1:-30}"
BUILD_DIR="${2:-build-fuzz-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

echo "== configuring ${BUILD_DIR} with HEV_SANITIZE=address,undefined"
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}" \
    -DHEV_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== building hev_fuzz"
cmake --build "${BUILD_DIR}" --target hev_fuzz_cli -j > /dev/null

# halt_on_error makes any sanitizer report fatal -> non-zero exit.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

echo "== replaying the golden corpus (incl. evict/reload) under ASan+UBSan"
"${BUILD_DIR}/tools/hev_fuzz" replay "${SRC_DIR}"/tests/fuzz/corpus/*.trace

echo "== fuzzing the clean tree for ${SECONDS_BUDGET}s under ASan+UBSan"
"${BUILD_DIR}/tools/hev_fuzz" run \
    --seed "$(date +%Y%m%d)" \
    --execs 0 \
    --seconds "${SECONDS_BUDGET}"

echo "== fuzz smoke passed (no divergence, no sanitizer report)"
