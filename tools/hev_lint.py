#!/usr/bin/env python3
"""hev-lint: cross-layer parity and lock-discipline checker.

The repo keeps several parallel structures that must not drift:

  spec-parity    every hcEnclaveXxx hypercall in src/hv/monitor.hh has a
                 matching specHcXxx in src/ccal/specs.hh (and vice
                 versa); Enter/Exit/Report are vCPU-local and have no
                 flat-spec counterpart by design.
  trace-parity   every fuzz OpKind enumerator has a serializer name in
                 src/fuzz/trace.cc, a mutator arm in src/fuzz/mutate.cc,
                 and a dispatch case in both executors.
  err-parity     every HvError variant has a name in hvErrorName
                 (src/support/result.cc) and an explicit coarse class in
                 classifyHv (src/fuzz/executor.cc) — no catch-all.
  lock-dag       the HEV_ACQUIRED_AFTER declarations in
                 src/smp/smp_monitor.hh form an acyclic graph consistent
                 with the LockRank order (src/smp/lock_witness.hh), and
                 no acquisition site in src/smp/*.cc constructs a guard
                 of lower-or-equal rank inside a live higher one.

When python-libclang is installed the enum extraction runs on the real
AST; otherwise a resilient regex fallback (comment/string-stripping plus
brace tracking) parses the same facts.  Both paths emit identical
violation lines:

    hev-lint: <check>: <file>: <message>

Exit status: 0 clean, 1 violations, 2 bad invocation.

A source line containing `hev-lint: allow lock-order` suppresses the
acquisition-site check until the end of the enclosing function (used by
the deliberate witness-death-test helper).
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def read(root, rel):
    """Return the file's text, or None if it does not exist."""
    path = os.path.join(root, rel)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def strip_comments(text):
    """Remove //, /* */ comments and string/char literals.

    Keeps newlines so line numbers survive; replaces literals with
    spaces so tokens cannot hide inside them.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or (
            c == "'"
            and not (out and (out[-1].isalnum() or out[-1] == "_"))
        ):
            # An apostrophe after an identifier/digit character is a
            # C++14 digit separator (0x10'0000), not a char literal.
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def snake_case(name):
    """HcAddPage -> hc_add_page, QueryVa -> query_va."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def try_libclang():
    """Import python-libclang if the container has it; None otherwise."""
    try:
        from clang import cindex  # type: ignore

        cindex.Index.create()
        return cindex
    except Exception:
        return None


def parse_enum_regex(text, enum_name):
    """Enumerator names of `enum class <enum_name>` via the fallback."""
    clean = strip_comments(text)
    m = re.search(
        r"enum\s+class\s+" + re.escape(enum_name) + r"\b[^{]*\{(.*?)\}",
        clean,
        re.S,
    )
    if not m:
        return None
    names = []
    for entry in m.group(1).split(","):
        entry = entry.strip()
        if not entry:
            continue
        em = re.match(r"([A-Za-z_]\w*)", entry)
        if em:
            names.append(em.group(1))
    return names


def parse_enum_libclang(cindex, path, enum_name):
    """Enumerator names from the real AST (header parsed standalone)."""
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-fsyntax-only"]
        )

        def walk(node):
            if (
                node.kind == cindex.CursorKind.ENUM_DECL
                and node.spelling == enum_name
            ):
                return [c.spelling for c in node.get_children()]
            for child in node.get_children():
                found = walk(child)
                if found:
                    return found
            return None

        return walk(tu.cursor)
    except Exception:
        return None


def parse_enum(cindex, root, rel, enum_name):
    text = read(root, rel)
    if text is None:
        return None
    if cindex is not None:
        names = parse_enum_libclang(
            cindex, os.path.join(root, rel), enum_name
        )
        if names:
            return names
    return parse_enum_regex(text, enum_name)


# --------------------------------------------------------------------------
# Check 1: hypercall <-> spec parity
# --------------------------------------------------------------------------

# vCPU-local hypercalls with no flat-spec counterpart: the spec models
# the page-table/EPCM state machine, not occupancy or attestation.
SPEC_ALLOWLIST = {"Enter", "Exit", "Report"}


def check_spec_parity(root):
    violations = []
    monitor = read(root, "src/hv/monitor.hh")
    specs = read(root, "src/ccal/specs.hh")
    if monitor is None or specs is None:
        return violations, monitor is not None or specs is not None
    hcs = set(
        re.findall(r"\bhcEnclave(\w+)\s*\(", strip_comments(monitor))
    )
    spec_text = strip_comments(specs)
    spec_cc = read(root, "src/ccal/specs.cc")
    if spec_cc is not None:
        spec_text += strip_comments(spec_cc)
    spec_names = set(re.findall(r"\bspecHc(\w+)\s*\(", spec_text))
    for name in sorted(hcs - spec_names - SPEC_ALLOWLIST):
        violations.append(
            (
                "spec-parity",
                "src/hv/monitor.hh",
                "hypercall hcEnclave%s has no specHc%s in "
                "src/ccal/specs.hh (add the spec, or allowlist a "
                "vCPU-local call in tools/hev_lint.py)" % (name, name),
            )
        )
    for name in sorted(spec_names - hcs):
        violations.append(
            (
                "spec-parity",
                "src/ccal/specs.hh",
                "specHc%s has no hcEnclave%s hypercall in "
                "src/hv/monitor.hh (orphaned spec)" % (name, name),
            )
        )
    return violations, True


# --------------------------------------------------------------------------
# Check 2: fuzz OpKind parity (serializer / mutator / executors)
# --------------------------------------------------------------------------


def check_trace_parity(root, cindex):
    violations = []
    kinds = parse_enum(cindex, root, "src/fuzz/trace.hh", "OpKind")
    if kinds is None:
        return violations, False
    ran = False

    trace_cc = read(root, "src/fuzz/trace.cc")
    if trace_cc is not None:
        ran = True
        m = re.search(
            r"kindNames\s*\[[^\]]*\]\s*=\s*\{(.*?)\};",
            trace_cc,
            re.S,
        )
        names = re.findall(r'"([^"]*)"', m.group(1)) if m else []
        if len(names) != len(kinds):
            violations.append(
                (
                    "trace-parity",
                    "src/fuzz/trace.cc",
                    "kindNames has %d entries but OpKind has %d "
                    "enumerators" % (len(names), len(kinds)),
                )
            )
        for i, kind in enumerate(kinds):
            want = snake_case(kind)
            if i >= len(names):
                violations.append(
                    (
                        "trace-parity",
                        "src/fuzz/trace.cc",
                        "OpKind::%s has no serializer name (expected "
                        '"%s" at kindNames[%d])' % (kind, want, i),
                    )
                )
            elif names[i] != want:
                violations.append(
                    (
                        "trace-parity",
                        "src/fuzz/trace.cc",
                        'kindNames[%d] is "%s" but OpKind::%s '
                        'serializes as "%s"' % (i, names[i], kind, want),
                    )
                )

    mutate_cc = read(root, "src/fuzz/mutate.cc")
    if mutate_cc is not None:
        ran = True
        refs = set(
            re.findall(
                r"\b(?:K|OpKind)::(\w+)", strip_comments(mutate_cc)
            )
        )
        for kind in kinds:
            if kind not in refs:
                violations.append(
                    (
                        "trace-parity",
                        "src/fuzz/mutate.cc",
                        "OpKind::%s has no mutator arm (the mutator can "
                        "neither generate nor perturb it)" % kind,
                    )
                )

    for rel in ("src/fuzz/executor.cc", "src/fuzz/smp_executor.cc"):
        exec_cc = read(root, rel)
        if exec_cc is None:
            continue
        ran = True
        cases = set(
            re.findall(r"\bcase\s+OpKind::(\w+)", strip_comments(exec_cc))
        )
        for kind in kinds:
            if kind not in cases:
                violations.append(
                    (
                        "trace-parity",
                        rel,
                        "OpKind::%s has no dispatch case" % kind,
                    )
                )
    return violations, ran


# --------------------------------------------------------------------------
# Check 3: HvError <-> name / coarse-class parity
# --------------------------------------------------------------------------


def check_err_parity(root, cindex):
    violations = []
    errs = parse_enum(cindex, root, "src/support/result.hh", "HvError")
    if errs is None:
        return violations, False
    ran = False
    for rel, what in (
        ("src/support/result.cc", "hvErrorName"),
        ("src/fuzz/executor.cc", "classifyHv"),
    ):
        text = read(root, rel)
        if text is None:
            continue
        ran = True
        clean = strip_comments(text)
        m = re.search(
            re.escape(what) + r"\s*\([^)]*\)\s*\{(.*?)\n\}", clean, re.S
        )
        body = m.group(1) if m else clean
        cases = set(re.findall(r"\bcase\s+HvError::(\w+)", body))
        for err in errs:
            if err not in cases:
                violations.append(
                    (
                        "err-parity",
                        rel,
                        "HvError::%s has no explicit case in %s "
                        "(catch-alls hide new variants)" % (err, what),
                    )
                )
    return violations, ran


# --------------------------------------------------------------------------
# Check 4: lock-order DAG and acquisition sites
# --------------------------------------------------------------------------


def parse_lock_decls(text):
    """[(lock, [predecessors])] from HEV_ACQUIRED_AFTER declarations.

    Matches across line breaks: `mutable Mutex name\n    HEV_ACQUIRED_
    AFTER(a, b);` is one declaration.
    """
    clean = strip_comments(text)
    decls = []
    seen = set()
    for m in re.finditer(
        r"\b(?:Mutex|SharedMutex)\s+(\w+)(?:\s+HEV_ACQUIRED_AFTER\s*"
        r"\(([^)]*)\))?\s*;",
        clean,
    ):
        name = m.group(1)
        preds = (
            [p.strip() for p in m.group(2).split(",") if p.strip()]
            if m.group(2)
            else []
        )
        decls.append((name, preds))
        seen.add(name)
    return decls, seen


def find_cycle(edges):
    """Return one cycle as a list of nodes, or None if the graph is a DAG."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for succ in edges.get(node, ()):
            state = color.get(succ, WHITE)
            if state == GRAY:
                return stack[stack.index(succ):] + [succ]
            if state == WHITE:
                cycle = visit(succ)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in list(edges):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def parse_rank_values(root):
    """{rank-name: numeric} from the LockRank enum, if present."""
    text = read(root, "src/smp/lock_witness.hh")
    if text is None:
        return None
    clean = strip_comments(text)
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{(.*?)\}", clean, re.S)
    if not m:
        return None
    values = {}
    nxt = 0
    for entry in m.group(1).split(","):
        entry = entry.strip()
        if not entry:
            continue
        em = re.match(r"(\w+)\s*(?:=\s*(\d+))?", entry)
        if not em:
            continue
        if em.group(2) is not None:
            nxt = int(em.group(2))
        values[em.group(1)] = nxt
        nxt += 1
    return values


def parse_rank_names(root):
    """{lock-member-name: rank-name} from lockRankName()'s switch."""
    text = read(root, "src/smp/lock_witness.cc")
    if text is None:
        return None
    pairs = re.findall(
        r'case\s+LockRank::(\w+)\s*:\s*return\s+"(\w+)"', text
    )
    return {lock: rank for rank, lock in pairs}


def check_lock_dag(root):
    violations = []
    monitor = read(root, "src/smp/smp_monitor.hh")
    if monitor is None:
        return violations, False
    decls, lock_names = parse_lock_decls(monitor)

    edges = {}
    for lock, preds in decls:
        for pred in preds:
            if pred not in lock_names:
                violations.append(
                    (
                        "lock-dag",
                        "src/smp/smp_monitor.hh",
                        "%s declared HEV_ACQUIRED_AFTER(%s) but no such "
                        "lock member exists" % (lock, pred),
                    )
                )
            edges.setdefault(pred, []).append(lock)
            edges.setdefault(lock, [])

    cycle = find_cycle(edges)
    if cycle:
        violations.append(
            (
                "lock-dag",
                "src/smp/smp_monitor.hh",
                "HEV_ACQUIRED_AFTER declarations form a cycle: %s"
                % " -> ".join(cycle),
            )
        )

    # Rank consistency: every declared edge must go strictly uphill in
    # the witness's numbering, or the three enforcement layers disagree.
    ranks = parse_rank_values(root)
    names = parse_rank_names(root)
    if ranks is not None and names is not None and not cycle:
        def rank_of(lock):
            rank_name = names.get(lock)
            return ranks.get(rank_name) if rank_name else None

        for lock, preds in decls:
            for pred in preds:
                lr, pr = rank_of(lock), rank_of(pred)
                if lr is not None and pr is not None and lr <= pr:
                    violations.append(
                        (
                            "lock-dag",
                            "src/smp/lock_witness.hh",
                            "LockRank order contradicts the DAG: %s "
                            "(rank %d) is HEV_ACQUIRED_AFTER %s "
                            "(rank %d)" % (lock, lr, pred, pr),
                        )
                    )

        violations.extend(check_acquisition_sites(root, ranks))
    return violations, True


GUARD_RE = re.compile(
    r"\b(?:ExclusiveServicingGuard|SharedServicingGuard|"
    r"MutexServicingGuard|WitnessedGuard)\s+\w+\s*\("
)
RANK_RE = re.compile(r"LockRank::(\w+)")
SUPPRESS = "hev-lint: allow lock-order"


def check_acquisition_sites(root, ranks):
    """Scan src/smp/*.cc guard constructions for rank inversions.

    Brace-depth tracking keeps a stack of live guards per function; a
    new guard whose rank is <= a live one is an inversion.  Guard
    statements can span lines, so lines are joined until parens
    balance.
    """
    violations = []
    smp_dir = os.path.join(root, "src/smp")
    if not os.path.isdir(smp_dir):
        return violations
    for fname in sorted(os.listdir(smp_dir)):
        if not fname.endswith(".cc"):
            continue
        rel = "src/smp/" + fname
        text = strip_comments(read(root, rel))
        raw = read(root, rel)
        suppress_depths = set()
        depth = 0
        live = []  # (depth-at-construction, rank-name, line)
        pending = ""
        pending_line = 0
        for lineno, (line, raw_line) in enumerate(
            zip(text.splitlines(), raw.splitlines()), 1
        ):
            if SUPPRESS in raw_line:
                suppress_depths.add(depth)
            if pending:
                line = pending + " " + line.strip()
                lineno = pending_line
                pending = ""
            m = GUARD_RE.search(line)
            if m and line.count("(") > line.count(")"):
                pending = line
                pending_line = lineno
                # Still track braces on the raw line below.
                m = None
            if m:
                rm = RANK_RE.search(line, m.end() - 1)
                if rm and rm.group(1) in ranks:
                    rank = ranks[rm.group(1)]
                    if not any(d <= depth for d in suppress_depths):
                        for _, prior, prior_line in live:
                            if ranks[prior] >= rank:
                                violations.append(
                                    (
                                        "lock-dag",
                                        rel,
                                        "line %d acquires %s (rank %d) "
                                        "while a rank-%d guard from "
                                        "line %d is live"
                                        % (
                                            lineno,
                                            rm.group(1),
                                            rank,
                                            ranks[prior],
                                            prior_line,
                                        ),
                                    )
                                )
                    live.append((depth, rm.group(1), lineno))
            for c in line if not pending else "":
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    live = [g for g in live if g[0] <= depth]
                    suppress_depths = {
                        d for d in suppress_depths if d <= depth
                    }
            if depth <= 0:
                live = []
    return violations


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

CHECKS = (
    ("spec-parity", lambda root, cindex: check_spec_parity(root)),
    ("trace-parity", check_trace_parity),
    ("err-parity", check_err_parity),
    ("lock-dag", lambda root, cindex: check_lock_dag(root)),
)


def main(argv):
    ap = argparse.ArgumentParser(
        description="hev cross-layer parity and lock-discipline linter"
    )
    ap.add_argument(
        "--root",
        default=".",
        help="tree to lint (default: current directory)",
    )
    ap.add_argument(
        "--require-all",
        action="store_true",
        help="fail if any check's input files are missing "
        "(use on the real tree; fixtures carry partial trees)",
    )
    ap.add_argument(
        "-v", "--verbose", action="store_true", help="report clean checks"
    )
    args = ap.parse_args(argv)

    if not os.path.isdir(args.root):
        print("hev-lint: no such directory: %s" % args.root,
              file=sys.stderr)
        return 2

    cindex = try_libclang()
    if args.verbose:
        mode = "libclang" if cindex else "regex fallback"
        print("hev-lint: parsing with %s" % mode)

    total = 0
    for name, fn in CHECKS:
        violations, ran = fn(args.root, cindex)
        if not ran:
            if args.require_all:
                print(
                    "hev-lint: %s: input files missing under %s"
                    % (name, args.root)
                )
                total += 1
            continue
        for check, rel, message in violations:
            print("hev-lint: %s: %s: %s" % (check, rel, message))
        total += len(violations)
        if args.verbose and not violations:
            print("hev-lint: %s: clean" % name)

    if total:
        print("hev-lint: %d violation(s)" % total)
        return 1
    if args.verbose:
        print("hev-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
