/**
 * @file
 * The fuzzing CLI: run / replay / shrink / corpus-stats.
 *
 *   hev_fuzz run [--seed N] [--execs N] [--seconds S] [--max-ops N]
 *                [--corpus DIR] [--bug a,b,...] [--out FILE]
 *                [--forensics FILE]
 *       Coverage-guided fuzzing; on divergence shrinks the trace,
 *       writes a self-contained repro file and prints a ready-to-
 *       paste C++ regression test body.  Exit 1 iff a divergence.
 *
 *   hev_fuzz replay [--threads N] [--bug a,b,...] FILE...
 *       Re-execute saved traces; the report is byte-identical at any
 *       --threads value.  Exit 1 iff any trace diverges.
 *
 *   hev_fuzz shrink [--bug a,b,...] [--out FILE] FILE
 *       Delta-debug a failing trace to a locally-1-minimal repro.
 *
 *   hev_fuzz corpus-stats DIR
 *       Execute every corpus trace and summarize coverage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/mutate.hh"
#include "fuzz/shrink.hh"

using namespace hev;
using namespace hev::fuzz;

namespace
{

struct Cli
{
    u64 seed = 1;
    u64 execs = 20000;
    double seconds = 0.0;
    u32 maxOps = 24;
    unsigned threads = 1;
    std::string corpusDir;
    std::string outFile;
    std::vector<std::string> bugs;
    std::string forensicsPath;
    std::vector<std::string> positional;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: hev_fuzz run|replay|shrink|corpus-stats "
                 "[options] [files]\n"
                 "  --seed N --execs N --seconds S --max-ops N\n"
                 "  --corpus DIR --threads N --out FILE --bug a,b,...\n"
                 "  --forensics FILE (bundle on divergence; also via\n"
                 "                    $HEV_FORENSICS)\n");
    return 2;
}

bool
parseArgs(int argc, char **argv, Cli &cli)
{
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            cli.seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--execs") {
            const char *v = next();
            if (!v)
                return false;
            cli.execs = std::strtoull(v, nullptr, 0);
        } else if (arg == "--seconds") {
            const char *v = next();
            if (!v)
                return false;
            cli.seconds = std::strtod(v, nullptr);
        } else if (arg == "--max-ops") {
            const char *v = next();
            if (!v)
                return false;
            cli.maxOps = u32(std::strtoul(v, nullptr, 0));
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            cli.threads = unsigned(std::strtoul(v, nullptr, 0));
        } else if (arg == "--corpus") {
            const char *v = next();
            if (!v)
                return false;
            cli.corpusDir = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            cli.outFile = v;
        } else if (arg == "--forensics") {
            const char *v = next();
            if (!v)
                return false;
            cli.forensicsPath = v;
        } else if (arg == "--bug") {
            const char *v = next();
            if (!v)
                return false;
            std::string list = v;
            size_t start = 0;
            while (start <= list.size()) {
                const size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!name.empty())
                    cli.bugs.push_back(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        } else {
            cli.positional.push_back(arg);
        }
    }
    return true;
}

bool
applyBugs(ExecOptions &opts, const std::vector<std::string> &bugs)
{
    for (const std::string &name : bugs) {
        if (!applyPlantedBug(opts, name)) {
            std::fprintf(stderr, "unknown planted bug '%s'; known:",
                         name.c_str());
            for (const std::string &known : plantedBugNames())
                std::fprintf(stderr, " %s", known.c_str());
            std::fprintf(stderr, "\n");
            return false;
        }
    }
    return true;
}

int
cmdRun(const Cli &cli)
{
    FuzzConfig cfg;
    cfg.seed = cli.seed;
    cfg.maxExecs = cli.execs;
    cfg.maxSeconds = cli.seconds;
    cfg.maxOps = cli.maxOps;
    cfg.corpusDir = cli.corpusDir;
    cfg.exec.forensicsPath = cli.forensicsPath;
    if (!applyBugs(cfg.exec, cli.bugs))
        return 2;

    Fuzzer fuzzer(cfg);
    const auto failure = fuzzer.run();
    const FuzzStats &stats = fuzzer.stats();
    std::printf("execs:    %llu\n", (unsigned long long)stats.execs);
    std::printf("corpus:   %llu\n",
                (unsigned long long)stats.corpusEntries);
    std::printf("features: %llu\n",
                (unsigned long long)stats.featuresCovered);
    if (!failure) {
        std::printf("no divergence found\n");
        return 0;
    }

    std::printf("\nDIVERGENCE at exec %llu:\n%s\n",
                (unsigned long long)failure->execIndex,
                failure->result.detail.c_str());
    std::printf("shrinking %zu ops...\n", failure->trace.ops.size());
    const ShrinkResult shrunk = shrinkTrace(cfg.exec, failure->trace);
    std::printf("shrunk to %zu ops in %llu execs (%s1-minimal)\n\n",
                shrunk.trace.ops.size(),
                (unsigned long long)shrunk.execsUsed,
                shrunk.oneMinimal ? "" : "not verified ");

    const std::string repro = renderReproFile(shrunk, cli.bugs);
    const std::string out_path =
        cli.outFile.empty() ? "hev-fuzz-repro.trace" : cli.outFile;
    FILE *out = std::fopen(out_path.c_str(), "w");
    if (out) {
        std::fwrite(repro.data(), 1, repro.size(), out);
        std::fclose(out);
        std::printf("repro written to %s\n\n", out_path.c_str());
    }
    std::printf("--- regression test body ---\n%s",
                renderRegressionTestBody(shrunk, cli.bugs).c_str());
    return 1;
}

int
cmdReplay(const Cli &cli)
{
    if (cli.positional.empty()) {
        std::fprintf(stderr, "replay: no trace files given\n");
        return 2;
    }
    ExecOptions opts = ExecOptions::standard();
    opts.forensicsPath = cli.forensicsPath;
    if (!applyBugs(opts, cli.bugs))
        return 2;
    const auto outcomes =
        replayFiles(cli.positional, opts, cli.threads);
    const std::string report = renderReplayReport(outcomes);
    std::fputs(report.c_str(), stdout);
    for (const ReplayOutcome &outcome : outcomes)
        if (!outcome.parsed || outcome.result.divergence)
            return 1;
    return 0;
}

int
cmdShrink(const Cli &cli)
{
    if (cli.positional.size() != 1) {
        std::fprintf(stderr, "shrink: exactly one trace file\n");
        return 2;
    }
    ExecOptions opts = ExecOptions::standard();
    if (!applyBugs(opts, cli.bugs))
        return 2;
    std::string error;
    const auto trace = readTraceFile(cli.positional[0], &error);
    if (!trace) {
        std::fprintf(stderr, "cannot read %s: %s\n",
                     cli.positional[0].c_str(), error.c_str());
        return 2;
    }
    const ShrinkResult shrunk = shrinkTrace(opts, *trace);
    if (!shrunk.result.divergence) {
        std::printf("trace does not diverge; nothing to shrink\n");
        return 1;
    }
    std::printf("shrunk %zu -> %zu ops in %llu execs (%s1-minimal)\n",
                trace->ops.size(), shrunk.trace.ops.size(),
                (unsigned long long)shrunk.execsUsed,
                shrunk.oneMinimal ? "" : "not verified ");
    const std::string repro = renderReproFile(shrunk, cli.bugs);
    if (!cli.outFile.empty()) {
        FILE *out = std::fopen(cli.outFile.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         cli.outFile.c_str());
            return 2;
        }
        std::fwrite(repro.data(), 1, repro.size(), out);
        std::fclose(out);
    } else {
        std::fputs(repro.c_str(), stdout);
    }
    std::printf("--- regression test body ---\n%s",
                renderRegressionTestBody(shrunk, cli.bugs).c_str());
    return 0;
}

int
cmdCorpusStats(const Cli &cli)
{
    if (cli.positional.size() != 1) {
        std::fprintf(stderr, "corpus-stats: exactly one directory\n");
        return 2;
    }
    Corpus corpus;
    const u64 loaded = corpus.loadFrom(cli.positional[0]);
    std::printf("corpus: %llu trace(s) in %s\n",
                (unsigned long long)loaded, cli.positional[0].c_str());
    ExecOptions opts = ExecOptions::standard();
    if (!applyBugs(opts, cli.bugs))
        return 2;
    std::set<u32> features;
    std::set<u64> signatures;
    u64 total_ops = 0;
    u64 divergences = 0;
    for (u64 i = 0; i < corpus.size(); ++i) {
        const ExecResult result = executeTrace(opts, corpus[i].trace);
        features.insert(result.features.begin(), result.features.end());
        signatures.insert(result.signature);
        total_ops += result.opsExecuted;
        divergences += result.divergence ? 1 : 0;
    }
    std::printf("ops executed:      %llu\n",
                (unsigned long long)total_ops);
    std::printf("distinct features: %zu\n", features.size());
    std::printf("distinct outcomes: %zu\n", signatures.size());
    std::printf("divergences:       %llu\n",
                (unsigned long long)divergences);
    return divergences ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Cli cli;
    if (!parseArgs(argc, argv, cli))
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "run")
        return cmdRun(cli);
    if (cmd == "replay")
        return cmdReplay(cli);
    if (cmd == "shrink")
        return cmdShrink(cli);
    if (cmd == "corpus-stats")
        return cmdCorpusStats(cli);
    return usage();
}
