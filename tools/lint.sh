#!/usr/bin/env bash
# Run every static check the environment supports:
#
#   1. tools/hev_lint.py      — cross-layer parity + lock DAG (always;
#                               pure python3).
#   2. clang-tidy             — .clang-tidy profile over src/, if a
#                               compile database and clang-tidy exist.
#   3. clang -Wthread-safety  — the HEV_ANALYZE build, if clang exists.
#
# Steps whose toolchain is missing are SKIPPED loudly, not failed: the
# container bakes in GCC only, and the cross-layer checks are the
# portable floor every environment must pass.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: an existing CMake build tree to take the compile
#              database from (default: ./build; regenerated with
#              CMAKE_EXPORT_COMPILE_COMMANDS=ON when absent).

set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
failed=0

say() { printf '%s\n' "$*"; }

# ---- 1. cross-layer parity (portable floor) -------------------------------
say "== hev-lint (cross-layer parity, lock DAG) =="
if python3 "$repo/tools/hev_lint.py" --root "$repo" --require-all; then
    say "hev-lint: OK"
else
    failed=1
fi

# ---- 2. clang-tidy --------------------------------------------------------
say "== clang-tidy (.clang-tidy profile) =="
if ! command -v clang-tidy >/dev/null 2>&1; then
    say "clang-tidy: SKIPPED (not installed; GCC-only container)"
else
    db="$build/compile_commands.json"
    if [ ! -f "$db" ]; then
        say "clang-tidy: generating compile database in $build"
        cmake -B "$build" -S "$repo" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || failed=1
    fi
    if [ -f "$db" ]; then
        # Lint the layers the lock-discipline work covers; expand as
        # other layers are brought under the profile.
        find "$repo/src/hv" "$repo/src/smp" "$repo/src/obs" \
            "$repo/src/support" -name '*.cc' -print0 |
            xargs -0 clang-tidy -p "$build" --quiet || failed=1
    else
        say "clang-tidy: SKIPPED (no compile database)"
    fi
fi

# ---- 3. thread-safety analysis -------------------------------------------
say "== clang thread-safety analysis (HEV_ANALYZE) =="
if ! command -v clang++ >/dev/null 2>&1; then
    say "thread-safety: SKIPPED (clang++ not installed; annotations are"
    say "  invisible to GCC — see docs/ANALYSIS.md)"
else
    tsa="$repo/build-analyze"
    cmake -B "$tsa" -S "$repo" -DHEV_ANALYZE=ON \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null || failed=1
    cmake --build "$tsa" -j "$(nproc)" || failed=1
fi

if [ "$failed" -ne 0 ]; then
    say "lint.sh: FAILURES above"
    exit 1
fi
say "lint.sh: all available checks passed"
